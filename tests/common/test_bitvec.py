"""BitVector: the predictors' index-only bit arrays."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitvec import BitVector


class TestBitVector:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BitVector(100)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            BitVector(0)

    def test_initial_value_false(self):
        v = BitVector(16, initial=False)
        assert all(not v.get(i) for i in range(16))
        assert v.popcount() == 0

    def test_initial_value_true(self):
        v = BitVector(16, initial=True)
        assert all(v.get(i) for i in range(16))
        assert v.popcount() == 16

    def test_set_and_clear(self):
        v = BitVector(8)
        v.set(3)
        assert v.get(3)
        v.clear(3)
        assert not v.get(3)

    def test_modulo_indexing_aliases(self):
        v = BitVector(8)
        v.set(3)
        assert v.get(3 + 8)  # aliases onto the same entry
        assert v.get(3 + 800)

    def test_aliases_predicate(self):
        v = BitVector(8)
        assert v.aliases(1, 9)
        assert not v.aliases(1, 2)
        assert not v.aliases(5, 5)  # same id is not an alias

    def test_reset_restores_default(self):
        v = BitVector(8, initial=True)
        v.clear(2)
        v.reset()
        assert v.get(2)

    def test_fill(self):
        v = BitVector(8)
        v.fill(True)
        assert v.popcount() == 8
        v.fill(False)
        assert v.popcount() == 0

    def test_storage_bits_matches_entries(self):
        assert BitVector(2048).storage_bits == 2048

    def test_len(self):
        assert len(BitVector(1024)) == 1024


@given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=50))
def test_property_set_bits_are_visible_via_any_aliasing_id(ids):
    v = BitVector(64)
    for i in ids:
        v.set(i)
    for i in ids:
        assert v.get(i)
        assert v.get(i + 64 * 7)


@given(
    st.lists(
        st.tuples(st.integers(0, 4095), st.booleans()),
        max_size=200,
    )
)
def test_property_matches_reference_dict_model(ops):
    """The bit vector behaves exactly like a dict over modulo indices."""
    v = BitVector(128)
    reference = {}
    for entry, value in ops:
        v.set(entry, value)
        reference[entry % 128] = value
    for idx in range(128):
        assert v.get(idx) == reference.get(idx, False)
