"""Cross-module geometry invariants tied to the paper's configuration."""

import pytest

from repro.common import constants
from repro.metadata import layout


class TestDataGeometry:
    def test_block_and_sector(self):
        assert constants.BLOCK_SIZE == 128
        assert constants.SECTOR_SIZE == 32
        assert constants.SECTORS_PER_BLOCK == 4

    def test_chunk_holds_32_blocks(self):
        # The MAT has 32 one-bit counters for exactly this reason.
        assert constants.BLOCKS_PER_CHUNK == 32
        assert constants.MAT_MONITOR_ACCESSES == constants.BLOCKS_PER_CHUNK

    def test_region_is_four_chunks(self):
        assert constants.READONLY_REGION_SIZE == 4 * constants.STREAM_CHUNK_SIZE


class TestMetadataGeometry:
    def test_macs_per_line(self):
        assert constants.MACS_PER_BLOCK == 16

    def test_counter_line_coverage_consistent(self):
        # One counter line covers CTR_LINE_COVERAGE_BLOCKS blocks and
        # exactly one BMT leaf.
        blocks = layout.CTR_LINE_COVERAGE_BLOCKS
        assert layout.bmt_leaf(blocks - 1) == 0
        assert layout.bmt_leaf(blocks) == 1

    def test_counter_sector_quarter_of_line(self):
        assert (layout.CTR_SECTOR_COVERAGE_BLOCKS * constants.SECTORS_PER_BLOCK
                == layout.CTR_LINE_COVERAGE_BLOCKS)

    def test_key_spaces_cannot_collide(self):
        # The largest block-MAC line key for the protected range stays
        # far below the chunk-MAC key base.
        max_block = constants.PROTECTED_MEMORY_BYTES // constants.BLOCK_SIZE
        assert layout.mac_sector(max_block).line_key < layout.CHUNK_MAC_KEY_BASE


class TestBandwidth:
    def test_per_partition_share(self):
        total = constants.DRAM_BYTES_PER_CYCLE * constants.NUM_PARTITIONS
        assert total == pytest.approx(constants.DRAM_BYTES_PER_CYCLE_TOTAL)

    def test_protected_range_is_4gb(self):
        assert constants.PROTECTED_MEMORY_BYTES == 4 * 1024**3

    def test_minor_counter_bits(self):
        # 7-bit minors: 128 writes per block before a re-encryption.
        from repro.metadata.counters import MINOR_OVERFLOW
        assert MINOR_OVERFLOW == 2**constants.MINOR_COUNTER_BITS == 128
