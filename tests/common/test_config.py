"""Configuration defaults: Tables V, VI, VIII and IX."""

import pytest

from repro.common import constants
from repro.common.config import (
    CacheConfig,
    DetectorConfig,
    GPUConfig,
    MDCConfig,
    SimConfig,
    scheme_config,
)
from repro.common.types import Scheme


class TestCacheConfig:
    def test_mdc_geometry_table6(self):
        cfg = CacheConfig(size_bytes=2048)
        assert cfg.num_blocks == 16  # 2 KB of 128 B lines
        assert cfg.num_sets == 4  # 4-way
        assert cfg.sectors_per_block == 4

    def test_l2_bank_geometry_table5(self):
        gpu = GPUConfig()
        assert gpu.l2_bank_size == 128 * 1024
        assert gpu.l2_banks_per_partition == 2
        assert gpu.total_l2_bytes == 3 * 1024 * 1024  # 3 MB total
        assert gpu.l2_mshr_entries == 192
        assert gpu.l2_mshr_merge == 16

    def test_twelve_partitions(self):
        assert GPUConfig().num_partitions == 12

    def test_bandwidth_336_gbps(self):
        gpu = GPUConfig()
        total = gpu.dram_bytes_per_cycle * gpu.num_partitions
        assert total == pytest.approx(336e9 / 1506e6, rel=1e-6)


class TestDetectorConfig:
    def test_tracker_is_71_bits(self):
        # Section V-A: 20 tag + 1 write + 32 counters + 5 + 13 = 71.
        assert DetectorConfig().tracker_storage_bits() == 71

    def test_partition_storage(self):
        cfg = DetectorConfig()
        # 1024 + 2048 bit-vector bits + 8 trackers x 71 bits.
        assert cfg.partition_storage_bits() == 1024 + 2048 + 8 * 71

    def test_total_hardware_overhead_table9(self):
        # 12 partitions, ~5,460 B total (the paper's 5.33 KB).
        cfg = DetectorConfig()
        total_bytes = cfg.partition_storage_bits() / 8 * 12
        assert total_bytes == pytest.approx(5460, abs=10)

    def test_blocks_per_chunk(self):
        assert DetectorConfig().blocks_per_chunk == 32

    def test_defaults_match_table9(self):
        cfg = DetectorConfig()
        assert cfg.readonly_entries == 1024
        assert cfg.stream_entries == 2048
        assert cfg.num_trackers == 8
        assert cfg.monitor_accesses == 32
        assert cfg.timeout_cycles == 6000


class TestSchemeConfig:
    def test_naive_uses_physical_unsectored_metadata(self):
        cfg = scheme_config(Scheme.NAIVE)
        assert not cfg.local_metadata
        assert not cfg.sectored_counters
        assert not cfg.common_counters
        assert not cfg.readonly_optimization
        assert not cfg.dual_granularity_mac

    def test_common_ctr_is_naive_plus_common_counters(self):
        cfg = scheme_config(Scheme.COMMON_CTR)
        assert not cfg.local_metadata
        assert cfg.common_counters

    def test_pssm_uses_local_sectored_metadata(self):
        cfg = scheme_config(Scheme.PSSM)
        assert cfg.local_metadata
        assert cfg.sectored_counters
        assert not cfg.readonly_optimization

    def test_shm_enables_both_optimizations(self):
        cfg = scheme_config(Scheme.SHM)
        assert cfg.local_metadata
        assert cfg.readonly_optimization
        assert cfg.dual_granularity_mac
        assert not cfg.common_counters
        assert not cfg.l2_victim_cache

    def test_shm_readonly_keeps_block_macs(self):
        cfg = scheme_config(Scheme.SHM_READONLY)
        assert cfg.readonly_optimization
        assert not cfg.dual_granularity_mac

    def test_shm_cctr_adds_common_counters(self):
        cfg = scheme_config(Scheme.SHM_CCTR)
        assert cfg.readonly_optimization and cfg.common_counters

    def test_shm_vl2_enables_victim_cache(self):
        cfg = scheme_config(Scheme.SHM_VL2)
        assert cfg.l2_victim_cache
        assert cfg.victim_missrate_threshold == pytest.approx(0.90)

    def test_upper_bound_uses_oracle_unlimited_detectors(self):
        cfg = scheme_config(Scheme.SHM_UPPER_BOUND)
        assert cfg.oracle_detectors
        assert cfg.detectors.unlimited

    def test_unprotected_is_not_secure(self):
        assert not scheme_config(Scheme.UNPROTECTED).is_secure
        assert scheme_config(Scheme.SHM).is_secure

    def test_overrides(self):
        cfg = scheme_config(Scheme.SHM, mac_conflict_policy="update_both")
        assert cfg.mac_conflict_policy == "update_both"

    def test_default_mac_is_8_bytes(self):
        assert scheme_config(Scheme.SHM).mac_size == 8


class TestSimConfig:
    def test_with_scheme_replaces_only_scheme(self):
        cfg = SimConfig()
        other = cfg.with_scheme(Scheme.NAIVE)
        assert other.scheme.scheme is Scheme.NAIVE
        assert other.gpu is cfg.gpu
        assert cfg.scheme.scheme is Scheme.SHM  # original untouched
