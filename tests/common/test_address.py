"""Address mapping: interleaving, local offsets, spans."""

import pytest
from hypothesis import given, strategies as st

from repro.common import constants
from repro.common.address import AddressMapper, LocalAddress


@pytest.fixture
def mapper():
    return AddressMapper(num_partitions=12, interleave_bytes=256)


class TestConstruction:
    def test_rejects_non_power_of_two_interleave(self):
        with pytest.raises(ValueError):
            AddressMapper(12, 300)

    def test_rejects_sub_line_interleave(self):
        with pytest.raises(ValueError):
            AddressMapper(12, 64)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            AddressMapper(0, 256)


class TestMapping:
    def test_first_chunk_maps_to_partition_zero(self, mapper):
        local = mapper.to_local(0)
        assert local == LocalAddress(partition=0, offset=0)

    def test_round_robin_partitions(self, mapper):
        for chunk in range(24):
            assert mapper.partition_of(chunk * 256) == chunk % 12

    def test_offset_preserved_within_chunk(self, mapper):
        local = mapper.to_local(256 * 12 + 40)
        assert local.partition == 0
        assert local.offset == 256 + 40

    def test_local_offsets_dense_per_partition(self, mapper):
        # Partition 3 owns chunks 3, 15, 27, ... at local chunks 0, 1, 2.
        for i in range(5):
            local = mapper.to_local((3 + 12 * i) * 256)
            assert local.partition == 3
            assert local.offset == i * 256

    def test_negative_address_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.to_local(-1)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**34))
    def test_property_roundtrip(self, physical):
        mapper = AddressMapper(12, 256)
        assert mapper.to_physical(mapper.to_local(physical)) == physical

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=2**30),
    )
    def test_property_roundtrip_any_partition_count(self, parts, physical):
        mapper = AddressMapper(parts, 512)
        assert mapper.to_physical(mapper.to_local(physical)) == physical


class TestLocalSpan:
    def test_empty_range(self, mapper):
        assert mapper.local_span(0, 0, 3) == (0, 0)

    def test_full_alignment_gives_equal_spans(self, mapper):
        # 192 KB-aligned ranges cover every partition equally.
        align = 256 * 12 * 64  # 192 KB
        spans = [mapper.local_span(align, align, p) for p in range(12)]
        sizes = {hi - lo for lo, hi in spans}
        assert sizes == {align // 12}

    @given(
        st.integers(min_value=0, max_value=2**24),
        st.integers(min_value=1, max_value=2**22),
    )
    def test_property_span_matches_bruteforce(self, start, size):
        """The closed-form span equals a brute-force chunk walk."""
        mapper = AddressMapper(4, 256)
        for partition in range(4):
            lo, hi = mapper.local_span(start, size, partition)
            chunks = set()
            c0 = start // 256
            c1 = -(-(start + size) // 256)
            for c in range(c0, c1):
                if c % 4 == partition:
                    chunks.add(c // 4)
            if not chunks:
                assert lo == hi
            else:
                assert lo == min(chunks) * 256
                assert hi == (max(chunks) + 1) * 256

    def test_covers_accesses(self, mapper):
        """Every access inside the physical range lands inside the span."""
        start, size = 1000 * 256, 77 * 256
        for addr in range(start, start + size, 128):
            local = mapper.to_local(addr)
            lo, hi = mapper.local_span(start, size, local.partition)
            assert lo <= local.offset < hi


class TestGranularityHelpers:
    def test_block_id(self):
        assert AddressMapper.block_id(0) == 0
        assert AddressMapper.block_id(127) == 0
        assert AddressMapper.block_id(128) == 1

    def test_region_id_default_16kb(self):
        assert AddressMapper.region_id(16 * 1024 - 1) == 0
        assert AddressMapper.region_id(16 * 1024) == 1

    def test_chunk_id_default_4kb(self):
        assert AddressMapper.chunk_id(4095) == 0
        assert AddressMapper.chunk_id(4096) == 1

    def test_block_offset_in_chunk(self):
        assert AddressMapper.block_offset_in_chunk(0) == 0
        assert AddressMapper.block_offset_in_chunk(4096 - 128) == 31
        assert AddressMapper.block_offset_in_chunk(4096) == 0

    def test_block_align(self):
        assert AddressMapper.block_align(200) == 128
        assert AddressMapper.chunk_align(5000) == 4096
