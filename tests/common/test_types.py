"""Tables I and II: required security mechanisms per memory space."""

import pytest

from repro.common.types import (
    AccessType,
    Mechanism,
    MemoryAccess,
    MemorySpace,
    Pattern,
    PredictionStats,
    TrafficCounters,
    required_mechanisms,
)

C = Mechanism.CONFIDENTIALITY
I = Mechanism.INTEGRITY
F = Mechanism.FRESHNESS


class TestRequiredMechanisms:
    def test_registers_need_nothing(self):
        assert required_mechanisms(MemorySpace.REGISTER) is Mechanism.NONE

    def test_shared_memory_needs_nothing(self):
        assert required_mechanisms(MemorySpace.SHARED) is Mechanism.NONE

    def test_local_memory_needs_full_protection(self):
        assert required_mechanisms(MemorySpace.LOCAL) == C | I | F

    def test_global_memory_needs_full_protection(self):
        assert required_mechanisms(MemorySpace.GLOBAL) == C | I | F

    def test_constant_memory_skips_freshness(self):
        assert required_mechanisms(MemorySpace.CONSTANT) == C | I

    def test_texture_memory_skips_freshness(self):
        assert required_mechanisms(MemorySpace.TEXTURE) == C | I

    def test_instruction_memory_skips_freshness(self):
        assert required_mechanisms(MemorySpace.INSTRUCTION) == C | I

    def test_read_only_global_data_skips_freshness(self):
        # Table II: read-only input in global memory needs C + I only.
        assert required_mechanisms(MemorySpace.GLOBAL, read_only=True) == C | I

    def test_read_write_global_data_needs_freshness(self):
        assert F in required_mechanisms(MemorySpace.GLOBAL, read_only=False)

    def test_full_is_all_three(self):
        assert Mechanism.full() == C | I | F


class TestTrafficCounters:
    def test_metadata_bytes_sums_all_non_data(self):
        t = TrafficCounters(data_bytes=100, counter_bytes=10, mac_bytes=20,
                            bmt_bytes=5, misprediction_bytes=15)
        assert t.metadata_bytes == 50
        assert t.total_bytes == 150

    def test_overhead_ratio(self):
        t = TrafficCounters(data_bytes=200, mac_bytes=50)
        assert t.overhead_ratio() == pytest.approx(0.25)

    def test_overhead_ratio_no_data(self):
        assert TrafficCounters().overhead_ratio() == 0.0

    def test_merge(self):
        a = TrafficCounters(data_bytes=1, counter_bytes=2, mac_bytes=3,
                            bmt_bytes=4, misprediction_bytes=5)
        b = TrafficCounters(data_bytes=10, counter_bytes=20, mac_bytes=30,
                            bmt_bytes=40, misprediction_bytes=50)
        a.merge(b)
        assert (a.data_bytes, a.counter_bytes, a.mac_bytes,
                a.bmt_bytes, a.misprediction_bytes) == (11, 22, 33, 44, 55)


class TestPredictionStats:
    def test_accuracy_empty_is_one(self):
        assert PredictionStats().accuracy == 1.0

    def test_accuracy(self):
        s = PredictionStats(correct=80, mp_init=15, mp_aliasing=5)
        assert s.total == 100
        assert s.accuracy == pytest.approx(0.80)

    def test_fractions_sum_to_one(self):
        s = PredictionStats(correct=3, mp_init=2, mp_runtime_read_only=1,
                            mp_runtime_non_read_only=2, mp_aliasing=2)
        assert sum(s.as_fractions().values()) == pytest.approx(1.0)


class TestMemoryAccess:
    def test_is_write(self):
        a = MemoryAccess(cycle=0, address=0, type=AccessType.WRITE, size=32)
        assert a.is_write
        b = MemoryAccess(cycle=0, address=0, type=AccessType.READ, size=32)
        assert not b.is_write

    def test_frozen(self):
        a = MemoryAccess(cycle=0, address=0, type=AccessType.READ, size=32)
        with pytest.raises(AttributeError):
            a.address = 5


class TestPattern:
    def test_two_patterns(self):
        assert {Pattern.STREAM, Pattern.RANDOM} == set(Pattern)
