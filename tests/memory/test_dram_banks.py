"""Optional bank-level row-buffer model."""

import pytest

from repro.memory.dram import DRAMChannel


def make(penalty=20.0, banks=4):
    return DRAMChannel(bytes_per_cycle=32, latency=0, num_banks=banks,
                       row_bytes=2048, row_miss_penalty=penalty)


class TestRowBuffer:
    def test_first_access_misses_row(self):
        ch = make()
        done = ch.service(0, 32, address=0)
        assert done == pytest.approx(1 + 20)

    def test_same_row_hits(self):
        ch = make()
        ch.service(0, 32, address=0)
        before = ch.next_free
        ch.service(0, 32, address=1024)  # same 2 KB row
        assert ch.next_free == pytest.approx(before + 1)

    def test_different_row_same_bank_misses(self):
        ch = make(banks=4)
        ch.service(0, 32, address=0)           # bank 0, row 0
        before = ch.next_free
        ch.service(0, 32, address=4 * 2048)    # bank 0, row 1
        assert ch.next_free == pytest.approx(before + 1 + 20)

    def test_different_banks_keep_own_rows(self):
        ch = make(banks=4)
        ch.service(0, 32, address=0)        # opens bank 0
        ch.service(0, 32, address=2048)     # opens bank 1
        before = ch.next_free
        ch.service(0, 32, address=64)       # bank 0 row still open
        assert ch.next_free == pytest.approx(before + 1)

    def test_streaming_mostly_hits(self):
        stream = make()
        scatter = make()
        for i in range(64):
            stream.service(0, 128, address=i * 128)          # sequential
            scatter.service(0, 128, address=(i * 7919) * 2048)  # row-hostile
        assert scatter.stats.busy_cycles > stream.stats.busy_cycles

    def test_disabled_without_penalty(self):
        ch = DRAMChannel(bytes_per_cycle=32, latency=0)
        assert ch.service(0, 32, address=0) == pytest.approx(1)

    def test_unknown_address_skips_model(self):
        ch = make()
        assert ch.service(0, 32) == pytest.approx(1)  # address=-1

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMChannel(num_banks=0)
        with pytest.raises(ValueError):
            DRAMChannel(row_bytes=1000)
        with pytest.raises(ValueError):
            DRAMChannel(row_miss_penalty=-1)
