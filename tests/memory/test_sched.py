"""The pluggable DRAM scheduler layer (repro.memory.sched)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import GPUConfig
from repro.memory.dram import DRAMChannel
from repro.memory.sched import (
    BankedScheduler,
    CriticalFirstScheduler,
    FIFOScheduler,
    available_schedulers,
    build_scheduler,
    register_scheduler,
)


def _channel(scheduler=None, **kwargs):
    defaults = dict(bytes_per_cycle=32.0, latency=100,
                    request_overhead=0.0, turnaround=0.0)
    defaults.update(kwargs)
    return DRAMChannel(scheduler=scheduler, **defaults)


# ---------------------------------------------------------------------------
# FIFO: bit-identical to the raw occupy path
# ---------------------------------------------------------------------------

def test_fifo_matches_direct_occupy():
    sched = _channel(FIFOScheduler(), request_overhead=8.0, turnaround=12.0)
    direct = _channel(request_overhead=8.0, turnaround=12.0)
    pattern = [(0.0, 128, False), (1.0, 32, True), (5.0, 256, False),
               (400.0, 64, True)]
    for arrival, size, is_write in pattern:
        assert (sched.service(arrival, size, is_write)
                == direct.occupy(arrival, size, is_write))
    assert sched.next_free == direct.next_free
    assert sched.stats.busy_cycles == direct.stats.busy_cycles


# ---------------------------------------------------------------------------
# Critical-first: defer / gap-fit / overflow / drain
# ---------------------------------------------------------------------------

def test_critical_first_defers_mac_and_bmt_writes():
    ch = _channel(CriticalFirstScheduler(capacity=8))
    # The posted estimate covers the write's own transfer time plus
    # everything buffered ahead of it: 32 B / 32 B-per-cycle = 1 cycle
    # per entry (no overhead/turnaround in this channel).
    done_first = ch.service(0.0, 32, is_write=True, kind="mac")
    assert done_first == ch.next_free + 1.0 + ch.latency
    done_second = ch.service(0.0, 32, is_write=True, kind="bmt")
    assert done_second == ch.next_free + 2.0 + ch.latency
    assert done_second > done_first  # queued behind the first write
    assert ch.stats.requests == 0  # nothing touched the bus
    assert ch.scheduler.pending_writes == 2


def test_critical_first_never_defers_critical_or_non_deferrable():
    ch = _channel(CriticalFirstScheduler(capacity=8))
    ch.service(0.0, 32, is_write=True, kind="mac", critical=True)
    ch.service(0.0, 32, is_write=True, kind="ctr")
    ch.service(0.0, 32, is_write=True, kind="data")
    ch.service(0.0, 128, is_write=False, kind="mac")  # reads always issue
    assert ch.stats.requests == 4
    assert ch.scheduler.pending_writes == 0


def test_critical_first_gap_fits_before_demand_traffic():
    ch = _channel(CriticalFirstScheduler(capacity=8))
    ch.service(0.0, 32, is_write=True, kind="mac")  # 1-cycle occupancy
    # The demand read arrives long after the buffered write would
    # finish: the write issues into the idle gap and costs it nothing.
    done = ch.service(50.0, 128, is_write=False)
    assert ch.scheduler.pending_writes == 0
    assert ch.stats.requests == 2
    assert done == 50.0 + 128 / 32.0 + ch.latency


def test_critical_first_holds_writes_that_do_not_fit_the_gap():
    ch = _channel(CriticalFirstScheduler(capacity=8))
    ch.service(0.0, 3200, is_write=True, kind="mac")  # 100-cycle occupancy
    done = ch.service(10.0, 128, is_write=False)  # gap too small
    assert ch.scheduler.pending_writes == 1
    assert done == 10.0 + 128 / 32.0 + ch.latency


def test_critical_first_posted_estimate_covers_queue_and_turnaround():
    ch = _channel(CriticalFirstScheduler(capacity=8),
                  request_overhead=8.0, turnaround=12.0)
    # Bus idle, in read mode.  The first drained write pays its own
    # request overhead + transfer (8 + 32/32 = 9 cycles) plus one
    # read->write turnaround.  The old estimate (next_free + latency)
    # pretended the write occupied no bus time at all.
    done_first = ch.service(0.0, 32, is_write=True, kind="mac")
    assert done_first == pytest.approx(9.0 + 12.0 + ch.latency)
    # The second write queues behind the first: one more 9-cycle slot,
    # but the turnaround is paid only once by the buffered burst.
    done_second = ch.service(0.0, 32, is_write=True, kind="bmt")
    assert done_second == pytest.approx(18.0 + 12.0 + ch.latency)


def test_critical_first_posted_estimate_skips_turnaround_in_write_mode():
    ch = _channel(CriticalFirstScheduler(capacity=8),
                  request_overhead=8.0, turnaround=12.0)
    ch.service(0.0, 32, is_write=True, kind="data")  # bus now in write mode
    next_free = ch.next_free
    done = ch.service(0.0, 32, is_write=True, kind="mac")
    assert done == pytest.approx(next_free + 9.0 + ch.latency)


def test_critical_first_posted_estimates_grow_monotonically():
    ch = _channel(CriticalFirstScheduler(capacity=32),
                  request_overhead=8.0, turnaround=12.0)
    previous = 0.0
    for i in range(16):
        done = ch.service(float(i), 32, is_write=True, kind="mac")
        # Each deferral queues behind everything already buffered, so
        # the posted estimates must be strictly increasing.
        assert done > previous
        previous = done


def test_critical_first_gap_fit_charges_both_turnaround_flips():
    # Issuing a buffered write from read mode flips the bus twice:
    # write entry and read return.  Full cost of the 32 B write is
    # 32/32 + 12 + 12 = 25 cycles; a 20-cycle gap fits the write and
    # its entry flip (13) but not the return flip, so gap-filling here
    # would delay the demand read it was meant to stay clear of.
    ch = _channel(CriticalFirstScheduler(capacity=8), turnaround=12.0)
    ch.service(0.0, 32, is_write=True, kind="mac")
    done = ch.service(20.0, 128, is_write=False)
    assert ch.scheduler.pending_writes == 1
    # The read proceeds untouched, still in read mode: no turnaround.
    assert done == pytest.approx(20.0 + 4.0 + ch.latency)


def test_critical_first_gap_fit_issues_when_both_flips_fit():
    ch = _channel(CriticalFirstScheduler(capacity=8), turnaround=12.0)
    ch.service(0.0, 32, is_write=True, kind="mac")
    done = ch.service(40.0, 128, is_write=False)  # gap 40 >= 25
    assert ch.scheduler.pending_writes == 0
    assert ch.stats.requests == 2
    # The read pays the read-return turnaround the fit check budgeted
    # for — and nothing more (the write's occupancy ended inside the
    # gap: bus free at 13, read starts at its own arrival).
    assert done == pytest.approx(40.0 + 4.0 + 12.0 + ch.latency)


def test_critical_first_overflow_forced_issue_prices_remaining_queue():
    ch = _channel(CriticalFirstScheduler(capacity=2), request_overhead=8.0)
    ch.service(0.0, 32, is_write=True, kind="mac")
    ch.service(1.0, 32, is_write=True, kind="mac")
    done = ch.service(2.0, 32, is_write=True, kind="mac")  # overflow
    # The oldest entry was forced onto the bus (8 + 1 = 9 cycles)...
    assert ch.stats.requests == 1
    assert ch.next_free == pytest.approx(9.0)
    assert ch.scheduler.pending_writes == 2
    # ...and the newest write's estimate queues behind both the bus
    # and the two entries still buffered ahead of it.
    assert done == pytest.approx(9.0 + 2 * 9.0 + ch.latency)


def test_critical_first_overflow_forces_oldest_out():
    ch = _channel(CriticalFirstScheduler(capacity=2))
    for i in range(3):
        ch.service(float(i), 32, is_write=True, kind="mac")
    assert ch.scheduler.pending_writes == 2
    assert ch.stats.requests == 1  # the overflow victim reached the bus


def test_critical_first_drain_flushes_everything():
    ch = _channel(CriticalFirstScheduler(capacity=8))
    for i in range(4):
        ch.service(float(i), 32, is_write=True, kind="bmt")
    done = ch.drain()
    assert ch.scheduler.pending_writes == 0
    assert ch.stats.requests == 4
    assert done == ch.next_free + ch.latency
    assert ch.drain() == 0.0  # idempotent when empty


def test_critical_first_conserves_bytes():
    fifo = _channel(FIFOScheduler())
    cf = _channel(CriticalFirstScheduler(capacity=4))
    for ch in (fifo, cf):
        for i in range(8):
            ch.service(float(i), 64, is_write=True, kind="mac")
            ch.service(float(i), 128, is_write=False)
        ch.drain()
    assert cf.stats.total_bytes == fifo.stats.total_bytes
    assert cf.stats.write_bytes == fifo.stats.write_bytes


def test_critical_first_validates_capacity():
    with pytest.raises(ValueError):
        CriticalFirstScheduler(capacity=0)


# ---------------------------------------------------------------------------
# Banked: open-row hits vs misses
# ---------------------------------------------------------------------------

def test_banked_row_miss_then_hit():
    sched = BankedScheduler(num_banks=4, row_bytes=2048, row_miss_penalty=20.0)
    ch = _channel(sched)
    first = ch.service(0.0, 32, address=0)        # row miss: +20
    assert first == 32 / 32.0 + 20.0 + ch.latency
    ch.service(first, 32, address=64)             # same 2 KB row: hit
    assert ch.stats.busy_cycles == pytest.approx(21.0 + 1.0)


def test_banked_rows_are_per_bank():
    sched = BankedScheduler(num_banks=2, row_bytes=64, row_miss_penalty=20.0)
    ch = _channel(sched)
    ch.service(0.0, 32, address=0)    # bank 0, row 0 — miss
    ch.service(0.0, 32, address=64)   # bank 1, row 0 — miss
    busy = ch.stats.busy_cycles
    ch.service(0.0, 32, address=0)    # bank 0 still open — hit
    assert ch.stats.busy_cycles - busy == pytest.approx(1.0)
    ch.service(0.0, 32, address=128)  # bank 0, row 1 — evicts the row
    busy = ch.stats.busy_cycles
    ch.service(0.0, 32, address=0)    # row 0 closed again — miss
    assert ch.stats.busy_cycles - busy == pytest.approx(21.0)


def test_banked_addressless_transactions_bypass_row_model():
    ch = _channel(BankedScheduler(num_banks=4, row_miss_penalty=20.0))
    ch.service(0.0, 32)  # address defaults to -1
    assert ch.stats.busy_cycles == pytest.approx(1.0)


def test_banked_validates_geometry():
    with pytest.raises(ValueError):
        BankedScheduler(num_banks=0)
    with pytest.raises(ValueError):
        BankedScheduler(row_bytes=1000)  # not a power of two
    with pytest.raises(ValueError):
        BankedScheduler(row_miss_penalty=-1.0)


# ---------------------------------------------------------------------------
# The registry (GPUConfig.dram_scheduler knob)
# ---------------------------------------------------------------------------

def test_builtin_disciplines_are_registered():
    assert {"fifo", "critical_first", "banked"} <= set(available_schedulers())


def test_build_scheduler_honours_config_knobs():
    gpu = GPUConfig()
    assert isinstance(build_scheduler(gpu), FIFOScheduler)
    cf = build_scheduler(replace(gpu, dram_scheduler="critical_first",
                                 dram_write_buffer=7))
    assert isinstance(cf, CriticalFirstScheduler) and cf.capacity == 7
    banked = build_scheduler(replace(gpu, dram_scheduler="banked",
                                     dram_num_banks=8, dram_row_bytes=4096,
                                     dram_row_miss_penalty=5.0))
    assert isinstance(banked, BankedScheduler)
    assert (banked.num_banks, banked.row_bytes, banked.row_miss_penalty) \
        == (8, 4096, 5.0)


def test_build_scheduler_returns_fresh_instances():
    gpu = replace(GPUConfig(), dram_scheduler="banked")
    assert build_scheduler(gpu) is not build_scheduler(gpu)


def test_unknown_scheduler_is_an_error():
    with pytest.raises(ValueError, match="unknown DRAM scheduler"):
        build_scheduler(replace(GPUConfig(), dram_scheduler="psychic"))


def test_register_scheduler_rejects_silent_override():
    with pytest.raises(ValueError, match="already registered"):
        register_scheduler("fifo", lambda gpu: FIFOScheduler())


def test_register_scheduler_end_to_end():
    from repro.memory.sched import SCHEDULERS

    register_scheduler("test_fifo_twin", lambda gpu: FIFOScheduler())
    try:
        gpu = replace(GPUConfig(), dram_scheduler="test_fifo_twin")
        assert isinstance(build_scheduler(gpu), FIFOScheduler)
    finally:
        del SCHEDULERS["test_fifo_twin"]
