"""Property-style equivalence of the host-performance fast paths.

The PR-5 optimisations (bulk sector ops, memoized address mapping,
guarded MSHR probing) promise *bit-identical simulated results*: every
fast path must agree — statistics, masks, LRU order, evictions — with
the straightforward per-sector / recomputed reference it replaced.
These tests drive randomized traces through both and compare complete
state after every step, so a divergence pinpoints the first operation
that broke the contract rather than a golden-oracle diff 160 cells
later.
"""

from __future__ import annotations

import random

import pytest

from repro.common.address import AddressMapper
from repro.common.config import CacheConfig
from repro.memory.cache import SectoredCache
from repro.memory.l2 import L2Bank


# ---------------------------------------------------------------------------
# References: the sequential per-sector semantics the bulk ops replaced
# ---------------------------------------------------------------------------

def _reference_access_range(cache, key, first, last, is_write, fetch_on_miss):
    """Per-sector loop with the exact pre-optimisation semantics."""
    hit_mask = 0
    fetch_mask = 0
    eviction = None
    for sector in range(first, last):
        result = cache.access(key, sector, is_write=is_write,
                              fetch_on_miss=fetch_on_miss)
        if result.hit:
            hit_mask |= 1 << sector
        if result.needs_fetch:
            fetch_mask |= 1 << sector
        if result.eviction is not None:
            # All sectors share one line: only its allocation (the
            # first access of the loop) can displace a victim.
            assert eviction is None
            eviction = result.eviction
    return hit_mask, fetch_mask, eviction


def _cache_state(cache):
    """Full observable state: stats + per-set (key, masks) in LRU order."""
    return (
        cache.accesses, cache.hits, cache.sector_fills, cache.writebacks,
        [[(key, line.valid_mask, line.dirty_mask)
          for key, line in lines.items()]
         for lines in cache._sets],
    )


def _bank_state(bank):
    return (bank.sampled_accesses, bank.sampled_misses,
            dict(bank.mshr._outstanding), _cache_state(bank.cache))


# ---------------------------------------------------------------------------
# SectoredCache.access_range / fill_all_sectors
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(5))
def test_access_range_matches_sequential_reference(seed):
    rng = random.Random(seed)
    cfg = CacheConfig(size_bytes=2048, ways=2)
    fast = SectoredCache(cfg, name="fast")
    ref = SectoredCache(cfg, name="ref")
    spb = cfg.sectors_per_block
    for _ in range(400):
        key = rng.randrange(64)
        first = rng.randrange(spb)
        last = rng.randrange(first + 1, spb + 1)
        is_write = rng.random() < 0.3
        fetch = rng.random() < 0.8
        got = fast.access_range(key, first, last, is_write=is_write,
                                fetch_on_miss=fetch)
        want = _reference_access_range(ref, key, first, last,
                                       is_write, fetch)
        assert got == want
        assert _cache_state(fast) == _cache_state(ref)


@pytest.mark.parametrize("seed", range(3))
def test_fill_all_sectors_matches_sequential_reference(seed):
    rng = random.Random(seed)
    cfg = CacheConfig(size_bytes=2048, ways=2)
    fast = SectoredCache(cfg, name="fast")
    ref = SectoredCache(cfg, name="ref")
    spb = cfg.sectors_per_block
    for _ in range(200):
        key = rng.randrange(32)
        # The demand access that precedes every whole-line fill: it
        # allocates the line (fill_all_sectors requires residency) and
        # leaves a random subset of sectors already valid.
        sector = rng.randrange(spb)
        fast.access(key, sector)
        ref.access(key, sector)
        fast.fill_all_sectors(key)
        for s in range(spb):
            ref.access(key, s)
        assert _cache_state(fast) == _cache_state(ref)


def test_access_range_empty_and_out_of_range():
    cache = SectoredCache(CacheConfig(size_bytes=2048, ways=2))
    assert cache.access_range(1, 2, 2) == (0, 0, None)
    assert cache.accesses == 0  # an empty range touches nothing
    with pytest.raises(ValueError):
        cache.access_range(1, 0, cache.sectors_per_block + 1)


# ---------------------------------------------------------------------------
# L2Bank.access_data_range (sampling counters + MSHR merging included)
# ---------------------------------------------------------------------------

def _reference_l2_range(bank, line_key, first, last, now):
    merged_done = 0.0
    fetch_sectors = None
    eviction = None
    for sector in range(first, last):
        result = bank.access_data(line_key, sector, False, now)
        if result.merged_done is not None and result.merged_done > merged_done:
            merged_done = result.merged_done
        if result.needs_fetch:
            if fetch_sectors is None:
                fetch_sectors = [sector]
            else:
                fetch_sectors.append(sector)
        if result.writebacks:
            assert eviction is None
            eviction = result.writebacks[0]
    return merged_done, fetch_sectors, eviction


@pytest.mark.parametrize("seed", range(3))
def test_l2_access_data_range_matches_sequential_reference(seed):
    rng = random.Random(seed)
    cfg = CacheConfig(size_bytes=4096, ways=2, mshr_entries=8, mshr_merge=4)
    fast = L2Bank(cfg, name="fast")
    ref = L2Bank(cfg, name="ref")
    spb = cfg.sectors_per_block
    now = 0.0
    for _ in range(300):
        now += rng.randrange(1, 50)
        # Occasional writes dirty lines on both banks so evictions
        # carry real write-back obligations.
        if rng.random() < 0.3:
            wkey = rng.randrange(128)
            wsector = rng.randrange(spb)
            fast.access_data(wkey, wsector, True, now)
            ref.access_data(wkey, wsector, True, now)
        key = rng.randrange(128)
        first = rng.randrange(spb)
        last = rng.randrange(first + 1, spb + 1)
        merged, fetch_sectors, eviction = fast.access_data_range(
            key, first, last, now)
        dirty_eviction = (eviction if eviction is not None
                          and eviction.dirty_sectors else None)
        assert (merged, fetch_sectors, dirty_eviction) \
            == _reference_l2_range(ref, key, first, last, now)
        # Register the fetched sectors as in-flight fills on both
        # banks, so later iterations exercise the MSHR-merge path.
        if fetch_sectors:
            done = now + rng.randrange(50, 200)
            for sector in fetch_sectors:
                fast.register_fill(key, sector, done, now)
                ref.register_fill(key, sector, done, now)
        assert _bank_state(fast) == _bank_state(ref)


# ---------------------------------------------------------------------------
# AddressMapper.to_local memoization
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("num_partitions,interleave", [(12, 256), (6, 512),
                                                       (1, 256)])
def test_to_local_memo_matches_divmod_reference(num_partitions, interleave):
    rng = random.Random(num_partitions * interleave)
    mapper = AddressMapper(num_partitions=num_partitions,
                           interleave_bytes=interleave)
    addresses = [rng.randrange(1 << 34) for _ in range(1000)]
    # Trace replay revisits addresses constantly; repeats exercise the
    # memoized path against the same expectations as the first visit.
    addresses += rng.sample(addresses, 500)
    for physical in addresses:
        local = mapper.to_local(physical)
        chunk, within = divmod(physical, interleave)
        assert local.partition == chunk % num_partitions
        assert local.offset == (chunk // num_partitions) * interleave + within
        assert mapper.partition_of(physical) == local.partition
        assert mapper.to_physical(local) == physical
        assert mapper.to_local(physical) == local  # memo is stable


def test_to_local_still_rejects_negative_addresses():
    mapper = AddressMapper()
    with pytest.raises(ValueError):
        mapper.to_local(-1)
    mapper.to_local(4096)  # populating the memo changes nothing
    with pytest.raises(ValueError):
        mapper.to_local(-1)
