"""GDDR channel: bandwidth queueing, per-request overhead, turnaround."""

import pytest

from repro.memory.dram import DRAMChannel


class TestService:
    def test_single_request_latency(self):
        ch = DRAMChannel(bytes_per_cycle=16, latency=100)
        done = ch.service(0, 64)
        assert done == pytest.approx(4 + 100)

    def test_back_to_back_requests_queue(self):
        ch = DRAMChannel(bytes_per_cycle=16, latency=0)
        first = ch.service(0, 64)
        second = ch.service(0, 64)
        assert first == pytest.approx(4)
        assert second == pytest.approx(8)  # waits for the bus

    def test_idle_gap_not_counted(self):
        ch = DRAMChannel(bytes_per_cycle=16, latency=0)
        ch.service(0, 16)
        done = ch.service(100, 16)
        assert done == pytest.approx(101)

    def test_request_overhead_added(self):
        ch = DRAMChannel(bytes_per_cycle=16, latency=0, request_overhead=8)
        assert ch.service(0, 16) == pytest.approx(9)

    def test_small_transfers_less_efficient(self):
        """Four 32 B transfers occupy more bus time than one 128 B."""
        a = DRAMChannel(bytes_per_cycle=16, latency=0, request_overhead=8)
        for _ in range(4):
            a.service(0, 32)
        b = DRAMChannel(bytes_per_cycle=16, latency=0, request_overhead=8)
        b.service(0, 128)
        assert a.stats.busy_cycles > b.stats.busy_cycles

    def test_turnaround_on_direction_change(self):
        ch = DRAMChannel(bytes_per_cycle=16, latency=0, turnaround=10)
        ch.service(0, 16, is_write=False)
        before = ch.next_free
        ch.service(0, 16, is_write=True)  # read -> write switch
        assert ch.next_free == pytest.approx(before + 1 + 10)
        before = ch.next_free
        ch.service(0, 16, is_write=True)  # same direction: no penalty
        assert ch.next_free == pytest.approx(before + 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            DRAMChannel().service(0, 0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DRAMChannel(bytes_per_cycle=0)
        with pytest.raises(ValueError):
            DRAMChannel(latency=-1)
        with pytest.raises(ValueError):
            DRAMChannel(request_overhead=-1)
        with pytest.raises(ValueError):
            DRAMChannel(turnaround=-2)


class TestStats:
    def test_read_write_bytes_separated(self):
        ch = DRAMChannel()
        ch.service(0, 32, is_write=False)
        ch.service(0, 64, is_write=True)
        assert ch.stats.read_bytes == 32
        assert ch.stats.write_bytes == 64
        assert ch.stats.total_bytes == 96
        assert ch.stats.requests == 2

    def test_utilization(self):
        ch = DRAMChannel(bytes_per_cycle=16, latency=0)
        ch.service(0, 160)  # 10 cycles of bus occupancy
        assert ch.utilization(20) == pytest.approx(0.5)
        assert ch.utilization(0) == 0.0

    def test_utilization_reports_raw_ratio(self):
        # The ratio is deliberately unclamped: busy cycles exceeding
        # the elapsed window is an accounting bug that must surface,
        # not be silently flattened to 1.0.
        ch = DRAMChannel(bytes_per_cycle=16, latency=0)
        ch.service(0, 1600)  # 100 cycles of bus occupancy
        assert ch.utilization(10) == pytest.approx(10.0)
        assert ch.utilization(100) == pytest.approx(1.0)
        assert ch.utilization(200) == pytest.approx(0.5)
