"""L2 banks: data path, sampling, victim-cache operations."""

import pytest

from repro.common.config import CacheConfig, GPUConfig
from repro.memory.l2 import L2Bank, PartitionL2, SAMPLE_STRIDE


def make_bank(size=8 * 1024):
    return L2Bank(CacheConfig(size_bytes=size, ways=4, mshr_entries=8), "b")


class TestDataPath:
    def test_miss_then_hit(self):
        bank = make_bank()
        r = bank.access_data(1, 0, False, now=0)
        assert not r.hit and r.needs_fetch
        bank.register_fill(1, 0, done=100, now=0)
        r = bank.access_data(1, 0, False, now=200)
        assert r.hit

    def test_hit_on_inflight_fill_merges(self):
        bank = make_bank()
        bank.access_data(1, 0, False, now=0)
        bank.register_fill(1, 0, done=100, now=0)
        r = bank.access_data(1, 0, False, now=10)
        assert r.hit
        assert r.merged_done == 100  # completes when the fill returns

    def test_dirty_eviction_surfaces_writeback(self):
        cfg = CacheConfig(size_bytes=512, ways=1, mshr_entries=8)
        bank = L2Bank(cfg, "b")
        bank.cache.access(0, 0, is_write=True, fetch_on_miss=False)
        r = bank.access_data(cfg.num_sets, 0, False, now=0)  # same set
        assert len(r.writebacks) == 1
        assert r.writebacks[0].key == 0


class TestSampling:
    def test_sampled_sets_tracked(self):
        bank = make_bank()
        # Find a key mapping to a sampled set (set index % STRIDE == 0).
        key = next(k for k in range(1000)
                   if bank.cache.set_index(k) % SAMPLE_STRIDE == 0)
        bank.access_data(key, 0, False, now=0)
        assert bank.sampled_accesses == 1
        assert bank.sampled_misses == 1
        bank.access_data(key, 0, False, now=0)
        assert bank.sampled_miss_rate == pytest.approx(0.5)

    def test_unsampled_sets_ignored(self):
        bank = make_bank()
        key = next(k for k in range(1000)
                   if bank.cache.set_index(k) % SAMPLE_STRIDE != 0)
        bank.access_data(key, 0, False, now=0)
        assert bank.sampled_accesses == 0

    def test_reset_sampling(self):
        bank = make_bank()
        key = next(k for k in range(1000)
                   if bank.cache.set_index(k) % SAMPLE_STRIDE == 0)
        bank.access_data(key, 0, False, now=0)
        bank.reset_sampling()
        assert bank.sampled_accesses == 0
        assert bank.sampled_miss_rate == 0.0


def unsampled_victim_key(bank, kind="mac"):
    """A metadata key whose victim line lands outside the sampled
    (data-only) sets; tuple hashing varies per process, so search."""
    for i in range(10_000):
        if bank.cache.set_index(("v", (kind, i))) % SAMPLE_STRIDE != 0:
            return i
    raise AssertionError("no unsampled key found")


class TestVictimPath:
    def test_insert_probe_remove(self):
        bank = make_bank()
        key = unsampled_victim_key(bank)
        bank.victim_insert(("mac", key), valid_sectors=4, dirty=False)
        assert bank.victim_probe(("mac", key), 0)
        assert bank.victim_hits == 1
        ev = bank.victim_remove(("mac", key))
        assert ev is not None
        assert not bank.victim_probe(("mac", key), 0)

    def test_dirty_victim_keeps_dirtiness(self):
        bank = make_bank()
        key = unsampled_victim_key(bank, "ctr")
        bank.victim_insert(("ctr", key), valid_sectors=2, dirty=True)
        ev = bank.victim_remove(("ctr", key))
        assert ev.dirty_sectors == 2

    def test_victim_never_lands_in_sampled_sets(self):
        bank = make_bank()
        for i in range(200):
            bank.victim_insert(("mac", i), valid_sectors=1, dirty=False)
        for lines_idx, lines in enumerate(bank.cache._sets):
            if lines_idx % SAMPLE_STRIDE == 0:
                assert not lines, "sampled set polluted by victim lines"

    def test_victim_probe_miss(self):
        bank = make_bank()
        assert not bank.victim_probe(("mac", 99), 0)
        assert bank.victim_hits == 0


class TestPartitionL2:
    def test_bank_selection_stable(self):
        part = PartitionL2(GPUConfig(), 0)
        assert part.bank_for(10) is part.bank_for(10)
        assert len(part.banks) == 2

    def test_aggregated_sampling(self):
        part = PartitionL2(GPUConfig(), 0)
        assert part.sampled_miss_rate == 0.0

    def test_flush_collects_dirty(self):
        part = PartitionL2(GPUConfig(), 0)
        part.bank_for(0).cache.access(0, 0, is_write=True, fetch_on_miss=False)
        evs = part.flush()
        assert len(evs) == 1
