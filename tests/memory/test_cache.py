"""Sectored set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig
from repro.memory.cache import SectoredCache


def make_cache(size=2048, ways=4):
    return SectoredCache(CacheConfig(size_bytes=size, ways=ways), name="t")


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        r = c.access(1, 0)
        assert not r.hit and r.needs_fetch
        r = c.access(1, 0)
        assert r.hit and not r.needs_fetch

    def test_sector_granularity(self):
        c = make_cache()
        c.access(1, 0)
        r = c.access(1, 1)  # same line, different sector
        assert not r.hit and r.needs_fetch  # sectored: separate fill

    def test_write_marks_dirty_and_writeback_on_evict(self):
        c = make_cache(size=512, ways=1)  # 4 lines, direct mapped
        c.access(0, 0, is_write=True, fetch_on_miss=False)
        r = c.access(4, 0)  # same set (4 sets), evicts line 0
        assert r.eviction is not None
        assert r.eviction.key == 0
        assert r.eviction.dirty_sectors == 1

    def test_clean_eviction_has_no_dirty_sectors(self):
        c = make_cache(size=512, ways=1)
        c.access(0, 0)
        r = c.access(4, 0)
        assert r.eviction is not None and r.eviction.dirty_sectors == 0

    def test_write_no_fetch_allocates_without_fill(self):
        c = make_cache()
        r = c.access(9, 2, is_write=True, fetch_on_miss=False)
        assert not r.hit and not r.needs_fetch
        assert c.access(9, 2).hit

    def test_write_rmw_fetches(self):
        c = make_cache()
        r = c.access(9, 2, is_write=True, fetch_on_miss=True)
        assert r.needs_fetch

    def test_lru_replacement(self):
        c = make_cache(size=1024, ways=2)  # 2 ways, 4 sets
        sets = c.num_sets
        a, b, d = 0, sets, 2 * sets  # all in set 0
        c.access(a, 0)
        c.access(b, 0)
        c.access(a, 0)  # touch a: b becomes LRU
        r = c.access(d, 0)
        assert r.eviction.key == b

    def test_sector_out_of_range(self):
        with pytest.raises(ValueError):
            make_cache().access(0, 7)

    def test_miss_rate(self):
        c = make_cache()
        c.access(0, 0)
        c.access(0, 0)
        assert c.miss_rate == pytest.approx(0.5)


class TestClean:
    def test_clean_drops_dirty_bit(self):
        c = make_cache()
        c.access(3, 1, is_write=True, fetch_on_miss=False)
        assert c.clean(3, 1)
        evicted = c.invalidate(3)
        assert evicted.dirty_sectors == 0

    def test_clean_missing_returns_false(self):
        assert not make_cache().clean(42, 0)

    def test_clean_non_dirty_returns_false(self):
        c = make_cache()
        c.access(3, 1)
        assert not c.clean(3, 1)


class TestInvalidateAndFlush:
    def test_invalidate_returns_obligation(self):
        c = make_cache()
        c.access(5, 0, is_write=True, fetch_on_miss=False)
        ev = c.invalidate(5)
        assert ev.dirty_sectors == 1
        assert not c.probe(5, 0)

    def test_invalidate_missing(self):
        assert make_cache().invalidate(5) is None

    def test_flush_returns_all_dirty(self):
        c = make_cache()
        for i in range(4):
            c.access(i, 0, is_write=True, fetch_on_miss=False)
        c.access(100, 0)  # clean line
        evs = c.flush()
        assert len(evs) == 4
        assert c.resident_lines() == 0


class TestInsertLine:
    def test_insert_line_populates_sectors(self):
        c = make_cache()
        c.insert_line(7, valid_sectors=3)
        assert c.probe(7, 0) and c.probe(7, 2)
        assert not c.probe(7, 3)

    def test_insert_dirty(self):
        c = make_cache()
        c.insert_line(7, valid_sectors=2, dirty=True)
        ev = c.invalidate(7)
        assert ev.dirty_sectors == 2

    def test_set_filter_blocks_insertion(self):
        c = make_cache()
        res = c.insert_line(0, valid_sectors=1, set_filter=lambda s: False)
        assert res is None
        assert not c.probe(0, 0)


class TestStats:
    def test_counts(self):
        c = make_cache()
        c.access(0, 0)
        c.access(0, 0)
        c.access(1, 0)
        assert c.accesses == 3
        assert c.hits == 1
        assert c.sector_fills == 2

    def test_reset(self):
        c = make_cache()
        c.access(0, 0)
        c.reset_stats()
        assert c.accesses == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 3), st.booleans()),
                max_size=200))
def test_property_matches_reference_lru_model(ops):
    """Hit/miss sequence matches a straightforward reference model."""
    cfg = CacheConfig(size_bytes=1024, ways=2)  # 8 lines, 4 sets
    cache = SectoredCache(cfg)
    # Reference: per-set list of [key, {valid sectors}] in LRU order.
    ref = {s: [] for s in range(cfg.num_sets)}

    for key, sector, is_write in ops:
        result = cache.access(key, sector, is_write=is_write,
                              fetch_on_miss=not is_write)
        s = key % cfg.num_sets
        lines = ref[s]
        entry = next((e for e in lines if e[0] == key), None)
        expected_hit = entry is not None and sector in entry[1]
        assert result.hit == expected_hit
        if entry is None:
            entry = [key, set()]
            if len(lines) >= cfg.ways:
                lines.pop(0)
            lines.append(entry)
        entry[1].add(sector)
        lines.remove(entry)
        lines.append(entry)
