"""MSHR file: merging, stalls, expiry."""

import pytest

from repro.memory.mshr import MSHRFile


class TestLookup:
    def test_no_entry_returns_none(self):
        assert MSHRFile(4).lookup("a", now=0) is None

    def test_merge_returns_completion(self):
        m = MSHRFile(4)
        m.allocate("a", done=100, now=0)
        assert m.lookup("a", now=10) == 100
        assert m.merges == 1

    def test_stale_entry_expired(self):
        m = MSHRFile(4)
        m.allocate("a", done=100, now=0)
        assert m.lookup("a", now=150) is None  # fill already returned

    def test_merge_width_limit_stalls(self):
        m = MSHRFile(4, merge_width=2)
        m.allocate("a", done=100, now=0)
        assert m.lookup("a", now=1) == 100  # merge 2
        assert m.lookup("a", now=2) == 100  # width exhausted: stall
        assert m.stall_events == 1


class TestAllocate:
    def test_full_file_waits_for_earliest(self):
        m = MSHRFile(2)
        m.allocate("a", done=50, now=0)
        m.allocate("b", done=80, now=0)
        issue = m.allocate("c", done=120, now=10)
        assert issue == 50  # stalled until the earliest entry retires
        assert m.stall_events == 1

    def test_expired_entries_freed(self):
        m = MSHRFile(2)
        m.allocate("a", done=5, now=0)
        m.allocate("b", done=6, now=0)
        issue = m.allocate("c", done=100, now=50)  # both already done
        assert issue == 50
        assert m.stall_events == 0

    def test_occupancy(self):
        m = MSHRFile(8)
        m.allocate("a", done=10, now=0)
        m.allocate("b", done=10, now=0)
        assert m.occupancy == 2

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
