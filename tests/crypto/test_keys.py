"""Per-context key generation (K1, K2, K3)."""

import pytest

from repro.crypto.keys import KeyGenerator, KeyTuple


class TestKeyGenerator:
    def test_three_distinct_keys(self):
        keys = KeyGenerator().context_keys(0)
        assert len({keys.encryption, keys.integrity, keys.tree}) == 3

    def test_deterministic(self):
        a = KeyGenerator(b"m").context_keys(7)
        b = KeyGenerator(b"m").context_keys(7)
        assert a == b

    def test_contexts_isolated(self):
        gen = KeyGenerator()
        assert gen.context_keys(0) != gen.context_keys(1)

    def test_master_secret_matters(self):
        assert KeyGenerator(b"a").context_keys(0) != KeyGenerator(b"b").context_keys(0)

    def test_keys_are_16_bytes(self):
        keys = KeyGenerator().context_keys(3)
        assert len(keys.encryption) == len(keys.integrity) == len(keys.tree) == 16

    def test_negative_context_rejected(self):
        with pytest.raises(ValueError):
            KeyGenerator().context_keys(-1)

    def test_empty_master_rejected(self):
        with pytest.raises(ValueError):
            KeyGenerator(b"")


class TestKeyTuple:
    def test_validates_length(self):
        with pytest.raises(ValueError):
            KeyTuple(encryption=b"short", integrity=b"k" * 16, tree=b"k" * 16)
