"""SGX-style counter tree: the alternative integrity tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import ReplayAttackError
from repro.crypto.counter_tree import CTREE_ARITY, CounterTree


@pytest.fixture
def tree():
    return CounterTree(b"t" * 16, num_leaves=200)


class TestConstruction:
    def test_arity_is_8(self, tree):
        assert tree.arity == CTREE_ARITY == 8

    def test_levels_cover_leaves(self, tree):
        assert 8 ** tree.num_levels >= tree.num_leaves

    def test_deeper_than_equivalent_bmt(self):
        from repro.crypto.merkle import BonsaiMerkleTree
        ct = CounterTree(b"t" * 16, num_leaves=4096)
        bmt = BonsaiMerkleTree(b"t" * 16, num_leaves=4096)
        assert ct.num_levels > bmt.num_levels  # arity 8 vs 16

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            CounterTree(b"t" * 16, num_leaves=0)


class TestVerifyUpdate:
    def test_update_then_verify(self, tree):
        tree.update_leaf(5, b"counters-v1")
        tree.verify_leaf(5, b"counters-v1")

    def test_wrong_payload_rejected(self, tree):
        tree.update_leaf(5, b"counters-v1")
        with pytest.raises(ReplayAttackError):
            tree.verify_leaf(5, b"counters-v0")

    def test_every_update_bumps_root(self, tree):
        # The eager write path: the on-chip root moves on every write.
        before = tree.root_counter
        tree.update_leaf(0, b"a")
        tree.update_leaf(1, b"b")
        assert tree.root_counter == before + 2

    def test_independent_leaves(self, tree):
        tree.update_leaf(0, b"zero")
        tree.update_leaf(199, b"last")
        tree.verify_leaf(0, b"zero")
        tree.verify_leaf(199, b"last")

    def test_out_of_range(self, tree):
        with pytest.raises(IndexError):
            tree.update_leaf(200, b"x")


class TestReplayDetection:
    def test_stale_leaf_replay_detected(self, tree):
        tree.update_leaf(9, b"v1")
        payload, mac = tree.snapshot_leaf(9)
        tree.update_leaf(9, b"v2")
        tree.replay_leaf(9, payload, mac)
        with pytest.raises(ReplayAttackError):
            tree.verify_leaf(9, payload)

    def test_current_value_replay_is_harmless(self, tree):
        """Re-writing the *current* (payload, MAC) is not an attack and
        must keep verifying — freshness only forbids *stale* values."""
        tree.update_leaf(8, b"v1")
        payload, mac = tree.snapshot_leaf(8)
        tree.replay_leaf(8, payload, mac)
        tree.verify_leaf(8, payload)  # no exception

    def test_sibling_update_does_not_break_leaf(self, tree):
        tree.update_leaf(8, b"v1")
        tree.update_leaf(9, b"other")  # same parent (leaves 8..15)
        tree.verify_leaf(8, b"v1")  # leaf 8 unaffected


@settings(max_examples=15, deadline=None)
@given(st.dictionaries(st.integers(0, 63), st.binary(min_size=1, max_size=16),
                       min_size=1, max_size=12))
def test_property_all_updates_verify(updates):
    tree = CounterTree(b"p" * 16, num_leaves=64)
    for leaf, payload in updates.items():
        tree.update_leaf(leaf, payload)
    for leaf, payload in updates.items():
        tree.verify_leaf(leaf, payload)
