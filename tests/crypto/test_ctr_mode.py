"""Counter-mode encryption with split counters (Fig. 1 / Fig. 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.common import constants
from repro.crypto.ctr_mode import CounterModeEngine, Seed


@pytest.fixture
def engine():
    return CounterModeEngine(b"k" * 16)


class TestSeed:
    def test_chunk_seed_is_16_bytes(self):
        seed = Seed(major=1, minor=2, address=0x1000)
        assert len(seed.chunk_seed(0)) == 16

    def test_chunk_seeds_differ_by_cid(self):
        seed = Seed(major=1, minor=2, address=0x1000)
        assert seed.chunk_seed(0) != seed.chunk_seed(1)

    def test_shared_mode_distinguished(self):
        # Fig. 3: shared-counter seeds must never collide with
        # split-counter seeds even at equal numeric values.
        a = Seed(major=3, minor=0, address=0x80, shared=True)
        b = Seed(major=3, minor=0, address=0x80, shared=False)
        assert a.chunk_seed(0) != b.chunk_seed(0)

    def test_cid_out_of_range(self):
        # The seed's cid field is one byte wide.
        with pytest.raises(ValueError):
            Seed(major=0, minor=0, address=0).chunk_seed(256)
        with pytest.raises(ValueError):
            Seed(major=0, minor=0, address=0).chunk_seed(-1)


class TestPad:
    def test_pad_length_matches_block(self, engine):
        seed = Seed(major=0, minor=0, address=0)
        assert len(engine.one_time_pad(seed)) == constants.BLOCK_SIZE

    def test_pad_rejects_bad_length(self, engine):
        with pytest.raises(ValueError):
            engine.one_time_pad(Seed(0, 0, 0), length=20)

    def test_pads_differ_across_addresses(self, engine):
        # Spatial uniqueness: the address is part of the seed.
        p1 = engine.one_time_pad(Seed(0, 0, 0x000))
        p2 = engine.one_time_pad(Seed(0, 0, 0x080))
        assert p1 != p2

    def test_pads_differ_across_counters(self, engine):
        # Temporal uniqueness: bumping the minor changes the pad.
        p1 = engine.one_time_pad(Seed(5, 1, 0x100))
        p2 = engine.one_time_pad(Seed(5, 2, 0x100))
        assert p1 != p2

    def test_pads_differ_across_majors(self, engine):
        p1 = engine.one_time_pad(Seed(1, 0, 0x100))
        p2 = engine.one_time_pad(Seed(2, 0, 0x100))
        assert p1 != p2


class TestEncryptDecrypt:
    def test_roundtrip_block(self, engine):
        seed = Seed(major=7, minor=3, address=0x1200)
        data = bytes(range(128))
        assert engine.decrypt(engine.encrypt(data, seed), seed) == data

    def test_ciphertext_differs_from_plaintext(self, engine):
        seed = Seed(0, 0, 0)
        data = bytes(128)
        assert engine.encrypt(data, seed) != data

    def test_wrong_counter_garbles(self, engine):
        data = b"secret data pad!" * 8
        ct = engine.encrypt(data, Seed(1, 1, 0))
        assert engine.decrypt(ct, Seed(1, 2, 0)) != data

    def test_empty_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.encrypt(b"", Seed(0, 0, 0))

    @given(st.binary(min_size=16, max_size=256).filter(lambda b: len(b) % 16 == 0),
           st.integers(0, 2**30), st.integers(0, 127), st.integers(0, 2**32))
    def test_property_roundtrip(self, data, major, minor, address):
        engine = CounterModeEngine(b"p" * 16)
        seed = Seed(major=major, minor=minor, address=address)
        assert engine.decrypt(engine.encrypt(data, seed), seed) == data

    @given(st.integers(0, 2**20))
    def test_property_xor_symmetry(self, address):
        """Encrypt twice with the same seed returns the plaintext."""
        engine = CounterModeEngine(b"q" * 16)
        seed = Seed(1, 1, address)
        data = bytes(range(64, 192))
        assert engine.encrypt(engine.encrypt(data, seed), seed) == data
