"""Stateful MACs and the Section III-C birthday-bound arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common import constants
from repro.crypto.mac import (
    MACEngine,
    collision_resistance_updates,
    minimum_mac_bits,
)


@pytest.fixture
def engine():
    return MACEngine(b"i" * 16)


class TestBlockMAC:
    def test_mac_size_default_8_bytes(self, engine):
        mac = engine.block_mac(b"c" * 128, 0x100, 1, 2)
        assert len(mac) == 8

    def test_verify_accepts_genuine(self, engine):
        ct = bytes(range(128))
        mac = engine.block_mac(ct, 0x80, 3, 4)
        assert engine.verify_block(ct, 0x80, 3, 4, mac)

    def test_verify_rejects_tampered_ciphertext(self, engine):
        ct = bytearray(range(128))
        mac = engine.block_mac(bytes(ct), 0x80, 3, 4)
        ct[0] ^= 1
        assert not engine.verify_block(bytes(ct), 0x80, 3, 4, mac)

    def test_verify_rejects_wrong_address(self, engine):
        # Spatial binding: a block moved to another address fails.
        ct = bytes(128)
        mac = engine.block_mac(ct, 0x80, 0, 0)
        assert not engine.verify_block(ct, 0x100, 0, 0, mac)

    def test_verify_rejects_stale_counter(self, engine):
        # Stateful MAC: replaying an old (ct, mac) after the counter
        # moved on fails - this is the anti-replay role of the state.
        ct = bytes(128)
        mac = engine.block_mac(ct, 0x80, 1, 5)
        assert not engine.verify_block(ct, 0x80, 1, 6, mac)

    def test_keyed(self):
        ct = bytes(128)
        a = MACEngine(b"a" * 16).block_mac(ct, 0, 0, 0)
        b = MACEngine(b"b" * 16).block_mac(ct, 0, 0, 0)
        assert a != b

    def test_mac_size_validation(self):
        with pytest.raises(ValueError):
            MACEngine(b"k" * 16, mac_size=0)
        with pytest.raises(ValueError):
            MACEngine(b"k" * 16, mac_size=33)

    def test_truncated_mac(self):
        engine = MACEngine(b"k" * 16, mac_size=4)
        assert len(engine.block_mac(bytes(128), 0, 0, 0)) == 4


class TestChunkMAC:
    def test_chunk_mac_over_block_macs(self, engine):
        macs = [engine.block_mac(bytes([i] * 128), i * 128, 0, 0) for i in range(32)]
        cmac = engine.chunk_mac(macs)
        assert len(cmac) == 8
        assert engine.verify_chunk(macs, cmac)

    def test_chunk_mac_detects_any_block_change(self, engine):
        macs = [engine.block_mac(bytes([i] * 128), i * 128, 0, 0) for i in range(32)]
        cmac = engine.chunk_mac(macs)
        macs[7] = engine.block_mac(b"x" * 128, 7 * 128, 0, 0)
        assert not engine.verify_chunk(macs, cmac)

    def test_chunk_mac_order_sensitive(self, engine):
        macs = [bytes([i] * 8) for i in range(4)]
        assert engine.chunk_mac(macs) != engine.chunk_mac(list(reversed(macs)))

    def test_empty_chunk_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.chunk_mac([])


class TestBirthdayBound:
    def test_collision_updates_for_50_bits(self):
        # Section III-C: n=50 -> collision after 2^25 updates.
        assert collision_resistance_updates(50) == pytest.approx(2**25)

    def test_minimum_mac_bits_for_4gb(self):
        # 4 GB / 128 B = 2^25 blocks -> at least 50 bits needed.
        assert minimum_mac_bits(4 * 1024**3) == 50

    def test_truncated_4byte_mac_is_insufficient(self):
        # PSSM's 4 B (32-bit) truncation collides after only 2^16
        # updates - far below the 2^25 blocks of a 4 GB memory.
        assert collision_resistance_updates(32) < 2**25

    def test_default_8byte_mac_is_sufficient(self):
        assert collision_resistance_updates(64) >= 2**25

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            collision_resistance_updates(0)


@given(st.binary(min_size=128, max_size=128), st.integers(0, 2**40),
       st.integers(0, 2**30), st.integers(0, 127))
def test_property_genuine_always_verifies(ct, addr, major, minor):
    engine = MACEngine(b"prop" * 4)
    mac = engine.block_mac(ct, addr, major, minor)
    assert engine.verify_block(ct, addr, major, minor, mac)
