"""Bonsai Merkle Tree: freshness protection over counters (Fig. 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import ReplayAttackError
from repro.crypto.merkle import BonsaiMerkleTree


@pytest.fixture
def tree():
    return BonsaiMerkleTree(b"t" * 16, num_leaves=300)


class TestConstruction:
    def test_levels_cover_leaves(self, tree):
        assert 16 ** tree.num_levels >= tree.num_leaves

    def test_single_leaf_tree(self):
        t = BonsaiMerkleTree(b"t" * 16, num_leaves=1)
        t.update_leaf(0, b"counter")
        t.verify_leaf(0, b"counter")

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            BonsaiMerkleTree(b"t" * 16, num_leaves=0)

    def test_root_is_8_bytes(self, tree):
        assert len(tree.root) == 8


class TestVerifyUpdate:
    def test_update_then_verify(self, tree):
        tree.update_leaf(5, b"counter-state-5")
        tree.verify_leaf(5, b"counter-state-5")  # no exception

    def test_verify_wrong_content_raises(self, tree):
        tree.update_leaf(5, b"counter-state-5")
        with pytest.raises(ReplayAttackError):
            tree.verify_leaf(5, b"stale-counter")

    def test_update_changes_root(self, tree):
        before = tree.root
        tree.update_leaf(0, b"x")
        assert tree.root != before

    def test_independent_leaves(self, tree):
        tree.update_leaf(1, b"one")
        tree.update_leaf(2, b"two")
        tree.verify_leaf(1, b"one")
        tree.verify_leaf(2, b"two")

    def test_out_of_range(self, tree):
        with pytest.raises(IndexError):
            tree.update_leaf(300, b"x")
        with pytest.raises(IndexError):
            tree.verify_leaf(-1, b"x")


class TestReplayDetection:
    def test_replayed_leaf_detected(self, tree):
        """The core replay scenario: the attacker restores a stale
        counter block in off-chip memory; the on-chip root exposes it."""
        tree.update_leaf(9, b"counter-v1")
        tree.update_leaf(9, b"counter-v2")
        # Attacker rewrites the off-chip leaf back to v1 (cannot touch
        # the on-chip root or recompute keyed parent hashes).
        tree.tamper_leaf(9, b"counter-v1")
        with pytest.raises(ReplayAttackError):
            tree.verify_leaf(9, b"counter-v1")

    def test_genuine_state_still_detected_after_tamper(self, tree):
        tree.update_leaf(9, b"counter-v2")
        tree.tamper_leaf(9, b"counter-v1")
        with pytest.raises(ReplayAttackError):
            tree.verify_leaf(9, b"counter-v1")


class TestPathNodeIds:
    def test_path_length_is_levels_minus_root(self, tree):
        ids = tree.path_node_ids(0)
        assert len(ids) == tree.num_levels - 1

    def test_sibling_leaves_share_path(self, tree):
        # Leaves 0 and 1 share the same parent at every level.
        assert tree.path_node_ids(0) == tree.path_node_ids(1)

    def test_distant_leaves_diverge(self, tree):
        assert tree.path_node_ids(0) != tree.path_node_ids(299)

    def test_ids_unique_across_levels(self, tree):
        ids = tree.path_node_ids(37)
        assert len(set(ids)) == len(ids)


@settings(max_examples=20, deadline=None)
@given(st.dictionaries(st.integers(0, 99), st.binary(min_size=1, max_size=32),
                       min_size=1, max_size=20))
def test_property_all_updates_verify(updates):
    tree = BonsaiMerkleTree(b"p" * 16, num_leaves=100)
    for leaf, content in updates.items():
        tree.update_leaf(leaf, content)
    for leaf, content in updates.items():
        tree.verify_leaf(leaf, content)
