"""AES-128 against the official FIPS-197 / NIST vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES128, expand_key


class TestKnownVectors:
    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        cipher = AES128(key)
        assert cipher.encrypt_block(plaintext) == expected
        assert cipher.decrypt_block(expected) == plaintext

    def test_nist_ecb_vector(self):
        # NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, block 1.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_key_schedule_first_round_key_is_key(self):
        key = bytes(range(16))
        assert bytes(expand_key(key)[0]) == key

    def test_key_schedule_has_11_round_keys(self):
        assert len(expand_key(bytes(16))) == 11


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_bad_block_length_encrypt(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(b"123")

    def test_bad_block_length_decrypt(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).decrypt_block(bytes(17))


class TestProperties:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_property_roundtrip(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    def test_property_encryption_changes_data(self, block):
        cipher = AES128(b"0123456789abcdef")
        assert cipher.encrypt_block(block) != block  # no fixed points expected

    @given(st.binary(min_size=16, max_size=16))
    def test_property_deterministic(self, block):
        key = bytes(range(16))
        assert AES128(key).encrypt_block(block) == AES128(key).encrypt_block(block)

    def test_different_keys_different_ciphertext(self):
        block = bytes(16)
        a = AES128(bytes(16)).encrypt_block(block)
        b = AES128(bytes([1] * 16)).encrypt_block(block)
        assert a != b
