"""Warp-level access generation and the coalescing model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.patterns import warp_accesses

KB = 1024


@pytest.fixture
def rng():
    return random.Random(9)


class TestCoalescing:
    def test_fully_coalesced_warp_is_one_line_access(self, rng):
        # 32 threads x 4 B = 128 B: one transaction of 4 sectors.
        accesses = warp_accesses(rng, 0, 64 * KB, n_warps=1, divergence=0.0)
        assert accesses == [(0, False, 4)]

    def test_sequential_warps_stream(self, rng):
        accesses = warp_accesses(rng, 0, 64 * KB, n_warps=4)
        assert [a for a, _, _ in accesses] == [0, 128, 256, 384]

    def test_8byte_elements_two_lines(self, rng):
        # 32 threads x 8 B = 256 B: two line-grain transactions.
        accesses = warp_accesses(rng, 0, 64 * KB, n_warps=1, element_bytes=8)
        assert accesses == [(0, False, 4), (128, False, 4)]

    def test_divergence_fragments_transactions(self):
        rng = random.Random(3)
        coalesced = warp_accesses(random.Random(3), 0, 1024 * KB, 50,
                                  divergence=0.0)
        divergent = warp_accesses(random.Random(3), 0, 1024 * KB, 50,
                                  divergence=0.9)
        assert len(divergent) > len(coalesced)
        # Divergent transactions are mostly narrow.
        avg_width = sum(n for _, _, n in divergent) / len(divergent)
        assert avg_width < 3.0

    def test_transactions_never_cross_lines(self, rng):
        accesses = warp_accesses(rng, 0, 256 * KB, 100, divergence=0.5)
        for addr, _, nsectors in accesses:
            first = (addr % 128) // 32
            assert first + nsectors <= 4

    def test_writes_flagged(self, rng):
        accesses = warp_accesses(rng, 0, 64 * KB, 2, is_write=True)
        assert all(w for _, w, _ in accesses)

    def test_divergence_validation(self, rng):
        with pytest.raises(ValueError):
            warp_accesses(rng, 0, 64 * KB, 1, divergence=1.5)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 30), st.floats(0.0, 1.0))
def test_property_all_transactions_in_bounds(n_warps, divergence):
    rng = random.Random(42)
    size = 128 * KB
    for addr, _, nsectors in warp_accesses(rng, 0, size, n_warps,
                                           divergence=divergence):
        assert 0 <= addr < size
        assert 1 <= nsectors <= 4
        assert addr % 32 == 0
