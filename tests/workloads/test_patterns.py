"""Access-pattern generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import patterns as pat

KB = 1024


@pytest.fixture
def rng():
    return random.Random(42)


class TestStreamRead:
    def test_covers_every_line_once(self):
        accesses = pat.stream_read(0, 4 * KB)
        assert len(accesses) == 32
        addrs = [a for a, w, n in accesses]
        assert addrs == list(range(0, 4 * KB, 128))
        assert all(not w and n == 4 for _, w, n in accesses)

    def test_passes(self):
        accesses = pat.stream_read(0, 4 * KB, passes=3)
        assert len(accesses) == 96

    def test_validation(self):
        with pytest.raises(ValueError):
            pat.stream_read(0, 33)
        with pytest.raises(ValueError):
            pat.stream_read(-128, 4 * KB)


class TestStreamWrite:
    def test_writes_line_grain(self):
        accesses = pat.stream_write(0, 4 * KB)
        assert all(w and n == 4 for _, w, n in accesses)


class TestStreamReadWrite:
    def test_alternates(self):
        accesses = pat.stream_read_write(0, 256)
        assert [w for _, w, _ in accesses] == [False, True, False, True]


class TestRandom:
    def test_random_read_in_range(self, rng):
        for addr, w, n in pat.random_read(rng, 1024, 4 * KB, 100):
            assert 1024 <= addr < 1024 + 4 * KB
            assert addr % 32 == 0
            assert not w and n == 1

    def test_random_write(self, rng):
        assert all(w for _, w, _ in pat.random_write(rng, 0, 4 * KB, 10))

    def test_hotspot_confined(self, rng):
        for addr, _, _ in pat.hotspot_read(rng, 0, 64 * KB, 200, hot_bytes=4 * KB):
            assert addr < 4 * KB


class TestStrided:
    def test_stride_and_wrap(self):
        accesses = pat.strided_read(0, 1024, stride=256, count=8)
        assert len(accesses) == 8
        assert accesses[1][0] - accesses[0][0] == 256
        assert all(0 <= a < 1024 for a, _, _ in accesses)


class TestGather:
    def test_in_range(self, rng):
        for addr, w, n in pat.gather_read(rng, 0, 64 * KB, 500, locality=0.5):
            assert 0 <= addr < 64 * KB and not w

    def test_locality_increases_sequentiality(self):
        rng1, rng2 = random.Random(1), random.Random(1)
        seq = pat.gather_read(rng1, 0, 1024 * KB, 1000, locality=0.9)
        rnd = pat.gather_read(rng2, 0, 1024 * KB, 1000, locality=0.0)

        def sequential_fraction(accesses):
            hits = sum(
                1 for i in range(1, len(accesses))
                if accesses[i][0] - accesses[i - 1][0] == 32
            )
            return hits / len(accesses)

        assert sequential_fraction(seq) > sequential_fraction(rnd) + 0.3

    def test_locality_validation(self, rng):
        with pytest.raises(ValueError):
            pat.gather_read(rng, 0, 4 * KB, 10, locality=1.0)


class TestSnake:
    def test_alternates_direction_per_pass(self):
        accesses = pat.snake(0, 4 * KB, passes=2)
        forward = [a for a, _, _ in accesses[:32]]
        backward = [a for a, _, _ in accesses[32:]]
        assert forward == list(range(0, 4 * KB, 128))
        assert backward == list(reversed(forward))

    def test_line_grain_reads_by_default(self):
        assert all(not w and n == 4 for _, w, n in pat.snake(0, 4 * KB))

    def test_write_flag(self):
        assert all(w for _, w, _ in pat.snake(0, 4 * KB, is_write=True))

    def test_deterministic(self):
        assert pat.snake(0, 8 * KB, passes=3) == \
            pat.snake(0, 8 * KB, passes=3)

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            pat.snake(0, 4 * KB, stride=33)

    @given(passes=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_every_pass_covers_every_line(self, passes):
        accesses = pat.snake(0, 4 * KB, passes=passes)
        assert len(accesses) == 32 * passes
        for p in range(passes):
            chunk = {a for a, _, _ in accesses[p * 32:(p + 1) * 32]}
            assert chunk == set(range(0, 4 * KB, 128))


class TestZipfian:
    def test_deterministic_under_fixed_seed(self):
        a = pat.zipfian(random.Random(7), 0, 64 * KB, 500)
        b = pat.zipfian(random.Random(7), 0, 64 * KB, 500)
        assert a == b

    def test_sector_grain_within_buffer(self, rng):
        accesses = pat.zipfian(rng, 1024, 64 * KB, 500)
        for addr, w, n in accesses:
            assert 1024 <= addr < 1024 + 64 * KB
            assert addr % 32 == 0 and n == 1 and not w

    def test_head_is_hotter_than_tail(self, rng):
        accesses = pat.zipfian(rng, 0, 64 * KB, 2000, alpha=1.2)
        head = sum(1 for a, _, _ in accesses if a < 8 * KB)
        tail = sum(1 for a, _, _ in accesses if a >= 32 * KB)
        assert head > tail

    def test_alpha_zero_is_uniform_support(self, rng):
        accesses = pat.zipfian(rng, 0, 4 * KB, 2000, alpha=0.0)
        assert len({a for a, _, _ in accesses}) > 64

    def test_negative_alpha_rejected(self, rng):
        with pytest.raises(ValueError):
            pat.zipfian(rng, 0, 4 * KB, 10, alpha=-1.0)

    def test_write_flag(self, rng):
        assert all(w for _, w, _ in
                   pat.zipfian(rng, 0, 4 * KB, 50, is_write=True))


class TestInterleave:
    def test_preserves_order_within_source(self, rng):
        a = pat.stream_read(0, 4 * KB)
        b = pat.stream_write(1 << 20, 4 * KB)
        merged = pat.interleave(rng, [a, b])
        assert len(merged) == len(a) + len(b)
        got_a = [x for x in merged if not x[1]]
        got_b = [x for x in merged if x[1]]
        assert got_a == a
        assert got_b == b

    def test_empty_sources_skipped(self, rng):
        assert pat.interleave(rng, [[], pat.stream_read(0, 128)]) == \
            pat.stream_read(0, 128)

    def test_chunked_interleave_same_multiset(self, rng):
        a = pat.stream_read(0, 8 * KB)
        b = pat.random_read(rng, 1 << 20, 4 * KB, 40)
        merged = pat.chunked_interleave(random.Random(5), [a, b])
        assert sorted(merged) == sorted(a + b)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100), st.integers(1, 64))
def test_property_stream_read_within_bounds(base_kb, size_kb):
    base, size = base_kb * KB, size_kb * KB
    for addr, _, _ in pat.stream_read(base, size):
        assert base <= addr < base + size
