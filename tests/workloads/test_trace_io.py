"""Trace serialisation round trips."""

import gzip
import json

import pytest

from repro.workloads.suite import build
from repro.workloads.trace_io import (
    TraceFormatError,
    iter_kernels,
    load_workload,
    save_workload,
    trace_info,
    workload_from_dict,
    workload_to_dict,
)


@pytest.fixture
def workload():
    return build("atax", scale=0.05)


class TestRoundTrip:
    def test_dict_roundtrip_identical(self, workload):
        clone = workload_from_dict(workload_to_dict(workload))
        assert clone.name == workload.name
        assert clone.bandwidth_utilization == workload.bandwidth_utilization
        assert len(clone.kernels) == len(workload.kernels)
        for a, b in zip(clone.kernels, workload.kernels):
            assert a.name == b.name
            assert a.accesses == b.accesses
            assert [(e.kind, e.start, e.size) for e in a.host_events] == \
                [(e.kind, e.start, e.size) for e in b.host_events]
        assert [(b.name, b.address, b.size, b.space, b.host_init)
                for b in clone.buffers] == \
            [(b.name, b.address, b.size, b.space, b.host_init)
             for b in workload.buffers]

    def test_file_roundtrip(self, workload, tmp_path):
        path = tmp_path / "atax.json"
        save_workload(workload, path)
        clone = load_workload(path)
        assert clone.total_accesses == workload.total_accesses

    def test_replay_simulates_identically(self, workload, tmp_path):
        from repro.common.config import SimConfig
        from repro.common.types import Scheme
        from repro.sim.gpu import GPUSimulator

        path = tmp_path / "w.json"
        save_workload(workload, path)
        clone = load_workload(path)
        cfg = SimConfig().with_scheme(Scheme.PSSM)
        a = GPUSimulator(cfg).run(workload, max_inflight=64)
        b = GPUSimulator(cfg).run(clone, max_inflight=64)
        assert a.cycles == b.cycles
        assert a.traffic.total_bytes == b.traffic.total_bytes


class TestKernelOrdering:
    def test_v1_records_carry_seq(self, workload):
        data = workload_to_dict(workload)
        assert [k["seq"] for k in data["kernels"]] == \
            list(range(len(workload.kernels)))

    def test_reordered_v1_records_replay_in_launch_order(self, workload):
        data = workload_to_dict(workload)
        data["kernels"].reverse()
        clone = workload_from_dict(data)
        assert [k.name for k in clone.kernels] == \
            [k.name for k in workload.kernels]
        assert [k.accesses for k in clone.kernels] == \
            [k.accesses for k in workload.kernels]

    def test_pre_seq_files_fall_back_to_list_order(self, workload):
        data = workload_to_dict(workload)
        for record in data["kernels"]:
            del record["seq"]
        clone = workload_from_dict(data)
        assert [k.name for k in clone.kernels] == \
            [k.name for k in workload.kernels]


class TestV2Stream:
    def test_gz_suffix_selects_v2(self, workload, tmp_path):
        path = tmp_path / "w.jsonl.gz"
        save_workload(workload, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert trace_info(path)["format_version"] == 2

    def test_round_trip_identical(self, workload, tmp_path):
        path = tmp_path / "w.jsonl.gz"
        save_workload(workload, path)
        clone = load_workload(path)
        assert clone.name == workload.name
        assert [k.name for k in clone.kernels] == \
            [k.name for k in workload.kernels]
        assert [k.accesses for k in clone.kernels] == \
            [k.accesses for k in workload.kernels]
        assert [(b.name, b.address, b.size) for b in clone.buffers] == \
            [(b.name, b.address, b.size) for b in workload.buffers]

    def test_v2_matches_v1_round_trip(self, workload, tmp_path):
        p1 = tmp_path / "w.json"
        p2 = tmp_path / "w.jsonl.gz"
        save_workload(workload, p1)
        save_workload(workload, p2)
        a, b = load_workload(p1), load_workload(p2)
        assert [k.accesses for k in a.kernels] == \
            [k.accesses for k in b.kernels]

    def test_detection_by_magic_not_suffix(self, workload, tmp_path):
        path = tmp_path / "w.json"  # lying suffix
        save_workload(workload, path, version=2)
        assert load_workload(path).total_accesses == workload.total_accesses

    def test_iter_kernels_streams_in_order(self, workload, tmp_path):
        path = tmp_path / "w.jsonl.gz"
        save_workload(workload, path)
        names = [k.name for k in iter_kernels(path)]
        assert names == [k.name for k in workload.kernels]

    def test_iter_kernels_reads_v1_too(self, workload, tmp_path):
        path = tmp_path / "w.json"
        save_workload(workload, path)
        assert [k.accesses for k in iter_kernels(path)] == \
            [k.accesses for k in workload.kernels]

    def test_truncated_stream_rejected(self, workload, tmp_path):
        path = tmp_path / "w.jsonl.gz"
        save_workload(workload, path)
        lines = gzip.open(path, "rt").read().splitlines(keepends=True)
        cut = tmp_path / "cut.jsonl.gz"
        with gzip.open(cut, "wt") as f:
            f.writelines(lines[:-1])  # drop the end record
        with pytest.raises(TraceFormatError, match="truncated"):
            list(iter_kernels(cut))

    def test_truncated_gzip_bytes_rejected(self, workload, tmp_path):
        """Cutting the compressed bytes themselves (a partial download,
        a killed writer) must raise TraceFormatError, not EOFError."""
        path = tmp_path / "w.jsonl.gz"
        save_workload(workload, path)
        data = path.read_bytes()
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceFormatError, match="truncated gzip"):
            list(iter_kernels(cut))
        with pytest.raises(TraceFormatError, match="truncated gzip"):
            load_workload(cut)

    def test_miscounted_end_record_rejected(self, workload, tmp_path):
        path = tmp_path / "w.jsonl.gz"
        save_workload(workload, path)
        lines = gzip.open(path, "rt").read().splitlines()
        end = json.loads(lines[-1])
        end["total_accesses"] += 1
        lines[-1] = json.dumps(end)
        bad = tmp_path / "bad.jsonl.gz"
        with gzip.open(bad, "wt") as f:
            f.write("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="end record"):
            list(iter_kernels(bad))

    def test_reordered_v2_kernels_rejected(self, workload, tmp_path):
        path = tmp_path / "w.jsonl.gz"
        save_workload(workload, path)
        lines = gzip.open(path, "rt").read().splitlines()
        records = [json.loads(line) for line in lines]
        kernel_ids = [i for i, r in enumerate(records)
                      if r.get("type") == "kernel"]
        if len(kernel_ids) >= 2:
            a, b = kernel_ids[0], kernel_ids[1]
            lines[a], lines[b] = lines[b], lines[a]
        bad = tmp_path / "swapped.jsonl.gz"
        with gzip.open(bad, "wt") as f:
            f.write("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="seq"):
            list(iter_kernels(bad))

    def test_replay_simulates_identically_to_v1(self, workload, tmp_path):
        from repro.common.config import SimConfig
        from repro.common.types import Scheme
        from repro.sim.gpu import GPUSimulator

        p1, p2 = tmp_path / "w.json", tmp_path / "w.jsonl.gz"
        save_workload(workload, p1)
        save_workload(workload, p2)
        cfg = SimConfig().with_scheme(Scheme.SHM)
        a = GPUSimulator(cfg).run(load_workload(p1), max_inflight=64)
        b = GPUSimulator(cfg).run(load_workload(p2), max_inflight=64)
        assert a.cycles == b.cycles
        assert a.traffic.total_bytes == b.traffic.total_bytes


class TestValidation:
    def test_bad_version_rejected(self, workload):
        data = workload_to_dict(workload)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            workload_from_dict(data)

    def test_missing_version_gets_clear_error(self, workload):
        data = workload_to_dict(workload)
        del data["format_version"]
        with pytest.raises(TraceFormatError, match="missing format_version"):
            workload_from_dict(data)

    def test_trace_format_error_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_unwritable_version_rejected(self, workload, tmp_path):
        with pytest.raises(TraceFormatError, match="format_version"):
            save_workload(workload, tmp_path / "w.json", version=7)

    def test_non_trace_file_gets_clear_error(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json at all")
        with pytest.raises(TraceFormatError):
            load_workload(path)

    def test_ragged_arrays_rejected(self, workload):
        data = workload_to_dict(workload)
        data["kernels"][0]["writes"].pop()
        with pytest.raises(ValueError):
            workload_from_dict(data)

    def test_out_of_buffer_access_rejected(self, workload):
        data = workload_to_dict(workload)
        data["kernels"][0]["addresses"][0] = 1 << 40
        with pytest.raises(ValueError):
            workload_from_dict(data)
