"""Trace serialisation round trips."""

import pytest

from repro.workloads.suite import build
from repro.workloads.trace_io import (
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


@pytest.fixture
def workload():
    return build("atax", scale=0.05)


class TestRoundTrip:
    def test_dict_roundtrip_identical(self, workload):
        clone = workload_from_dict(workload_to_dict(workload))
        assert clone.name == workload.name
        assert clone.bandwidth_utilization == workload.bandwidth_utilization
        assert len(clone.kernels) == len(workload.kernels)
        for a, b in zip(clone.kernels, workload.kernels):
            assert a.name == b.name
            assert a.accesses == b.accesses
            assert [(e.kind, e.start, e.size) for e in a.host_events] == \
                [(e.kind, e.start, e.size) for e in b.host_events]
        assert [(b.name, b.address, b.size, b.space, b.host_init)
                for b in clone.buffers] == \
            [(b.name, b.address, b.size, b.space, b.host_init)
             for b in workload.buffers]

    def test_file_roundtrip(self, workload, tmp_path):
        path = tmp_path / "atax.json"
        save_workload(workload, path)
        clone = load_workload(path)
        assert clone.total_accesses == workload.total_accesses

    def test_replay_simulates_identically(self, workload, tmp_path):
        from repro.common.config import SimConfig
        from repro.common.types import Scheme
        from repro.sim.gpu import GPUSimulator

        path = tmp_path / "w.json"
        save_workload(workload, path)
        clone = load_workload(path)
        cfg = SimConfig().with_scheme(Scheme.PSSM)
        a = GPUSimulator(cfg).run(workload, max_inflight=64)
        b = GPUSimulator(cfg).run(clone, max_inflight=64)
        assert a.cycles == b.cycles
        assert a.traffic.total_bytes == b.traffic.total_bytes


class TestValidation:
    def test_bad_version_rejected(self, workload):
        data = workload_to_dict(workload)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            workload_from_dict(data)

    def test_ragged_arrays_rejected(self, workload):
        data = workload_to_dict(workload)
        data["kernels"][0]["writes"].pop()
        with pytest.raises(ValueError):
            workload_from_dict(data)

    def test_out_of_buffer_access_rejected(self, workload):
        data = workload_to_dict(workload)
        data["kernels"][0]["addresses"][0] = 1 << 40
        with pytest.raises(ValueError):
            workload_from_dict(data)
