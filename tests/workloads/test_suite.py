"""The 16-benchmark synthetic suite (Table VII)."""

import pytest

from repro.common.types import MemorySpace
from repro.workloads.suite import BENCHMARK_NAMES, BENCHMARKS, build, build_suite

#: Table VII bandwidth-utilisation targets (midpoints of the ranges).
TABLE7_UTILIZATION = {
    "atax": 0.23, "backprop": 0.40, "bfs": 0.35, "b+tree": 0.14,
    "cfd": 0.50, "fdtd2d": 0.92, "kmeans": 0.74, "mvt": 0.22,
    "histo": 0.55, "lbm": 0.95, "mri-gridding": 0.40, "sad": 0.17,
    "stencil": 0.30, "srad": 0.21, "srad_v2": 0.75, "streamcluster": 0.78,
}


class TestSuiteCompleteness:
    def test_sixteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 16
        assert set(BENCHMARK_NAMES) == set(BENCHMARKS)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_builds_and_validates(self, name):
        w = build(name, scale=0.05)
        assert w.name == name
        assert w.total_accesses > 0
        assert w.kernels

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build("doom")

    def test_build_suite_subset(self):
        suite = build_suite(scale=0.05, names=["atax", "lbm"])
        assert set(suite) == {"atax", "lbm"}


class TestTable7Characteristics:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_bandwidth_targets_match_table7(self, name):
        w = build(name, scale=0.05)
        assert w.bandwidth_utilization == pytest.approx(
            TABLE7_UTILIZATION[name], abs=0.01
        )

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_workload_uses_constant_memory(self, name):
        # Table VII: every benchmark lists constant memory.
        w = build(name, scale=0.05)
        assert MemorySpace.CONSTANT in w.spaces

    @pytest.mark.parametrize("name", ["kmeans", "sad"])
    def test_texture_users(self, name):
        # Table VII: kmeans and sad also use texture memory.
        w = build(name, scale=0.05)
        assert MemorySpace.TEXTURE in w.spaces

    def test_multikernel_workloads(self):
        assert len(build("bfs", scale=0.05).kernels) >= 3
        assert len(build("fdtd2d", scale=0.05).kernels) == 3
        assert len(build("srad", scale=0.05).kernels) == 4


class TestScaling:
    def test_scale_changes_trace_length(self):
        small = build("atax", scale=0.05)
        large = build("atax", scale=0.2)
        assert large.total_accesses > small.total_accesses

    def test_deterministic_per_name(self):
        a = build("histo", scale=0.05)
        b = build("histo", scale=0.05)
        assert a.kernels[0].accesses == b.kernels[0].accesses
