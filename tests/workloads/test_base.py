"""Workload builder and validation."""

import pytest

from repro.common.types import MemorySpace
from repro.workloads.base import ALLOC_ALIGN, Buffer, WorkloadBuilder
from repro.workloads import patterns as pat

KB = 1024


class TestAllocation:
    def test_alignment(self):
        b = WorkloadBuilder("t", 0.5)
        buf1 = b.alloc("a", 100)
        buf2 = b.alloc("b", 100)
        assert buf1.address % ALLOC_ALIGN == 0
        assert buf2.address % ALLOC_ALIGN == 0
        assert buf2.address >= buf1.address + buf1.size

    def test_alignment_keeps_local_regions_exclusive(self):
        """192 KB-aligned buffers map to 16 KB-aligned local offsets in
        every partition, so two buffers never share a detector region."""
        from repro.common.address import AddressMapper
        mapper = AddressMapper(12, 256)
        b = WorkloadBuilder("t", 0.5)
        buf1 = b.alloc("a", 200 * KB)
        buf2 = b.alloc("b", 200 * KB)
        for p in range(12):
            lo1, hi1 = mapper.local_span(buf1.address, buf1.size, p)
            lo2, hi2 = mapper.local_span(buf2.address, buf2.size, p)
            assert hi1 <= lo2  # disjoint
            assert lo1 % (16 * KB) == 0
            assert lo2 % (16 * KB) == 0

    def test_size_rounded_up(self):
        b = WorkloadBuilder("t", 0.5)
        buf = b.alloc("a", 1)
        assert buf.size == ALLOC_ALIGN


class TestKernels:
    def test_host_events_built(self):
        b = WorkloadBuilder("t", 0.5)
        data = b.alloc("in", 192 * KB)
        b.kernel("k0", pat.stream_read(data.address, data.size))
        b.kernel("k1", pat.stream_read(data.address, data.size),
                 copies=[data])
        w = b.build()
        assert not w.kernels[0].host_events
        assert w.kernels[1].host_events[0].kind == "copy"

    def test_reset_events(self):
        b = WorkloadBuilder("t", 0.5)
        data = b.alloc("in", 192 * KB)
        b.kernel("k0", pat.stream_read(data.address, data.size),
                 readonly_resets=[data])
        w = b.build()
        assert w.kernels[0].host_events[0].kind == "readonly_reset"

    def test_init_copies_only_host_init_buffers(self):
        b = WorkloadBuilder("t", 0.5)
        data = b.alloc("in", 192 * KB, host_init=True)
        out = b.alloc("out", 192 * KB, host_init=False)
        b.kernel("k0", pat.stream_read(data.address, data.size))
        w = b.build()
        starts = {e.start for e in w.init_copies()}
        assert data.address in starts
        assert out.address not in starts


class TestValidation:
    def test_out_of_buffer_access_rejected(self):
        b = WorkloadBuilder("t", 0.5)
        b.alloc("in", 192 * KB)
        b.kernel("k0", [(10 * (1 << 20), False, 4)])
        with pytest.raises(ValueError):
            b.build()

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            WorkloadBuilder("t", 0.0)
        with pytest.raises(ValueError):
            WorkloadBuilder("t", 1.5)


class TestWorkloadProperties:
    def test_counts(self):
        b = WorkloadBuilder("t", 0.5)
        data = b.alloc("in", 192 * KB)
        b.kernel("k0", pat.stream_read(data.address, data.size))
        w = b.build()
        assert w.total_accesses == 1536
        assert w.instructions == 1536 * w.instructions_per_access

    def test_spaces(self):
        b = WorkloadBuilder("t", 0.5)
        b.alloc("in", 192 * KB, space=MemorySpace.TEXTURE)
        c = b.alloc("c", 192 * KB, space=MemorySpace.CONSTANT)
        b.kernel("k0", pat.stream_read(c.address, c.size))
        w = b.build()
        assert MemorySpace.TEXTURE in w.spaces
        assert MemorySpace.CONSTANT in w.spaces
