"""Extended (beyond-paper) workload models."""

import pytest

from repro.common.types import Scheme
from repro.sim.runner import Runner
from repro.workloads.extended import EXTENDED, EXTENDED_NAMES, build_extended


class TestBuilders:
    @pytest.mark.parametrize("name", EXTENDED_NAMES)
    def test_builds_and_validates(self, name):
        w = build_extended(name, scale=0.05)
        assert w.total_accesses > 0
        assert w.kernels

    def test_registry_complete(self):
        assert set(EXTENDED) == set(EXTENDED_NAMES)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_extended("quake3")


class TestAdaptiveBehaviour:
    @pytest.fixture(scope="class")
    def runner(self):
        r = Runner()
        for name in EXTENDED_NAMES:
            r.add_workload(build_extended(name, scale=0.1))
        return r

    def test_transformer_rides_the_readonly_fast_path(self, runner):
        result = runner.run("transformer-infer", Scheme.SHM)
        # Weight streams dominate: most accesses use the shared counter.
        assert result.shared_counter_reads > 0
        assert result.traffic.counter_bytes < result.traffic.data_bytes * 0.02

    def test_shm_beats_pssm_on_transformer(self, runner):
        base = runner.baseline("transformer-infer")
        shm = runner.run("transformer-infer", Scheme.SHM)
        pssm = runner.run("transformer-infer", Scheme.PSSM)
        assert shm.normalized_ipc(base) > pssm.normalized_ipc(base)

    def test_radix_sort_is_the_hard_case(self, runner):
        """Scattered writes defeat both optimisations: SHM degrades
        gracefully to ~PSSM behaviour rather than below it."""
        base = runner.baseline("radix-sort")
        shm = runner.run("radix-sort", Scheme.SHM)
        pssm = runner.run("radix-sort", Scheme.PSSM)
        assert shm.normalized_ipc(base) > pssm.normalized_ipc(base) - 0.05

    def test_all_extended_run_all_main_schemes(self, runner):
        for name in EXTENDED_NAMES:
            base = runner.baseline(name)
            for scheme in (Scheme.NAIVE, Scheme.PSSM, Scheme.SHM):
                nipc = runner.run(name, scheme).normalized_ipc(base)
                assert 0.0 < nipc <= 1.001, (name, scheme)
