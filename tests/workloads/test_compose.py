"""The composable suite language: spec validation, lowering, builder
equivalence."""

import json

import pytest

from repro.workloads.base import ALLOC_ALIGN
from repro.workloads.compose import (
    PRIMITIVES,
    SUITE_FORMAT,
    Composer,
    SpecError,
    build_workload,
    describe,
    load_spec,
    parse_size,
    step,
    validate_spec,
)


def small_spec(**overrides):
    spec = {
        "suite_format": SUITE_FORMAT,
        "name": "unit",
        "bandwidth_utilization": 0.5,
        "seed": 42,
        "buffers": [
            {"name": "a", "size": "128KB"},
            {"name": "out", "size": "64KB", "host_init": False},
        ],
        "phases": [
            {"name": "warm", "steps": [
                {"pattern": "sequential", "buffer": "a"}]},
            {"name": "mix", "compose": "chunked", "steps": [
                {"pattern": "zipfian", "buffer": "a", "count": 400},
                {"pattern": "random", "buffer": "out", "count": 100,
                 "write": True},
            ]},
        ],
    }
    spec.update(overrides)
    return spec


class TestParseSize:
    def test_units(self):
        assert parse_size("1.5MB") == 3 << 19
        assert parse_size("192KB") == 192 << 10
        assert parse_size("64B") == 64
        assert parse_size(4096) == 4096

    def test_unparseable(self):
        with pytest.raises(SpecError):
            parse_size("lots")


class TestValidation:
    def test_valid_spec_passes(self):
        validate_spec(small_spec())

    def test_wrong_format_version(self):
        with pytest.raises(SpecError, match="suite_format"):
            validate_spec(small_spec(suite_format=99))

    def test_unknown_pattern_names_known_ones(self):
        spec = small_spec()
        spec["phases"][0]["steps"][0]["pattern"] = "mystery"
        with pytest.raises(SpecError, match="mystery"):
            validate_spec(spec)

    def test_unknown_buffer(self):
        spec = small_spec()
        spec["phases"][0]["steps"][0]["buffer"] = "ghost"
        with pytest.raises(SpecError, match="ghost"):
            validate_spec(spec)

    def test_unaccepted_param_listed(self):
        spec = small_spec()
        spec["phases"][0]["steps"][0]["wat"] = 1
        with pytest.raises(SpecError, match="wat"):
            validate_spec(spec)

    def test_first_phase_cannot_be_marker(self):
        spec = small_spec()
        spec["phases"][0]["barrier"] = False
        with pytest.raises(SpecError, match="barrier"):
            validate_spec(spec)

    def test_unknown_compose_mode(self):
        spec = small_spec()
        spec["phases"][1]["compose"] = "shuffle"
        with pytest.raises(SpecError, match="shuffle"):
            validate_spec(spec)


class TestLowering:
    def test_phases_become_kernels(self):
        w = build_workload(small_spec())
        assert [k.name for k in w.kernels] == ["warm", "mix"]
        w.validate()

    def test_deterministic_across_builds(self):
        a = build_workload(small_spec())
        b = build_workload(small_spec())
        assert [k.accesses for k in a.kernels] == \
            [k.accesses for k in b.kernels]

    def test_phase_marker_extends_previous_kernel(self):
        spec = small_spec()
        spec["phases"].append({
            "name": "flip", "barrier": False,
            "steps": [{"pattern": "random", "buffer": "a", "count": 64}],
        })
        with_marker = build_workload(spec)
        without = build_workload(small_spec())
        assert len(with_marker.kernels) == 2
        assert len(with_marker.kernels[-1].accesses) > \
            len(without.kernels[-1].accesses)

    def test_scale_shrinks_counts_and_sizes(self):
        # 1.5MB = 8 allocation-alignment units, so the halved size is
        # visible through alloc's 192KB rounding.
        spec = small_spec()
        spec["buffers"][0]["size"] = "1.5MB"
        full = build_workload(spec, scale=1.0)
        half = build_workload(spec, scale=0.5)
        assert half.total_accesses < full.total_accesses
        assert half.buffers[0].size == full.buffers[0].size // 2

    def test_fixed_size_buffer_ignores_scale(self):
        spec = small_spec()
        spec["buffers"][0]["size"] = "1.5MB"
        spec["buffers"][0]["fixed_size"] = True
        full = build_workload(spec, scale=1.0)
        half = build_workload(spec, scale=0.5)
        assert half.buffers[0].size == full.buffers[0].size

    def test_buffers_are_alloc_aligned(self):
        w = build_workload(small_spec())
        assert all(b.address % ALLOC_ALIGN == 0 for b in w.buffers)

    def test_every_primitive_lowers(self):
        for name, prim in PRIMITIVES.items():
            spec = small_spec(phases=[
                {"name": "only", "steps": [
                    {"pattern": name, "buffer": "a"}]},
            ])
            w = build_workload(spec, scale=0.5)
            assert w.total_accesses > 0, name
            w.validate()

    def test_concat_preserves_source_order(self):
        spec = small_spec(phases=[
            {"name": "p", "compose": "concat", "steps": [
                {"pattern": "sequential", "buffer": "a"},
                {"pattern": "sequential", "buffer": "out"}]},
        ])
        w = build_workload(spec)
        a, out = w.buffers
        boundary = next(i for i, (addr, _, _) in
                        enumerate(w.kernels[0].accesses)
                        if addr >= out.address)
        assert all(addr < out.address for addr, _, _ in
                   w.kernels[0].accesses[:boundary])
        assert all(addr >= out.address for addr, _, _ in
                   w.kernels[0].accesses[boundary:])

    def test_sequential_write_rejects_stride(self):
        spec = small_spec(phases=[
            {"name": "p", "steps": [
                {"pattern": "sequential", "buffer": "a", "write": True,
                 "stride": 256}]},
        ])
        with pytest.raises(SpecError, match="stride"):
            build_workload(spec)


class TestComposerEquivalence:
    def composer(self):
        return (
            Composer("unit", 0.5, seed=42)
            .buffer("a", "128KB")
            .buffer("out", "64KB", host_init=False)
            .phase("warm", step("sequential", "a"))
            .phase("mix", step("zipfian", "a", count=400),
                   step("random", "out", count=100, write=True),
                   compose="chunked")
        )

    def test_to_spec_matches_hand_written_json(self):
        assert self.composer().to_spec() == small_spec()

    def test_build_equals_spec_build(self):
        built = self.composer().build()
        from_spec = build_workload(small_spec())
        assert [k.accesses for k in built.kernels] == \
            [k.accesses for k in from_spec.kernels]

    def test_spec_survives_json_round_trip(self):
        spec = json.loads(json.dumps(self.composer().to_spec()))
        a = build_workload(spec)
        b = self.composer().build()
        assert [k.accesses for k in a.kernels] == \
            [k.accesses for k in b.kernels]


class TestLoadSpec:
    def test_json_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(small_spec()))
        assert load_spec(path) == small_spec()

    def test_invalid_json_is_spec_error(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="invalid JSON"):
            load_spec(path)

    def test_invalid_spec_rejected_on_load(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(small_spec(suite_format=3)))
        with pytest.raises(SpecError):
            load_spec(path)

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "suite.toml"
        path.write_text(
            'suite_format = 1\n'
            'name = "toml-suite"\n'
            'bandwidth_utilization = 0.5\n'
            'seed = 42\n'
            '[[buffers]]\nname = "a"\nsize = "128KB"\n'
            '[[phases]]\nname = "warm"\n'
            '[[phases.steps]]\npattern = "sequential"\nbuffer = "a"\n'
        )
        spec = load_spec(path)
        assert spec["name"] == "toml-suite"
        build_workload(spec).validate()


class TestDescribe:
    def test_mentions_phases_and_patterns(self):
        text = describe(small_spec(), scale=0.5)
        assert "warm" in text and "mix" in text
        assert "zipfian(a)" in text
        assert "2 kernels" in text
