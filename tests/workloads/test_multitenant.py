"""The multi-tenant traffic model: isolation, arrivals, determinism."""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.workloads.base import ALLOC_ALIGN
from repro.workloads.compose import SpecError, build_workload, validate_spec
from repro.workloads.multitenant import (
    TEMPLATES,
    build_multi_tenant,
    contention_spec,
    phase_churn_spec,
)


def tiny_spec(**mt_overrides):
    """A fast-to-build 2-tenant spec for unit tests."""
    spec = contention_spec(2, footprint="192KB")
    spec["multi_tenant"].update(
        {"epochs": 2, "slots_per_epoch": 1024, "burst_accesses": 32},
        **mt_overrides)
    return spec


def trace_digest(workload) -> str:
    h = hashlib.sha256()
    for kernel in workload.kernels:
        h.update(json.dumps(kernel.accesses).encode())
    return h.hexdigest()


class TestValidation:
    def test_templates_all_validate(self):
        for name, factory in TEMPLATES.items():
            validate_spec(factory())

    def test_unknown_arrival(self):
        with pytest.raises(SpecError, match="arrival"):
            validate_spec(tiny_spec(arrival="psychic"))

    def test_unknown_mt_key(self):
        spec = tiny_spec()
        spec["multi_tenant"]["jitter"] = 1
        with pytest.raises(SpecError, match="jitter"):
            validate_spec(spec)

    def test_unknown_tenant_pattern(self):
        spec = tiny_spec()
        spec["tenants"][0]["patterns"] = ["gather"]
        with pytest.raises(SpecError, match="gather"):
            validate_spec(spec)

    def test_duplicate_tenant_name(self):
        spec = tiny_spec()
        spec["tenants"][1]["name"] = spec["tenants"][0]["name"]
        with pytest.raises(SpecError, match="duplicate"):
            validate_spec(spec)

    def test_churn_out_of_range(self):
        with pytest.raises(SpecError, match="phase_churn"):
            validate_spec(tiny_spec(phase_churn=1.5))


class TestLowering:
    def test_one_kernel_per_epoch(self):
        w = build_multi_tenant(tiny_spec())
        assert [k.name for k in w.kernels] == ["epoch0", "epoch1"]
        w.validate()

    def test_tenant_slabs_are_disjoint_and_aligned(self):
        w = build_multi_tenant(tiny_spec())
        spans = sorted((b.address, b.end) for b in w.buffers)
        assert all(b.address % ALLOC_ALIGN == 0 for b in w.buffers)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_single_tenant_stays_inside_its_slab(self):
        spec = tiny_spec()
        spec["tenants"] = spec["tenants"][:1]
        w = build_multi_tenant(spec)
        lo = min(b.address for b in w.buffers)
        hi = max(b.end for b in w.buffers)
        for kernel in w.kernels:
            assert all(lo <= addr < hi for addr, _, _ in kernel.accesses)

    def test_writes_target_out_buffer_only(self):
        w = build_multi_tenant(tiny_spec())
        outs = [b for b in w.buffers if b.name.endswith("/out")]
        for kernel in w.kernels:
            for addr, is_write, _ in kernel.accesses:
                if is_write:
                    assert any(b.address <= addr < b.end for b in outs)

    def test_closed_loop_arrival_builds(self):
        w = build_multi_tenant(tiny_spec(arrival="closed_loop"))
        assert w.total_accesses > 0

    def test_full_churn_changes_epochs(self):
        spec = tiny_spec(phase_churn=1.0)
        w = build_multi_tenant(spec)
        # With certain churn each tenant flips patterns at the epoch
        # boundary, so the two epochs cannot carry identical streams.
        assert w.kernels[0].accesses != w.kernels[1].accesses

    def test_scale_shrinks_footprint_and_bursts(self):
        # 1.5MB footprints so the halving is visible through alloc's
        # 192KB size rounding.
        spec = contention_spec(2, footprint="1.5MB")
        spec["multi_tenant"].update(
            epochs=2, slots_per_epoch=1024, burst_accesses=32)
        full = build_multi_tenant(spec, scale=1.0)
        half = build_multi_tenant(spec, scale=0.5)
        assert half.buffers[0].size == full.buffers[0].size // 2
        assert 0 < half.total_accesses < full.total_accesses

    def test_compose_dispatches_tenant_specs(self):
        via_compose = build_workload(tiny_spec())
        direct = build_multi_tenant(tiny_spec())
        assert trace_digest(via_compose) == trace_digest(direct)


class TestSpecFactories:
    def test_contention_names_follow_tenant_count(self):
        assert contention_spec(8)["name"] == "mt8"
        assert len(contention_spec(8)["tenants"]) == 8

    def test_closed_loop_gets_distinct_name(self):
        assert contention_spec(4, arrival="closed_loop")["name"] == \
            "mt4_closed_loop"

    def test_churn_names_carry_percentage(self):
        assert phase_churn_spec(0.25)["name"] == "mt4_churn25"
        assert phase_churn_spec(0.25)["multi_tenant"]["phase_churn"] == 0.25


class TestDeterminism:
    def test_rebuild_is_byte_identical(self):
        assert trace_digest(build_multi_tenant(tiny_spec())) == \
            trace_digest(build_multi_tenant(tiny_spec()))

    def test_digest_stable_across_pythonhashseed(self, tmp_path):
        """A fresh interpreter with a different PYTHONHASHSEED (the
        pool-worker situation) must produce the identical stream."""
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec()))
        prog = (
            "import hashlib, json, sys\n"
            "from repro.workloads.compose import build_workload\n"
            "spec = json.load(open(sys.argv[1]))\n"
            "w = build_workload(spec)\n"
            "h = hashlib.sha256()\n"
            "for k in w.kernels:\n"
            "    h.update(json.dumps(k.accesses).encode())\n"
            "print(h.hexdigest())\n"
        )
        digests = set()
        for seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", prog, str(spec_path)],
                env=env, capture_output=True, text=True, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1
        assert digests.pop() == trace_digest(build_multi_tenant(tiny_spec()))
