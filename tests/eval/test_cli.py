"""Command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "atax"])
        assert args.workload == "atax"
        assert args.scheme == ["pssm", "shm"]

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "12", "--workloads", "atax", "--scale", "0.1"]
        )
        assert args.number == "12"
        assert args.workloads == ["atax"]
        assert args.scale == 0.1

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom3"])

    def test_all_paper_figures_have_drivers(self):
        assert set(FIGURES) == {"5", "10", "11", "12", "13", "14", "15", "16"}


class TestCommands:
    def test_hardware(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "Table IX" in out
        assert "5460" in out

    def test_suite_list(self, capsys):
        assert main(["suite", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fdtd2d" in out and "b+tree" in out

    def test_run_small(self, capsys):
        assert main(["run", "--workload", "atax", "--scheme", "pssm",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "pssm" in out and "overhead" in out

    def test_figure_small(self, capsys):
        assert main(["figure", "5", "--workloads", "atax",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "atax" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "atax", "--scheme", "bogus",
                  "--scale", "0.05"])


class TestWorkloadsVerb:
    def test_lists_patterns_and_templates(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "zipfian" in out and "snake" in out
        assert "mt4" in out and "mt4_churn50" in out

    def test_describe_template(self, capsys):
        assert main(["workloads", "--describe", "mt2",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "2 tenants" in out and "epoch0" in out

    def test_describe_spec_file(self, tmp_path, capsys):
        from repro.workloads.multitenant import contention_spec

        path = tmp_path / "suite.json"
        path.write_text(json.dumps(contention_spec(2,
                                                   footprint="192KB")))
        assert main(["workloads", "--describe", str(path),
                     "--scale", "0.05"]) == 0
        assert "mt2" in capsys.readouterr().out

    def test_emit_trace_validates(self, tmp_path, capsys):
        from repro.obs.validate import validate_workload_trace
        from repro.workloads.multitenant import contention_spec

        spec = tmp_path / "suite.json"
        spec.write_text(json.dumps(contention_spec(2,
                                                   footprint="192KB")))
        out = tmp_path / "trace.jsonl.gz"
        assert main(["workloads", "--spec", str(spec), "--scale", "0.05",
                     "--emit-trace", str(out)]) == 0
        info = validate_workload_trace(out)
        assert info["format_version"] == 2
        assert info["accesses"] > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["workloads", "--describe", "not-a-template"])

    def test_validator_flags_corrupt_trace(self, tmp_path, capsys):
        from repro.obs import validate as v

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(v.ValidationError):
            v.validate_workload_trace(path)
        assert v.main(["--workload-trace", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestObservability:
    @pytest.fixture(scope="class")
    def exports(self, tmp_path_factory):
        """One instrumented run shared by the assertions below."""
        outdir = tmp_path_factory.mktemp("obs")
        trace = outdir / "trace.json"
        metrics = outdir / "metrics.jsonl"
        code = main(["run", "--workload", "atax", "--scheme", "shm",
                     "--scale", "0.05", "--trace", str(trace),
                     "--metrics-out", str(metrics)])
        assert code == 0
        return trace, metrics

    def test_run_reports_p95_latency(self, exports, capsys):
        assert main(["run", "--workload", "atax", "--scheme", "pssm",
                     "--scale", "0.05"]) == 0
        assert "p95 lat" in capsys.readouterr().out

    def test_trace_is_valid_chrome_json(self, exports):
        trace, _ = exports
        data = json.loads(trace.read_text())
        events = data["traceEvents"]
        assert events
        assert all("ph" in e and "pid" in e for e in events)
        assert any(e.get("cat") == "mee" for e in events)

    def test_metrics_validate(self, exports):
        from repro.obs.validate import validate_metrics, validate_trace

        trace, metrics = exports
        validate_trace(trace, expect_partitions=12)
        info = validate_metrics(metrics)
        assert info["runs"] == {"atax/shm": info["runs"]["atax/shm"]}

    def test_inspect_windows(self, exports, capsys):
        _, metrics = exports
        assert main(["inspect", str(metrics), "--limit", "8"]) == 0
        out = capsys.readouterr().out
        assert "cycle windows" in out
        assert "data KB" in out

    def test_inspect_phases(self, exports, capsys):
        _, metrics = exports
        assert main(["inspect", str(metrics), "--phases"]) == 0
        out = capsys.readouterr().out
        assert "per-kernel traffic" in out
        assert "total" in out

    def test_inspect_unknown_run(self, exports):
        _, metrics = exports
        with pytest.raises(SystemExit):
            main(["inspect", str(metrics), "--run", "nope/shm"])

    def test_inspect_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["inspect", str(tmp_path / "absent.jsonl")])

    def test_nonpositive_window_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "atax", "--scheme", "shm",
                  "--scale", "0.05", "--metrics-out",
                  str(tmp_path / "m.jsonl"), "--window-cycles", "-5"])

    def test_inspect_rejects_non_metrics_file(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"type": "meta"}) + "\n")
        with pytest.raises(SystemExit):
            main(["inspect", str(path)])


class TestCampaignCLI:
    def test_list_names_every_experiment(self, capsys):
        from repro.eval.experiments import EXPERIMENTS

        assert main(["campaign", "--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_experiments_required(self):
        with pytest.raises(SystemExit):
            main(["campaign"])

    def test_smoke_resumes_from_the_store(self, tmp_path, capsys):
        assert main(["campaign", "--smoke", "--jobs", "1",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "smoke pass 2: 0 executed, 4 cached" in out
        assert "smoke OK" in out

    def test_inspect_renders_manifest(self, tmp_path, capsys):
        from repro.eval.campaign import SMOKE_SPEC, run_campaign

        report = run_campaign(["smoke"], scale=0.05, serial=True,
                              workloads=["atax"],
                              specs={"smoke": SMOKE_SPEC})
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(report.manifest))
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "campaign: smoke" in out
        assert "average" in out

    def test_inspect_cells_flag_lists_cells(self, tmp_path, capsys):
        from repro.eval.campaign import SMOKE_SPEC, run_campaign

        report = run_campaign(["smoke"], scale=0.05, serial=True,
                              workloads=["atax"],
                              specs={"smoke": SMOKE_SPEC})
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(report.manifest))
        assert main(["inspect", str(path), "--cells"]) == 0
        out = capsys.readouterr().out
        assert "atax" in out and "pssm" in out


class TestBenchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.smoke is False
        assert args.threshold == 0.15
        assert args.repeats is None and args.warmup is None
        assert args.output is None and args.compare is None

    def test_flags(self):
        args = build_parser().parse_args(
            ["bench", "--smoke", "--filter", "micro.", "--repeats", "2",
             "--compare", "old.json", "--threshold", "0.2"]
        )
        assert args.smoke and args.filter == "micro."
        assert args.repeats == 2
        assert args.compare == "old.json"
        assert args.threshold == 0.2


class TestHostProfileCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["inspect", "--host-profile"])
        assert args.host_profile is True
        assert args.path is None
        assert args.workload == "atax"
        assert args.scheme == ["pssm", "shm"]

    def test_inspect_without_path_or_flag_rejected(self):
        with pytest.raises(SystemExit):
            main(["inspect"])

    def test_host_profile_runs_and_reports(self, capsys):
        assert main(["inspect", "--host-profile", "--workload", "atax",
                     "--scheme", "pssm", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "host-time profile" in out
        assert "atax/pssm" in out
        for stage in ("issued", "l2", "metadata", "dram", "complete"):
            assert stage in out
