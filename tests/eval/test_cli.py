"""Command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "atax"])
        assert args.workload == "atax"
        assert args.scheme == ["pssm", "shm"]

    def test_figure_args(self):
        args = build_parser().parse_args(
            ["figure", "12", "--workloads", "atax", "--scale", "0.1"]
        )
        assert args.number == "12"
        assert args.workloads == ["atax"]
        assert args.scale == 0.1

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom3"])

    def test_all_paper_figures_have_drivers(self):
        assert set(FIGURES) == {"5", "10", "11", "12", "13", "14", "15", "16"}


class TestCommands:
    def test_hardware(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "Table IX" in out
        assert "5460" in out

    def test_suite_list(self, capsys):
        assert main(["suite", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fdtd2d" in out and "b+tree" in out

    def test_run_small(self, capsys):
        assert main(["run", "--workload", "atax", "--scheme", "pssm",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "pssm" in out and "overhead" in out

    def test_figure_small(self, capsys):
        assert main(["figure", "5", "--workloads", "atax",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "atax" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "atax", "--scheme", "bogus",
                  "--scale", "0.05"])
