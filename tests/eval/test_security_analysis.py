"""Section III-C's MAC truncation analysis as data."""

import pytest

from repro.eval.security_analysis import (
    MACDesignPoint,
    mac_design_space,
    truncation_analysis,
)


class TestDesignPoints:
    def test_cpu_8b_is_safe(self):
        p = next(x for x in mac_design_space() if x.label == "cpu_8B_per_line")
        assert p.is_safe()

    def test_pssm_truncation_is_unsafe(self):
        # The paper's core argument against 4 B MACs.
        p = next(x for x in mac_design_space()
                 if x.label == "pssm_truncated_4B")
        assert not p.is_safe()

    def test_50_bits_is_the_boundary(self):
        p = MACDesignPoint("x", 50, 128)
        assert p.is_safe(4 * 1024**3)
        q = MACDesignPoint("y", 49, 128)
        assert not q.is_safe(4 * 1024**3)

    def test_chunk_mac_bandwidth_is_32x_cheaper(self):
        line = next(x for x in mac_design_space()
                    if x.label == "cpu_8B_per_line")
        chunk = next(x for x in mac_design_space()
                     if x.label == "shm_chunk_8B")
        assert line.bandwidth_per_kb / chunk.bandwidth_per_kb == pytest.approx(32)

    def test_chunk_mac_keeps_full_security(self):
        chunk = next(x for x in mac_design_space()
                     if x.label == "shm_chunk_8B")
        assert chunk.mac_bits == 64
        assert chunk.is_safe()


class TestAnalysis:
    def test_minimum_bits_for_4gb(self):
        analysis = truncation_analysis()
        assert analysis["minimum_mac_bits"] == 50
        assert analysis["blocks"] == 2**25

    def test_verdicts_consistent(self):
        analysis = truncation_analysis()
        designs = analysis["designs"]
        assert designs["cpu_8B_per_line"]["safe"]
        assert not designs["pssm_truncated_4B"]["safe"]
        assert designs["shm_chunk_8B"]["safe"]

    def test_smaller_memory_lower_bar(self):
        small = truncation_analysis(memory_bytes=64 * 1024 * 1024)
        assert small["minimum_mac_bits"] < 50
