"""Composed (workload_spec) cells through the campaign engine: the
multi-tenant experiments, cell identity, serial-vs-pool identity."""

import pytest

from repro.common.config import SimConfig
from repro.eval.campaign import (
    JobSpec,
    _cell_worker,
    cell_key,
    run_campaign,
    run_cells_serial,
)
from repro.eval.experiments import (
    EXPERIMENTS,
    _multitenant_jobs,
    _phase_churn_jobs,
)
from repro.workloads.multitenant import contention_spec

SCALE = 0.05


def tiny_job(**overrides):
    spec = contention_spec(2, footprint="192KB")
    spec["multi_tenant"].update(
        epochs=2, slots_per_epoch=1024, burst_accesses=32)
    fields = dict(experiment="t", workload=spec["name"], scheme="pssm",
                  series="pssm", scale=1.0, config=SimConfig(),
                  workload_spec=spec)
    fields.update(overrides)
    return JobSpec(**fields)


class TestRegistration:
    def test_both_experiments_registered(self):
        assert "ablation_multitenant_contention" in EXPERIMENTS
        assert "suite_phase_churn" in EXPERIMENTS

    def test_contention_matrix_shape(self):
        jobs = _multitenant_jobs(None, SimConfig(), SCALE)
        assert {j.workload for j in jobs} == {"mt1", "mt2", "mt4", "mt8"}
        assert {j.scheme for j in jobs} == {"pssm", "shm"}
        assert all(j.workload_spec is not None for j in jobs)

    def test_churn_matrix_shape(self):
        jobs = _phase_churn_jobs(None, SimConfig(), SCALE)
        assert {j.workload for j in jobs} == \
            {"mt4_churn0", "mt4_churn25", "mt4_churn50", "mt4_churn100"}

    def test_unique_cell_keys_across_both(self):
        jobs = _multitenant_jobs(None, SimConfig(), SCALE) + \
            _phase_churn_jobs(None, SimConfig(), SCALE)
        keys = [cell_key(j) for j in jobs]
        assert len(set(keys)) == len(keys)


class TestCellIdentity:
    def test_spec_is_part_of_the_key(self):
        a = tiny_job()
        changed = contention_spec(2, footprint="192KB", seed=9)
        changed["multi_tenant"].update(
            epochs=2, slots_per_epoch=1024, burst_accesses=32)
        b = tiny_job(workload_spec=changed)
        assert cell_key(a, "v1") != cell_key(b, "v1")

    def test_key_stable_for_equal_specs(self):
        assert cell_key(tiny_job(), "v1") == cell_key(tiny_job(), "v1")


class TestExecution:
    def test_serial_cell_runs_composed_workload(self, suite_runner=None):
        from repro.sim.runner import Runner

        job = tiny_job()
        [record] = run_cells_serial(Runner(config=job.config,
                                           scale=job.scale), [job])
        assert record.ok
        assert 0.0 < record.result.normalized_ipc(record.baseline) <= 1.5

    def test_worker_entry_matches_serial(self):
        """_cell_worker (the pool's entry point) must reproduce the
        serial path bit-for-bit from nothing but the JobSpec."""
        from repro.sim.runner import Runner

        job = tiny_job()
        [serial] = run_cells_serial(Runner(config=job.config,
                                           scale=job.scale), [job])
        from repro.eval.campaign import _deserialize_payload
        pooled = _deserialize_payload(_cell_worker(job))
        assert pooled["result"].cycles == serial.result.cycles
        assert pooled["result"].traffic.total_bytes == \
            serial.result.traffic.total_bytes

    def test_campaign_pool_equals_serial(self, tmp_path):
        spec = EXPERIMENTS["ablation_multitenant_contention"]
        jobs_fn = lambda w, c, s: _multitenant_jobs(w, c, s,
                                                    tenant_counts=[2])
        import dataclasses
        small = dataclasses.replace(spec, jobs=jobs_fn)
        specs = {spec.name: small}
        serial = run_campaign([spec.name], scale=SCALE, serial=True,
                              specs=specs)
        pooled = run_campaign([spec.name], scale=SCALE, jobs=2,
                              specs=specs)
        assert serial.results[spec.name].series == \
            pooled.results[spec.name].series
        assert not serial.failed_cells and not pooled.failed_cells

    def test_store_resume_serves_composed_cells(self, tmp_path):
        spec = EXPERIMENTS["suite_phase_churn"]
        jobs_fn = lambda w, c, s: _phase_churn_jobs(w, c, s,
                                                    churn_levels=[0.5])
        import dataclasses
        specs = {spec.name: dataclasses.replace(spec, jobs=jobs_fn)}
        kwargs = dict(scale=SCALE, serial=True, specs=specs,
                      store_dir=tmp_path / "store")
        first = run_campaign([spec.name], **kwargs)
        second = run_campaign([spec.name], **kwargs)
        assert first.totals["executed"] == 2   # pssm + shm
        assert second.totals["cached"] == 2
        assert first.results[spec.name].series == \
            second.results[spec.name].series
