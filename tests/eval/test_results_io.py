"""Result snapshots and regression diffs."""

import pytest

from repro.common.types import Scheme
from repro.eval.results_io import (
    compare_results,
    load_results,
    result_to_dict,
    save_results,
)


class TestSnapshot:
    def test_save_and_load(self, tiny_runner, tiny_streaming, tmp_path):
        path = tmp_path / "r.json"
        snapshot = save_results(tiny_runner, path, [tiny_streaming.name],
                                [Scheme.PSSM, Scheme.SHM])
        loaded = load_results(path)
        assert loaded["results"] == snapshot["results"]
        # Baseline + 2 schemes.
        assert len(loaded["results"]) == 3

    def test_normalized_ipc_included_for_schemes(self, tiny_runner,
                                                 tiny_streaming, tmp_path):
        snapshot = save_results(tiny_runner, tmp_path / "r.json",
                                [tiny_streaming.name], [Scheme.SHM])
        scheme_rows = [r for r in snapshot["results"] if r["scheme"] == "shm"]
        assert scheme_rows and 0 < scheme_rows[0]["normalized_ipc"] <= 1.001

    def test_result_to_dict_fields(self, tiny_runner, tiny_streaming):
        result = tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        data = result_to_dict(result)
        assert data["scheme"] == "shm"
        assert set(data["traffic"]) == {"data", "ctr", "mac", "bmt", "mispred"}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "results": []}')
        with pytest.raises(ValueError):
            load_results(path)


class TestDiff:
    def test_identical_snapshots_zero_delta(self, tiny_runner,
                                            tiny_streaming, tmp_path):
        snap = save_results(tiny_runner, tmp_path / "a.json",
                            [tiny_streaming.name], [Scheme.SHM])
        rows = compare_results(snap, snap)
        assert rows
        assert all(r["delta"] == 0.0 for r in rows)

    def test_detects_regression(self, tiny_runner, tiny_streaming, tmp_path):
        snap = save_results(tiny_runner, tmp_path / "a.json",
                            [tiny_streaming.name], [Scheme.SHM])
        import copy
        worse = copy.deepcopy(snap)
        for r in worse["results"]:
            if "normalized_ipc" in r:
                r["normalized_ipc"] -= 0.1
        rows = compare_results(snap, worse)
        assert all(r["delta"] == pytest.approx(-0.1) for r in rows)

    def test_disjoint_snapshots_empty(self, tiny_runner, tiny_streaming,
                                      tiny_random, tmp_path):
        a = save_results(tiny_runner, tmp_path / "a.json",
                         [tiny_streaming.name], [Scheme.SHM])
        b = save_results(tiny_runner, tmp_path / "b.json",
                         [tiny_random.name], [Scheme.SHM])
        assert compare_results(a, b) == []


class TestRunResultRoundTrip:
    def test_lossless_including_latency_percentiles(self, tiny_runner,
                                                    tiny_streaming):
        import json

        from repro.eval.results_io import (
            deserialize_run_result,
            serialize_run_result,
        )

        baseline = tiny_runner.baseline(tiny_streaming.name)
        result = tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        # Through actual JSON text, as the store does.
        back = deserialize_run_result(
            json.loads(json.dumps(serialize_run_result(result)))
        )
        assert back.cycles == result.cycles
        assert back.instructions == result.instructions
        assert back.traffic == result.traffic
        assert back.readonly_stats == result.readonly_stats
        assert back.streaming_stats == result.streaming_stats
        assert back.l2 == result.l2
        # The histogram's sparse buckets survive, so percentiles do too.
        assert back.latency.p50 == result.latency.p50
        assert back.latency.p95 == result.latency.p95
        assert back.latency.p99 == result.latency.p99
        assert (back.normalized_ipc(baseline)
                == pytest.approx(result.normalized_ipc(baseline)))

    def test_format_version_mismatch_rejected(self, tiny_runner,
                                              tiny_streaming):
        from repro.eval.results_io import (
            deserialize_run_result,
            serialize_run_result,
        )

        data = serialize_run_result(
            tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        )
        data["cell_format"] = 999
        with pytest.raises(ValueError):
            deserialize_run_result(data)

    def test_truncated_payload_rejected(self, tiny_runner, tiny_streaming):
        from repro.eval.results_io import (
            deserialize_run_result,
            serialize_run_result,
        )

        data = serialize_run_result(
            tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        )
        del data["traffic"]
        with pytest.raises((KeyError, TypeError)):
            deserialize_run_result(data)


class TestStableHash:
    def test_deterministic_and_order_independent(self):
        from repro.eval.results_io import stable_hash

        a = stable_hash({"x": 1, "y": [1, 2]})
        b = stable_hash({"y": [1, 2], "x": 1})
        assert a == b
        assert len(a) == 40

    def test_config_changes_change_the_hash(self):
        from dataclasses import replace

        from repro.common.config import SimConfig
        from repro.eval.results_io import stable_hash

        base = SimConfig()
        varied = replace(
            base,
            mdc=replace(
                base.mdc,
                counter=replace(base.mdc.counter,
                                size_bytes=base.mdc.counter.size_bytes * 2),
            ),
        )
        assert stable_hash(base) != stable_hash(varied)


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        from repro.eval.results_io import ResultStore

        store = ResultStore(tmp_path / "store")
        key = "ab" + "0" * 38
        store.put(key, {"payload": {"profile": {"x": 1.0}}})
        assert key in store
        assert len(store) == 1
        record = store.get(key)
        assert record["payload"] == {"profile": {"x": 1.0}}
        assert record["key"] == key

    def test_missing_key_returns_none(self, tmp_path):
        from repro.eval.results_io import ResultStore

        store = ResultStore(tmp_path / "store")
        assert store.get("cd" + "1" * 38) is None

    def test_corrupt_entry_quarantined_not_fatal(self, tmp_path):
        from repro.eval.results_io import ResultStore

        store = ResultStore(tmp_path / "store")
        key = "ef" + "2" * 38
        store.put(key, {"payload": {}})
        store._path(key).write_text("{ not json at all")
        assert store.get(key) is None          # corrupt reads never raise
        assert key not in store                # ... and the entry is gone
        assert f"{key}.json" in store.quarantined()  # parked for post-mortem
        # The store stays usable for that key afterwards.
        store.put(key, {"payload": {"ok": True}})
        assert store.get(key)["payload"] == {"ok": True}

    def test_truncated_entry_quarantined(self, tmp_path):
        from repro.eval.results_io import ResultStore

        store = ResultStore(tmp_path / "store")
        key = "0a" + "3" * 38
        store.put(key, {"payload": {}})
        path = store._path(key)
        path.write_text(path.read_text()[:10])
        assert store.get(key) is None
        assert f"{key}.json" in store.quarantined()

    def test_invalidate_removes_entry(self, tmp_path):
        from repro.eval.results_io import ResultStore

        store = ResultStore(tmp_path / "store")
        key = "1b" + "4" * 38
        store.put(key, {"payload": {}})
        store.invalidate(key)
        assert store.get(key) is None
        assert len(store) == 0
        store.invalidate(key)  # idempotent

    def test_keys_and_clear(self, tmp_path):
        from repro.eval.results_io import ResultStore

        store = ResultStore(tmp_path / "store")
        keys = {"2c" + "5" * 38, "3d" + "6" * 38}
        for key in keys:
            store.put(key, {"payload": {}})
        assert set(store.keys()) == keys
        store.clear()
        assert len(store) == 0
