"""Result snapshots and regression diffs."""

import pytest

from repro.common.types import Scheme
from repro.eval.results_io import (
    compare_results,
    load_results,
    result_to_dict,
    save_results,
)


class TestSnapshot:
    def test_save_and_load(self, tiny_runner, tiny_streaming, tmp_path):
        path = tmp_path / "r.json"
        snapshot = save_results(tiny_runner, path, [tiny_streaming.name],
                                [Scheme.PSSM, Scheme.SHM])
        loaded = load_results(path)
        assert loaded["results"] == snapshot["results"]
        # Baseline + 2 schemes.
        assert len(loaded["results"]) == 3

    def test_normalized_ipc_included_for_schemes(self, tiny_runner,
                                                 tiny_streaming, tmp_path):
        snapshot = save_results(tiny_runner, tmp_path / "r.json",
                                [tiny_streaming.name], [Scheme.SHM])
        scheme_rows = [r for r in snapshot["results"] if r["scheme"] == "shm"]
        assert scheme_rows and 0 < scheme_rows[0]["normalized_ipc"] <= 1.001

    def test_result_to_dict_fields(self, tiny_runner, tiny_streaming):
        result = tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        data = result_to_dict(result)
        assert data["scheme"] == "shm"
        assert set(data["traffic"]) == {"data", "ctr", "mac", "bmt", "mispred"}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "results": []}')
        with pytest.raises(ValueError):
            load_results(path)


class TestDiff:
    def test_identical_snapshots_zero_delta(self, tiny_runner,
                                            tiny_streaming, tmp_path):
        snap = save_results(tiny_runner, tmp_path / "a.json",
                            [tiny_streaming.name], [Scheme.SHM])
        rows = compare_results(snap, snap)
        assert rows
        assert all(r["delta"] == 0.0 for r in rows)

    def test_detects_regression(self, tiny_runner, tiny_streaming, tmp_path):
        snap = save_results(tiny_runner, tmp_path / "a.json",
                            [tiny_streaming.name], [Scheme.SHM])
        import copy
        worse = copy.deepcopy(snap)
        for r in worse["results"]:
            if "normalized_ipc" in r:
                r["normalized_ipc"] -= 0.1
        rows = compare_results(snap, worse)
        assert all(r["delta"] == pytest.approx(-0.1) for r in rows)

    def test_disjoint_snapshots_empty(self, tiny_runner, tiny_streaming,
                                      tiny_random, tmp_path):
        a = save_results(tiny_runner, tmp_path / "a.json",
                         [tiny_streaming.name], [Scheme.SHM])
        b = save_results(tiny_runner, tmp_path / "b.json",
                         [tiny_random.name], [Scheme.SHM])
        assert compare_results(a, b) == []
