"""Terminal plotting helpers."""

from repro.eval.experiments import ExperimentResult
from repro.eval.plotting import breakdown_bars, grouped_bars, hbar


def make_result():
    r = ExperimentResult("x")
    r.series["pssm"] = {"atax": 0.9, "bfs": 0.8}
    r.series["shm"] = {"atax": 0.99, "bfs": 0.85}
    return r


class TestHBar:
    def test_renders_all_keys(self):
        out = hbar({"a": 0.5, "b": 1.0}, title="T")
        assert "T" in out and "a " in out and "b " in out
        assert "100.00%" in out

    def test_bar_lengths_proportional(self):
        out = hbar({"half": 0.5, "full": 1.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert hbar({}, title="empty") == "empty"

    def test_absolute_mode(self):
        out = hbar({"a": 2.5}, percent=False)
        assert "2.500" in out


class TestGroupedBars:
    def test_structure(self):
        out = grouped_bars(make_result(), title="Fig")
        assert "Fig" in out
        assert "legend" in out
        assert "atax" in out and "bfs" in out
        # 2 series x 2 workloads + legend + title = 6 lines.
        assert len(out.splitlines()) == 6

    def test_invert_renders_overheads(self):
        out = grouped_bars(make_result(), invert=True)
        assert "10.00%" in out  # 1 - 0.9


class TestBreakdownBars:
    def test_stacked_fill(self):
        r = ExperimentResult("b")
        r.series["correct"] = {"w": 0.75}
        r.series["mp_init"] = {"w": 0.25}
        out = breakdown_bars(r, width=40)
        line = [l for l in out.splitlines() if l.startswith("w")][0]
        assert line.count("#") == 30  # 75% of 40
        assert line.count("*") == 10
