"""Energy model (Fig. 15)."""

import pytest

from repro.common.types import Scheme, TrafficCounters
from repro.eval.energy import EnergyModel
from repro.sim.stats import L2Stats, RunResult


def make_result(cycles=1000.0, instructions=10_000, data=100_000, meta=0,
                l2=5000, mdc=0):
    return RunResult(
        workload="w", scheme=Scheme.SHM, cycles=cycles,
        instructions=instructions,
        traffic=TrafficCounters(data_bytes=data, mac_bytes=meta),
        l2=L2Stats(accesses=l2), dram_utilization=0.5, mdc_accesses=mdc,
    )


class TestEnergyModel:
    def test_total_positive(self):
        assert EnergyModel().total(make_result()) > 0

    def test_more_traffic_more_energy(self):
        m = EnergyModel()
        assert m.total(make_result(meta=50_000)) > m.total(make_result())

    def test_longer_run_more_static_energy(self):
        m = EnergyModel()
        assert m.total(make_result(cycles=2000)) > m.total(make_result())

    def test_epi_normalisation(self):
        m = EnergyModel()
        base = make_result()
        same = make_result()
        assert m.normalized_epi(same, base) == pytest.approx(1.0)

    def test_epi_increases_with_overhead(self):
        m = EnergyModel()
        base = make_result()
        secure = make_result(cycles=1500, meta=150_000, mdc=3000)
        assert m.normalized_epi(secure, base) > 1.0

    def test_zero_instruction_guard(self):
        m = EnergyModel()
        r = make_result(instructions=0)
        assert m.per_instr(r) == 0.0

    def test_breakdown_sums_to_one(self):
        shares = EnergyModel().breakdown(make_result(mdc=100))
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == {"core", "dram", "l2", "mdc", "static"}

    def test_dram_and_static_dominate_at_baseline(self):
        """Calibration sanity: DRAM + static is the bulk of GPU energy."""
        shares = EnergyModel().breakdown(
            make_result(cycles=1000, data=111_000, instructions=13_000,
                        l2=3500)
        )
        assert shares["dram"] + shares["static"] > 0.6
