"""Observability table rendering: window merging and breakdowns."""

import pytest

from repro.eval.reporting import (
    _merge_windows,
    format_phase_breakdown,
    format_timeslices,
)


def window_row(idx, kernel=0, data=1024, ctr=64, window_cycles=100.0):
    return {
        "type": "window", "run": "w/s", "window": idx,
        "start_cycle": idx * window_cycles,
        "end_cycle": (idx + 1) * window_cycles,
        "kernel": kernel,
        "data_bytes": data, "ctr_bytes": ctr, "mac_bytes": 8,
        "bmt_bytes": 0, "mispred_bytes": 0,
        "l2_accesses": 10, "l2_misses": 5,
        "mdc_accesses": 4, "mdc_misses": 1,
        "victim_probes": 0, "victim_hits": 0,
        "reads": 2, "read_latency_sum": 400.0, "stall_cycles": 50.0,
        "l2_miss_rate": 0.5, "mdc_hit_rate": 0.75,
        "avg_read_latency": 200.0, "dram_utilization_mean": 0.5,
    }


class TestMergeWindows:
    def test_no_merge_when_under_limit(self):
        rows = [window_row(i) for i in range(3)]
        assert _merge_windows(rows, 10) is rows

    def test_merge_preserves_byte_sums(self):
        rows = [window_row(i) for i in range(10)]
        merged = _merge_windows(rows, 3)
        assert len(merged) <= 3 + 1
        assert sum(r["data_bytes"] for r in merged) == \
            sum(r["data_bytes"] for r in rows)
        assert sum(r["ctr_bytes"] for r in merged) == \
            sum(r["ctr_bytes"] for r in rows)

    def test_merge_rebuilds_rates(self):
        rows = [window_row(i) for i in range(4)]
        merged = _merge_windows(rows, 1)
        assert len(merged) == 1
        row = merged[0]
        assert row["l2_miss_rate"] == pytest.approx(0.5)
        assert row["avg_read_latency"] == pytest.approx(200.0)
        assert row["start_cycle"] == 0.0
        assert row["end_cycle"] == 400.0


class TestRendering:
    def test_timeslices_table(self):
        text = format_timeslices([window_row(0), window_row(1)],
                                 title="demo")
        assert "demo" in text
        assert "data KB" in text
        assert "0-100" in text

    def test_phase_breakdown_totals(self):
        rows = [window_row(0, kernel=0), window_row(1, kernel=1)]
        text = format_phase_breakdown(rows, title="phases")
        assert "k0" in text and "k1" in text
        assert "total" in text
