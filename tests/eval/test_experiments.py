"""Experiment drivers: structure and static tables."""

import pytest

from repro.common.config import DetectorConfig
from repro.common.types import Scheme
from repro.eval import experiments as exp
from repro.eval.reporting import format_overheads, format_table, summarize_averages


class TestTable9:
    def test_matches_paper_numbers(self):
        hw = exp.table9_hardware_overhead()
        assert hw["readonly_predictor_bytes"] == 128
        assert hw["streaming_predictor_bytes"] == 256
        assert hw["tracker_bits_each"] == 71
        assert hw["trackers"] == 8
        # The paper totals 5,460 B (5.33 KB) across 12 partitions.
        assert hw["total_bytes"] == pytest.approx(5460, abs=10)

    def test_custom_sizing(self):
        hw = exp.table9_hardware_overhead(
            DetectorConfig(num_trackers=16), num_partitions=1
        )
        assert hw["trackers"] == 16
        assert hw["per_partition_bytes"] == (1024 + 2048 + 16 * 71) / 8


class TestExperimentResult:
    def test_average(self):
        r = exp.ExperimentResult("x")
        r.series["a"] = {"w1": 0.5, "w2": 1.5}
        assert r.average("a") == pytest.approx(1.0)
        assert r.averages() == {"a": pytest.approx(1.0)}


SMALL = ["atax", "histo"]


@pytest.fixture(scope="module")
def small_results(suite_runner):
    return {
        "fig5": exp.fig5_access_ratios(suite_runner, SMALL),
        "fig12": exp.fig12_overall_ipc(
            suite_runner, SMALL, schemes=[Scheme.PSSM, Scheme.SHM]
        ),
    }


class TestDrivers:
    def test_fig5_structure(self, small_results):
        fig5 = small_results["fig5"]
        assert set(fig5.series) == {"streaming", "read_only"}
        for series in fig5.series.values():
            assert set(series) == set(SMALL)
            assert all(0.0 <= v <= 1.0 for v in series.values())

    def test_fig12_structure(self, small_results):
        fig12 = small_results["fig12"]
        assert set(fig12.series) == {"pssm", "shm"}
        for series in fig12.series.values():
            assert all(0.0 < v <= 1.001 for v in series.values())

    def test_fig10_fractions(self, suite_runner):
        fig10 = exp.fig10_readonly_prediction(suite_runner, ["atax"])
        total = sum(fig10.series[c]["atax"]
                    for c in ("correct", "mp_init", "mp_aliasing"))
        assert total == pytest.approx(1.0, abs=0.05)

    def test_fig11_fractions(self, suite_runner):
        fig11 = exp.fig11_streaming_prediction(suite_runner, ["atax"])
        total = sum(series["atax"] for series in fig11.series.values())
        assert total == pytest.approx(1.0, abs=0.05)


class TestReporting:
    def test_format_table(self, small_results):
        text = format_table(small_results["fig12"], title="Fig. 12")
        assert "Fig. 12" in text
        assert "atax" in text and "histo" in text
        assert "average" in text

    def test_format_overheads_inverts(self, small_results):
        text = format_overheads(small_results["fig12"])
        assert "%" in text

    def test_summarize(self, small_results):
        summary = summarize_averages(small_results["fig12"])
        assert set(summary) == {"pssm", "shm"}
        assert all(s.endswith("%") for s in summary.values())
