"""Campaign telemetry end to end: event logs, the persistent store,
fault recording (worker death, timeouts), and the dashboard view."""

import os
import time

import pytest

from repro.common.types import Scheme
from repro.eval.campaign import (
    ExperimentResult,
    ExperimentSpec,
    JobSpec,
    campaign_id,
    run_campaign,
)
from repro.obs.dash import DashboardState, render_html, render_text
from repro.obs.events import EventLog, read_events
from repro.obs.store import TelemetryStore
from repro.obs.validate import validate_events

SCALE = 0.05

#: Worker-side crash/sleep marker (a file path). Module-level fakes
#: read it from the environment: pool children inherit it via fork.
_MARKER_VAR = "REPRO_TEST_TELEMETRY_MARKER"


def _aggregate(records):
    result = ExperimentResult("test-exp")
    for rec in records:
        if rec.profile is not None:
            value = rec.profile["streaming_ratio"]
        else:
            value = rec.result.normalized_ipc(rec.baseline)
        result.series.setdefault(rec.job.series or rec.job.scheme,
                                 {})[rec.job.workload] = value
    return result


def _spec(workloads=("atax",), kind="run"):
    def jobs(_workloads, config, scale):
        return [JobSpec(experiment="test-exp", workload=name, kind=kind,
                        scheme=Scheme.SHM.value, series=Scheme.SHM.value,
                        scale=scale, config=config)
                for name in workloads]
    return {"test-exp": ExperimentSpec(
        name="test-exp", title="t", provenance="tests only",
        jobs=jobs, aggregate=_aggregate)}


def _first_attempt(marker):
    """True exactly once per marker file (created as the side effect)."""
    if os.path.exists(marker):
        return False
    with open(marker, "w"):
        pass
    return True


def _crash_then_ok(job):
    """Pool worker fake: hard-dies (as OOM/kill would) on the first
    attempt, then answers like a profile cell."""
    if _first_attempt(os.environ[_MARKER_VAR]):
        os._exit(13)
    return {"profile": {"streaming_ratio": 0.5, "readonly_ratio": 0.5}}


def _sleep_then_ok(job):
    """Pool worker fake: blows the job budget on the first attempt
    (SIGALRM interrupts the sleep), then answers immediately."""
    if _first_attempt(os.environ[_MARKER_VAR]):
        time.sleep(30.0)
    return {"profile": {"streaming_ratio": 0.5, "readonly_ratio": 0.5}}


def _always_crash(job):
    """Pool worker fake: dies on every attempt."""
    os._exit(13)


def _telemetry(tmp_path):
    return (EventLog(tmp_path / "events.jsonl"),
            TelemetryStore(tmp_path / "telemetry.db"))


class TestHappyPath:
    def test_serial_campaign_is_fully_recorded(self, tmp_path):
        events, store = _telemetry(tmp_path)
        report = run_campaign(["test-exp"], scale=SCALE, serial=True,
                              specs=_spec(("atax", "mvt")),
                              events=events, telemetry=store)
        events.close()

        info = validate_events(events.path)
        assert info["cells"] == 2
        assert info["types"]["campaign_started"] == 1
        assert info["types"]["cell_started"] == 2
        assert info["types"]["cell_completed"] == 2
        assert info["types"]["campaign_finished"] == 1

        # Every event carries the deterministic campaign correlation ID.
        rows = read_events(events.path)
        cid = campaign_id(["test-exp"], None, SCALE,
                          report.manifest["code_version"])
        assert report.manifest["campaign"] == cid
        assert all(r["campaign"] == cid for r in rows)

        # The store holds one row per cell reference, plus the campaign.
        assert store.cell_count() == 2
        (run,) = store.campaign_history()
        assert run["campaign"] == cid
        assert run["totals"]["cells"] == 2
        assert all(h["status"] == "ok"
                   for key in (c["key"] for c in
                               report.manifest["experiments"]["test-exp"]
                               ["cells"])
                   for h in store.cell_history(key))

    def test_pool_campaign_spools_started_events(self, tmp_path):
        events, store = _telemetry(tmp_path)
        run_campaign(["test-exp"], scale=SCALE, jobs=2,
                     specs=_spec(("atax", "mvt")),
                     events=events, telemetry=store)
        events.close()
        info = validate_events(events.path)
        assert info["types"]["cell_started"] == 2
        # Spooled rows carry the worker pid for the health table.
        started = [r for r in read_events(events.path)
                   if r["type"] == "cell_started"]
        assert all("worker" in r for r in started)
        assert not events.spool_dir.exists()  # consumed by the merge

    def test_cached_resume_emits_cell_cached(self, tmp_path):
        specs = _spec()
        kwargs = dict(scale=SCALE, serial=True, specs=specs,
                      store_dir=tmp_path / "store")
        run_campaign(["test-exp"], **kwargs)

        events, store = _telemetry(tmp_path)
        report = run_campaign(["test-exp"], events=events,
                              telemetry=store, **kwargs)
        events.close()
        assert report.totals["cached"] == 1
        info = validate_events(events.path)
        assert info["types"]["cell_cached"] == 1
        assert "cell_started" not in info["types"]
        (history,) = store.cell_history(
            report.manifest["experiments"]["test-exp"]["cells"][0]["key"])
        assert history["cached"] == 1


class TestFaultTelemetry:
    """A killed (or over-budget) worker leaves a full event trail, the
    store gets no partial row, and the dashboard shows the retry."""

    def _run_with_fake_worker(self, tmp_path, monkeypatch, fake,
                              **kwargs):
        monkeypatch.setenv(_MARKER_VAR, str(tmp_path / "marker"))
        monkeypatch.setattr("repro.eval.campaign._cell_worker", fake)
        events, store = _telemetry(tmp_path)
        report = run_campaign(["test-exp"], scale=SCALE, jobs=2,
                              retries=1, specs=_spec(kind="profile"),
                              events=events, telemetry=store, **kwargs)
        events.close()
        return report, events, store

    def test_worker_death_recorded_and_retried(self, tmp_path,
                                               monkeypatch):
        report, events, store = self._run_with_fake_worker(
            tmp_path, monkeypatch, _crash_then_ok)
        assert report.totals["failed"] == 0
        (rec,) = report.records["test-exp"]
        assert rec.attempts == 2

        info = validate_events(events.path)  # log is still schema-valid
        assert info["types"]["worker_died"] == 1
        assert info["types"]["cell_retry"] == 1
        retry = next(r for r in read_events(events.path)
                     if r["type"] == "cell_retry")
        assert retry["reason"] == "worker_died"
        assert retry["cell"] == rec.key
        done = next(r for r in read_events(events.path)
                    if r["type"] == "cell_completed")
        assert done["attempts"] == 2

        # No partial store row: the parent records the finished
        # campaign only, so the crash leaves exactly the final state.
        assert store.cell_count() == 1
        (row,) = store.cell_history(rec.key)
        assert row["status"] == "ok"
        assert row["attempts"] == 2

        # The dashboard's final render reflects the recovery.
        state = DashboardState.from_events(read_events(events.path))
        assert state.deaths == 1 and state.retries == 1
        frame = render_text(state, now=state.last_ts)
        assert "retries 1 (deaths 1, timeouts 0)" in frame
        html = render_html(state, store=store, now=state.last_ts)
        assert "&#10003; all ok" in html
        assert ">1<" in html  # the retries stat tile

    def test_timeout_recorded_and_retried(self, tmp_path, monkeypatch):
        report, events, store = self._run_with_fake_worker(
            tmp_path, monkeypatch, _sleep_then_ok, timeout=0.5)
        assert report.totals["failed"] == 0
        (rec,) = report.records["test-exp"]
        assert rec.attempts == 2

        info = validate_events(events.path)
        assert info["types"]["cell_timeout"] == 1
        assert info["types"]["cell_retry"] == 1
        retry = next(r for r in read_events(events.path)
                     if r["type"] == "cell_retry")
        assert retry["reason"] == "timeout"
        assert store.cell_count() == 1
        (row,) = store.cell_history(rec.key)
        assert row["status"] == "ok" and row["attempts"] == 2

    def test_exhausted_retries_leave_cell_failed_trail(self, tmp_path,
                                                       monkeypatch):
        """Both attempts die: the log ends in cell_failed (so the
        validator's every-started-cell-terminates invariant holds) and
        the store row says failed, attempts=2."""
        monkeypatch.setattr("repro.eval.campaign._cell_worker",
                            _always_crash)
        events, store = _telemetry(tmp_path)
        report = run_campaign(["test-exp"], scale=SCALE, jobs=2,
                              retries=1, specs=_spec(kind="profile"),
                              events=events, telemetry=store)
        events.close()
        assert report.totals["failed"] == 1

        info = validate_events(events.path)
        assert info["types"]["worker_died"] == 2  # one per attempt
        assert info["types"]["cell_failed"] == 1
        failed = next(r for r in read_events(events.path)
                      if r["type"] == "cell_failed")
        assert failed["reason"] == "worker_died"
        assert failed["attempts"] == 2
        (rec,) = report.records["test-exp"]
        (row,) = store.cell_history(rec.key)
        assert row["status"] == "failed" and row["attempts"] == 2

        html = render_html(DashboardState.from_events(
            read_events(events.path)))
        assert "&#10007; 1 failed" in html


class TestNoTelemetryByDefault:
    def test_manifest_carries_campaign_id_without_event_log(self,
                                                            tmp_path):
        report = run_campaign(["test-exp"], scale=SCALE, serial=True,
                              specs=_spec())
        assert report.manifest["campaign"] == campaign_id(
            ["test-exp"], None, SCALE, report.manifest["code_version"])

    def test_event_log_open_is_lazy(self, tmp_path):
        log = EventLog(tmp_path / "never" / "events.jsonl")
        # Constructing (and closing) an unused log touches no files.
        log.close()
        assert not (tmp_path / "never").exists()
