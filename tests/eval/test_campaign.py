"""The campaign engine: dedup, store resume, degradation, manifests."""

import dataclasses

import pytest

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.eval.campaign import (
    SMOKE_SPEC,
    CellRecord,
    ExperimentResult,
    ExperimentSpec,
    JobSpec,
    cell_key,
    run_campaign,
    run_cells_serial,
    run_smoke,
)

SCALE = 0.05


def _spec(jobs_fn, name="test-exp"):
    return ExperimentSpec(
        name=name,
        title="test experiment",
        provenance="tests only",
        jobs=jobs_fn,
        aggregate=_aggregate,
    )


def _aggregate(records):
    result = ExperimentResult("test-exp")
    for rec in records:
        label = rec.job.series or rec.job.scheme
        if rec.profile is not None:
            value = rec.profile["streaming_ratio"]
        else:
            value = rec.result.normalized_ipc(rec.baseline)
        result.series.setdefault(label, {})[rec.job.workload] = value
    return result


def _smoke_like(workloads, schemes=(Scheme.SHM,), kind="run"):
    def jobs(_workloads, config, scale):
        return [
            JobSpec(experiment="test-exp", workload=name, kind=kind,
                    scheme=scheme.value, series=scheme.value,
                    scale=scale, config=config)
            for scheme in schemes
            for name in workloads
        ]
    return jobs


class TestCellKey:
    def _job(self, **kwargs):
        defaults = dict(experiment="fig12", workload="atax",
                        scheme="shm", scale=0.1, config=SimConfig())
        defaults.update(kwargs)
        return JobSpec(**defaults)

    def test_presentation_fields_do_not_change_the_key(self):
        a = self._job(experiment="fig12", series="shm")
        b = self._job(experiment="fig16", series="victim-off")
        assert cell_key(a, "v1") == cell_key(b, "v1")

    def test_identity_fields_change_the_key(self):
        base = self._job()
        assert cell_key(base, "v1") != cell_key(
            self._job(workload="mvt"), "v1")
        assert cell_key(base, "v1") != cell_key(
            self._job(scheme="pssm"), "v1")
        assert cell_key(base, "v1") != cell_key(
            self._job(scale=0.2), "v1")
        assert cell_key(base, "v1") != cell_key(
            self._job(overrides={"mac_conflict_policy": "update_both"}),
            "v1")
        mdc = SimConfig()
        varied = dataclasses.replace(
            mdc,
            mdc=dataclasses.replace(
                mdc.mdc,
                counter=dataclasses.replace(
                    mdc.mdc.counter,
                    size_bytes=mdc.mdc.counter.size_bytes * 2),
            ),
        )
        assert cell_key(base, "v1") != cell_key(
            self._job(config=varied), "v1")

    def test_code_version_changes_the_key(self):
        job = self._job()
        assert cell_key(job, "v1") != cell_key(job, "v2")


class TestSerialEngineEquivalence:
    def test_serial_and_pool_agree(self, tmp_path):
        specs = {"test-exp": _spec(
            _smoke_like(["atax"], (Scheme.PSSM, Scheme.SHM)))}
        serial = run_campaign(["test-exp"], scale=SCALE, serial=True,
                              specs=specs)
        pooled = run_campaign(["test-exp"], scale=SCALE, jobs=2,
                              specs=specs)
        for label, series in serial.results["test-exp"].series.items():
            for name, value in series.items():
                assert (pooled.results["test-exp"].series[label][name]
                        == pytest.approx(value))


class TestStoreResume:
    def test_second_run_is_fully_cached(self, tmp_path):
        specs = {"test-exp": _spec(_smoke_like(["atax"]))}
        kwargs = dict(scale=SCALE, serial=True, specs=specs,
                      store_dir=tmp_path / "store")
        first = run_campaign(["test-exp"], **kwargs)
        second = run_campaign(["test-exp"], **kwargs)
        assert first.totals["executed"] == first.totals["cells"]
        assert second.totals["cached"] == second.totals["cells"]
        assert second.totals["executed"] == 0
        # Cached cells aggregate to the same numbers.
        assert (second.results["test-exp"].averages()
                == pytest.approx(first.results["test-exp"].averages()))

    def test_force_reexecutes_cached_cells(self, tmp_path):
        specs = {"test-exp": _spec(_smoke_like(["atax"]))}
        kwargs = dict(scale=SCALE, serial=True, specs=specs,
                      store_dir=tmp_path / "store")
        run_campaign(["test-exp"], **kwargs)
        forced = run_campaign(["test-exp"], force=True, **kwargs)
        assert forced.totals["cached"] == 0
        assert forced.totals["executed"] == forced.totals["cells"]

    def test_cells_shared_across_experiments(self, tmp_path):
        specs = {
            "exp-a": _spec(_smoke_like(["atax"]), "exp-a"),
            "exp-b": _spec(_smoke_like(["atax"]), "exp-b"),
        }
        report = run_campaign(["exp-a", "exp-b"], scale=SCALE, serial=True,
                              specs=specs)
        assert report.totals["cells"] == 1       # deduplicated ...
        assert report.totals["references"] == 2  # ... but counted twice
        assert (report.results["exp-a"].averages()
                == report.results["exp-b"].averages())

    def test_run_smoke_resumes(self, tmp_path):
        first, second = run_smoke(tmp_path / "store", jobs=1, scale=SCALE)
        assert first.totals["failed"] == 0
        assert second.totals["cached"] == second.totals["cells"]


class TestGracefulDegradation:
    def test_failed_cell_recorded_and_excluded(self, tmp_path):
        specs = {"test-exp": _spec(
            _smoke_like(["atax", "no-such-workload"]))}
        report = run_campaign(["test-exp"], scale=SCALE, serial=True,
                              specs=specs)
        assert report.totals["failed"] == 1
        (failed,) = report.failed_cells
        assert failed.job.workload == "no-such-workload"
        assert failed.error  # the traceback travelled with the record
        # The aggregate only sees the healthy cell.
        assert set(report.results["test-exp"].series["shm"]) == {"atax"}
        # The manifest reports the failure, including the error text.
        exp = report.manifest["experiments"]["test-exp"]
        assert exp["failed"] == 1
        bad = [c for c in exp["cells"] if c["status"] != "ok"]
        assert bad and bad[0]["workload"] == "no-such-workload"
        assert "error" in bad[0]

    def test_failed_cells_are_not_cached(self, tmp_path):
        specs = {"test-exp": _spec(_smoke_like(["no-such-workload"]))}
        kwargs = dict(scale=SCALE, serial=True, specs=specs,
                      store_dir=tmp_path / "store")
        run_campaign(["test-exp"], **kwargs)
        again = run_campaign(["test-exp"], **kwargs)
        assert again.totals["cached"] == 0  # failures are re-attempted

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="no-such-exp"):
            run_campaign(["no-such-exp"], specs={"smoke": SMOKE_SPEC})


class TestProfileCells:
    def test_profile_kind_round_trips(self, tmp_path):
        specs = {"test-exp": _spec(_smoke_like(["atax"], kind="profile"))}
        kwargs = dict(scale=SCALE, specs=specs,
                      store_dir=tmp_path / "store")
        first = run_campaign(["test-exp"], serial=True, **kwargs)
        cached = run_campaign(["test-exp"], jobs=1, **kwargs)
        assert cached.totals["cached"] == 1
        (rec,) = cached.records["test-exp"]
        assert 0.0 <= rec.profile["streaming_ratio"] <= 1.0
        assert (cached.results["test-exp"].averages()
                == first.results["test-exp"].averages())


class TestManifest:
    def test_shape(self, tmp_path):
        specs = {"test-exp": _spec(_smoke_like(["atax"]))}
        report = run_campaign(["test-exp"], scale=SCALE, serial=True,
                              specs=specs, store_dir=tmp_path / "store")
        manifest = report.manifest
        assert manifest["campaign_format"] == 1
        assert manifest["code_version"]
        assert manifest["scale"] == SCALE
        assert manifest["store"]
        exp = manifest["experiments"]["test-exp"]
        assert exp["provenance"] == "tests only"
        assert exp["averages"]["shm"] == pytest.approx(
            report.results["test-exp"].average("shm"))
        (cell,) = exp["cells"]
        assert cell["key"] and cell["status"] == "ok"
        totals = manifest["totals"]
        assert totals["cells"] == totals["ok"] == 1
        # It is a JSON document (``repro inspect`` reads it back).
        import json
        json.dumps(manifest)
        # Per-cell runtimes reached the PR-1 metrics registry.
        assert "campaign.cell_runtime_s" in manifest["metrics"]["histograms"]


class TestRegistry:
    def test_every_experiment_declares_a_consistent_matrix(self):
        from repro.eval.experiments import EXPERIMENTS

        config = SimConfig()
        for name, spec in EXPERIMENTS.items():
            assert spec.name == name
            assert spec.provenance
            jobs = spec.jobs(None, config, SCALE)
            assert jobs, f"{name} expands to an empty matrix"
            for job in jobs:
                assert isinstance(job, JobSpec)
                assert job.experiment == name
                assert job.kind in ("run", "profile")
                assert job.scale == SCALE

    def test_classic_driver_matches_campaign(self, suite_runner):
        """The refactored fig12 driver and the campaign engine are the
        same computation: same cells, same aggregate."""
        from repro.eval import experiments as exp

        classic = exp.fig12_overall_ipc(suite_runner, ["atax"])
        spec = exp.EXPERIMENTS["fig12"]
        records = run_cells_serial(
            suite_runner, spec.jobs(["atax"], suite_runner.config,
                                    suite_runner.scale))
        via_engine = spec.aggregate(records)
        for label, series in classic.series.items():
            assert via_engine.series[label] == pytest.approx(series)


class TestCellMetrics:
    """collect_metrics: worker-side observer metrics come home to the
    parent registry (they are lost under ProcessPoolExecutor today
    without state shipping)."""

    def test_pool_metrics_merged_into_parent(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        report = run_campaign(
            ["smoke"], scale=SCALE, jobs=2, store_dir=tmp_path,
            specs={"smoke": SMOKE_SPEC}, registry=registry,
            collect_metrics=True,
        )
        assert report.totals["failed"] == 0
        hist = registry.histogram("sim.demand_read_latency")
        assert hist.count > 0

    def test_serial_matches_pool(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        pool_reg, serial_reg = MetricsRegistry(), MetricsRegistry()
        run_campaign(["smoke"], scale=SCALE, jobs=2,
                     store_dir=tmp_path / "pool",
                     specs={"smoke": SMOKE_SPEC}, registry=pool_reg,
                     collect_metrics=True)
        run_campaign(["smoke"], scale=SCALE, serial=True,
                     specs={"smoke": SMOKE_SPEC}, registry=serial_reg,
                     collect_metrics=True)
        pool = pool_reg.snapshot()["histograms"]["sim.demand_read_latency"]
        serial = serial_reg.snapshot()["histograms"]["sim.demand_read_latency"]
        assert pool["count"] == serial["count"]
        assert pool["sum"] == pytest.approx(serial["sum"])

    def test_collect_metrics_excluded_from_cell_key(self):
        job = JobSpec(experiment="e", workload="atax", scheme="shm",
                      scale=SCALE, config=SimConfig())
        flagged = dataclasses.replace(job, collect_metrics=True)
        assert cell_key(job, "v1") == cell_key(flagged, "v1")

    def test_off_by_default_registry_untouched(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        run_campaign(["smoke"], scale=SCALE, jobs=2, store_dir=tmp_path,
                     specs={"smoke": SMOKE_SPEC}, registry=registry)
        assert registry.histogram("sim.demand_read_latency").count == 0
