"""Counter state: shared counter, minors/overflow, common counters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metadata.counters import (
    MINOR_OVERFLOW,
    CommonCounterTable,
    CounterFile,
    SharedCounter,
)
from repro.metadata.layout import CTR_LINE_COVERAGE_BLOCKS


class TestSharedCounter:
    def test_initial_value(self):
        assert SharedCounter().value == 1

    def test_raise_to_goes_above_floor(self):
        sc = SharedCounter(initial=3)
        # Fig. 9: scanned max major 90 -> register must exceed it.
        assert sc.raise_to(90) == 91
        assert sc.resets == 1

    def test_raise_never_decreases(self):
        sc = SharedCounter(initial=100)
        sc.raise_to(5)
        assert sc.value == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SharedCounter(initial=-1)


class TestCounterFile:
    def test_unwritten_blocks_are_zero(self):
        cf = CounterFile()
        assert cf.minor(123) == 0
        assert cf.major(0) == 0

    def test_record_write_increments(self):
        cf = CounterFile()
        cf.record_write(5)
        cf.record_write(5)
        assert cf.minor(5) == 2

    def test_minor_overflow_rolls_major(self):
        cf = CounterFile()
        overflowed = False
        for _ in range(MINOR_OVERFLOW):
            overflowed = cf.record_write(7)
        assert overflowed
        assert cf.overflows == 1
        line = 7 // CTR_LINE_COVERAGE_BLOCKS
        assert cf.major(line) == 1
        # Re-encryption resets every minor in the line's coverage.
        assert cf.minor(7) == 0

    def test_set_major_propagation(self):
        cf = CounterFile()
        cf.record_write(3)
        cf.set_major(0, 42)  # shared-counter propagation (Fig. 8)
        assert cf.major(0) == 42
        assert cf.minor(3) == 0

    def test_max_major_scan(self):
        cf = CounterFile()
        cf.set_major(2, 10)
        cf.set_major(5, 90)
        assert cf.max_major_in_lines(range(0, 8)) == 90
        assert cf.max_major_in_lines([]) == 0


class TestCommonCounterTable:
    def test_initially_common(self):
        assert CommonCounterTable().is_common(0)

    def test_first_write_diverges(self):
        t = CommonCounterTable()
        t.record_write(0, 5)
        assert not t.is_common(0)
        assert t.divergences == 1

    def test_uniform_rewrite_reconverges(self):
        """Writing every block in the line exactly once restores the
        common-counter property [17]."""
        t = CommonCounterTable()
        last = False
        for block in range(CTR_LINE_COVERAGE_BLOCKS):
            last = t.record_write(0, block)
        assert last  # the final write completed the uniform pass
        assert t.is_common(0)
        assert t.reconvergences == 1

    def test_partial_rewrite_stays_diverged(self):
        t = CommonCounterTable()
        for block in range(CTR_LINE_COVERAGE_BLOCKS // 2):
            t.record_write(0, block)
        assert not t.is_common(0)

    def test_skewed_counts_stay_diverged(self):
        t = CommonCounterTable()
        for block in range(CTR_LINE_COVERAGE_BLOCKS):
            t.record_write(0, block)
        t.record_write(0, 3)  # block 3 now ahead of the others
        assert not t.is_common(0)

    def test_lines_independent(self):
        t = CommonCounterTable()
        t.record_write(0, 0)
        assert t.is_common(1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_property_n_uniform_passes_reconverge(self, passes):
        t = CommonCounterTable()
        for _ in range(passes):
            for block in range(CTR_LINE_COVERAGE_BLOCKS):
                t.record_write(9, block)
            assert t.is_common(9)
