"""Metadata geometry: coverage arithmetic and carve-out placement."""

import pytest
from hypothesis import given, strategies as st

from repro.common import constants
from repro.metadata import layout


class TestCounterGeometry:
    def test_counter_line_covers_16kb(self):
        # 128 blocks of 128 B = 16 KB per counter line.
        assert layout.counter_line(0) == layout.counter_line(127)
        assert layout.counter_line(128) == 1

    def test_counter_sector_covers_4kb(self):
        ref0 = layout.counter_sector(0)
        ref31 = layout.counter_sector(31)
        ref32 = layout.counter_sector(32)
        assert ref0 == ref31
        assert ref0 != ref32

    def test_four_sectors_per_counter_line(self):
        sectors = {layout.counter_sector(b).sector for b in range(128)}
        assert sectors == {0, 1, 2, 3}
        keys = {layout.counter_sector(b).line_key for b in range(128)}
        assert keys == {0}


class TestMACGeometry:
    def test_mac_line_covers_16_blocks(self):
        assert layout.mac_sector(0).line_key == layout.mac_sector(15).line_key
        assert layout.mac_sector(16).line_key == 1

    def test_mac_sector_covers_4_blocks(self):
        assert layout.mac_sector(0) == layout.mac_sector(3)
        assert layout.mac_sector(3) != layout.mac_sector(4)

    def test_chunk_mac_key_space_disjoint(self):
        blk = layout.mac_sector(10)
        cm = layout.chunk_mac_sector(10)
        assert cm.line_key >= layout.CHUNK_MAC_KEY_BASE
        assert blk.line_key < layout.CHUNK_MAC_KEY_BASE

    def test_chunk_mac_sector_covers_4_chunks(self):
        assert layout.chunk_mac_sector(0) == layout.chunk_mac_sector(3)
        assert layout.chunk_mac_sector(3) != layout.chunk_mac_sector(4)


class TestBMTGeometry:
    def test_leaf_per_counter_line(self):
        assert layout.bmt_leaf(0) == 0
        assert layout.bmt_leaf(127) == 0
        assert layout.bmt_leaf(128) == 1

    def test_levels_for_4gb(self):
        # 4 GB -> 256 Ki counter lines -> log16(262144) = 4.5 -> 5 levels.
        assert layout.bmt_levels(4 * 1024**3) == 5

    def test_levels_for_partition_share(self):
        share = 4 * 1024**3 // 12
        assert layout.bmt_levels(share) == 4

    def test_levels_minimum_one(self):
        assert layout.bmt_levels(16 * 1024) == 1


class TestMetadataLayout:
    def test_carveout_regions_ordered_and_disjoint(self):
        ml = layout.MetadataLayout()
        assert ml.counter_base == constants.PROTECTED_MEMORY_BYTES
        assert ml.mac_base == ml.counter_base + ml.counter_space
        assert ml.chunk_mac_base == ml.mac_base + ml.mac_space
        assert ml.bmt_base == ml.chunk_mac_base + ml.chunk_mac_space

    def test_mac_space_is_one_sixteenth_of_data(self):
        ml = layout.MetadataLayout()
        assert ml.mac_space == ml.protected_bytes // 16

    def test_counter_space(self):
        ml = layout.MetadataLayout()
        # One 128 B line per 16 KB of data = 1/128 of the data size.
        assert ml.counter_space == ml.protected_bytes // 128

    def test_counter_addresses_within_region(self):
        ml = layout.MetadataLayout()
        last_line = ml.protected_bytes // (16 * 1024) - 1
        addr = ml.counter_address(last_line)
        assert ml.counter_base <= addr < ml.mac_base

    def test_mac_address_routes_chunk_keys(self):
        ml = layout.MetadataLayout()
        blk_addr = ml.mac_address(0)
        cm_addr = ml.mac_address(layout.CHUNK_MAC_KEY_BASE)
        assert blk_addr == ml.mac_base
        assert cm_addr == ml.chunk_mac_base

    def test_bmt_addresses_distinct_across_levels(self):
        ml = layout.MetadataLayout()
        a1 = ml.bmt_address(1 * layout.BMT_LEVEL_KEY_BASE + 0)
        a2 = ml.bmt_address(2 * layout.BMT_LEVEL_KEY_BASE + 0)
        assert a1 != a2
        assert a1 >= ml.bmt_base and a2 >= ml.bmt_base


@given(st.integers(min_value=0, max_value=2**25))
def test_property_every_block_has_all_metadata(block_id):
    ctr = layout.counter_sector(block_id)
    mac = layout.mac_sector(block_id)
    assert 0 <= ctr.sector < 4 and 0 <= mac.sector < 4
    assert layout.bmt_leaf(block_id) == layout.counter_line(block_id)
