"""Metadata caches (MDC): traffic generation and the victim path."""

import pytest

from repro.common.config import GPUConfig, MDCConfig
from repro.memory.l2 import PartitionL2
from repro.metadata.caches import (
    KIND_BMT,
    KIND_CTR,
    KIND_MAC,
    MetadataCaches,
)


@pytest.fixture
def mdc():
    return MetadataCaches(MDCConfig(), partition_id=0)


class TestAccess:
    def test_miss_generates_one_sector_fetch(self, mdc):
        transfers, displaced, hit = mdc.access(KIND_CTR, 0, 0)
        assert not hit
        assert len(transfers) == 1
        assert transfers[0].kind == KIND_CTR
        assert transfers[0].size == 32
        assert not transfers[0].is_write

    def test_hit_generates_no_traffic(self, mdc):
        mdc.access(KIND_CTR, 0, 0)
        transfers, _, hit = mdc.access(KIND_CTR, 0, 0)
        assert hit and not transfers

    def test_unsectored_fill_fetches_whole_line(self, mdc):
        transfers, _, _ = mdc.access(KIND_MAC, 0, 0, sectors_on_miss=4)
        assert transfers[0].size == 128
        # All four sectors now resident.
        for s in range(4):
            _, _, hit = mdc.access(KIND_MAC, 0, s)
            assert hit

    def test_write_no_fetch(self, mdc):
        transfers, _, hit = mdc.access(KIND_MAC, 1, 0, is_write=True,
                                       fetch_on_miss=False)
        assert not hit and not transfers  # produced in place

    def test_dirty_eviction_writes_back(self, mdc):
        # Fill one set (4 ways) with dirty lines, then overflow it.
        keys = []
        k = 0
        while len(keys) < 5:
            if mdc.counter.set_index(k) == 0:
                keys.append(k)
            k += 1
        for key in keys[:4]:
            mdc.access(KIND_CTR, key, 0, is_write=True, fetch_on_miss=False)
        transfers, _, _ = mdc.access(KIND_CTR, keys[4], 0)
        writes = [t for t in transfers if t.is_write]
        assert len(writes) == 1
        assert writes[0].size == 32

    def test_kinds_use_separate_caches(self, mdc):
        mdc.access(KIND_CTR, 0, 0)
        _, _, hit = mdc.access(KIND_MAC, 0, 0)
        assert not hit

    def test_unknown_kind_rejected(self, mdc):
        with pytest.raises(ValueError):
            mdc.access("bogus", 0, 0)

    def test_clean(self, mdc):
        mdc.access(KIND_MAC, 2, 1, is_write=True, fetch_on_miss=False)
        assert mdc.clean(KIND_MAC, 2, 1)
        assert not mdc.clean(KIND_MAC, 2, 1)


class TestFlush:
    def test_flush_emits_dirty_only(self, mdc):
        mdc.access(KIND_CTR, 0, 0, is_write=True, fetch_on_miss=False)
        mdc.access(KIND_MAC, 0, 0)  # clean
        transfers = mdc.flush()
        assert len(transfers) == 1
        assert transfers[0].kind == KIND_CTR and transfers[0].is_write


class TestVictimPath:
    @pytest.fixture
    def victim_mdc(self):
        mdc = MetadataCaches(MDCConfig(), partition_id=0)
        mdc.l2 = PartitionL2(GPUConfig(), 0)
        mdc.victim_enabled = lambda: True
        return mdc

    def test_eviction_parks_in_l2_or_writes_back(self, victim_mdc):
        keys = []
        k = 0
        while len(keys) < 5:
            if victim_mdc.mac.set_index(k) == 0:
                keys.append(k)
            k += 1
        for key in keys[:4]:
            victim_mdc.access(KIND_MAC, key, 0, is_write=True, fetch_on_miss=False)
        transfers, _, _ = victim_mdc.access(KIND_MAC, keys[4], 0)
        inserted = sum(b.victim_insertions for b in victim_mdc.l2.banks)
        wrote_back = any(t.is_write for t in transfers)
        # The dirty victim either parked in the L2 or (if its set is a
        # sampled data-only set) became a DRAM write - never dropped.
        assert inserted >= 1 or wrote_back

    def test_miss_served_from_victim(self, victim_mdc):
        from repro.memory.l2 import SAMPLE_STRIDE
        key = next(
            k for k in range(10_000)
            if victim_mdc.l2.bank_for(k).cache.set_index(("v", (KIND_CTR, k)))
            % SAMPLE_STRIDE != 0
        )
        bank = victim_mdc.l2.bank_for(key)
        bank.victim_insert((KIND_CTR, key), valid_sectors=4, dirty=False)
        transfers, _, hit = victim_mdc.access(KIND_CTR, key, 0)
        assert not transfers  # no DRAM fetch: the L2 had it
        # And the line moved out of the L2.
        assert not bank.victim_probe((KIND_CTR, key), 0)

    def test_victim_disabled_goes_to_dram(self):
        mdc = MetadataCaches(MDCConfig(), partition_id=0)
        mdc.l2 = PartitionL2(GPUConfig(), 0)
        mdc.victim_enabled = lambda: False
        transfers, _, _ = mdc.access(KIND_CTR, 3, 0)
        assert len(transfers) == 1
