"""BMT walker: traversal traffic with stop-at-cached-ancestor."""

import pytest

from repro.common.config import MDCConfig
from repro.metadata.bmt import BMTWalker
from repro.metadata.caches import MetadataCaches


@pytest.fixture
def mdc():
    return MetadataCaches(MDCConfig(), partition_id=0)


class TestWalk:
    def test_cold_walk_touches_interior_levels(self, mdc):
        walker = BMTWalker(protected_bytes=4 * 1024**3 // 12)  # 4 levels
        transfers, _ = walker.walk(mdc, leaf_index=0, is_write=False)
        # Levels 1..3 fetched (the root register is free).
        assert len([t for t in transfers if not t.is_write]) == walker.levels - 1

    def test_warm_walk_stops_at_first_hit(self, mdc):
        walker = BMTWalker(protected_bytes=4 * 1024**3 // 12)
        walker.walk(mdc, leaf_index=0, is_write=False)
        transfers, _ = walker.walk(mdc, leaf_index=0, is_write=False)
        assert not transfers  # whole path cached: trusted ancestor at L1

    def test_sibling_leaves_share_path(self, mdc):
        walker = BMTWalker(protected_bytes=4 * 1024**3 // 12)
        walker.walk(mdc, leaf_index=0, is_write=False)
        transfers, _ = walker.walk(mdc, leaf_index=1, is_write=False)
        assert not transfers  # leaf 1's parent == leaf 0's parent

    def test_write_walk_dirties_nodes(self, mdc):
        walker = BMTWalker(protected_bytes=4 * 1024**3 // 12)
        walker.walk(mdc, leaf_index=0, is_write=True)
        flushed = mdc.flush()
        assert any(t.kind == "bmt" and t.is_write for t in flushed)

    def test_walk_counts(self, mdc):
        walker = BMTWalker(protected_bytes=16 * 1024 * 1024)
        walker.walk(mdc, leaf_index=0, is_write=False)
        assert walker.walks == 1
        assert walker.nodes_touched >= 1

    def test_small_memory_single_level(self, mdc):
        walker = BMTWalker(protected_bytes=16 * 1024)
        transfers, _ = walker.walk(mdc, leaf_index=0, is_write=False)
        assert not transfers  # only the root above the leaf: free
