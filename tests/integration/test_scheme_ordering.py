"""End-to-end scheme ordering on a down-scaled suite subset.

These are the headline qualitative claims of the paper, asserted on
real simulations (scale 0.1 keeps them quick).
"""

import pytest

from repro.common.types import Scheme

WORKLOADS = ["atax", "fdtd2d", "bfs", "kmeans"]


@pytest.fixture(scope="module")
def results(suite_runner):
    out = {}
    for name in WORKLOADS:
        base = suite_runner.baseline(name)
        out[name] = {
            scheme: suite_runner.run(name, scheme).normalized_ipc(base)
            for scheme in (
                Scheme.NAIVE, Scheme.COMMON_CTR, Scheme.PSSM,
                Scheme.SHM, Scheme.SHM_UPPER_BOUND,
            )
        }
    return out


def avg(results, scheme):
    return sum(r[scheme] for r in results.values()) / len(results)


class TestFig12Ordering:
    def test_naive_is_worst(self, results):
        for name, r in results.items():
            assert r[Scheme.NAIVE] <= r[Scheme.PSSM] + 0.01, name
            assert r[Scheme.NAIVE] <= r[Scheme.SHM] + 0.01, name

    def test_common_counters_improve_on_naive(self, results):
        assert avg(results, Scheme.COMMON_CTR) > avg(results, Scheme.NAIVE)

    def test_pssm_improves_on_common_counters(self, results):
        assert avg(results, Scheme.PSSM) > avg(results, Scheme.COMMON_CTR)

    def test_shm_improves_on_pssm(self, results):
        assert avg(results, Scheme.SHM) > avg(results, Scheme.PSSM)

    def test_upper_bound_at_least_shm(self, results):
        assert avg(results, Scheme.SHM_UPPER_BOUND) >= \
            avg(results, Scheme.SHM) - 0.01

    def test_shm_average_overhead_below_15_percent(self, results):
        assert 1.0 - avg(results, Scheme.SHM) < 0.15

    def test_naive_average_overhead_above_10_percent(self, results):
        assert 1.0 - avg(results, Scheme.NAIVE) > 0.10


class TestFig14Bandwidth:
    def test_metadata_bandwidth_ordering(self, suite_runner):
        for name in ("fdtd2d", "kmeans"):
            naive = suite_runner.run(name, Scheme.NAIVE).bandwidth_overhead
            pssm = suite_runner.run(name, Scheme.PSSM).bandwidth_overhead
            shm = suite_runner.run(name, Scheme.SHM).bandwidth_overhead
            assert naive > pssm > shm

    def test_shm_near_zero_on_fdtd2d(self, suite_runner):
        # The paper's flagship case: fdtd2d reaches ~0.8% overhead.
        assert suite_runner.run("fdtd2d", Scheme.SHM).bandwidth_overhead < 0.05


class TestDetectorsEndToEnd:
    def test_readonly_accuracy_high_on_streaming(self, suite_runner):
        stats = suite_runner.run("fdtd2d", Scheme.SHM).readonly_stats
        assert stats.accuracy > 0.9

    def test_streaming_accuracy_high_on_streaming(self, suite_runner):
        # The paper reports 83.4% average accuracy; fdtd2d is one of
        # the best cases.  At the test's 0.1 scale the phase boundaries
        # weigh more, so assert a slightly looser floor.
        stats = suite_runner.run("fdtd2d", Scheme.SHM).streaming_stats
        assert stats.accuracy > 0.8

    def test_shared_counter_used_on_readonly_workloads(self, suite_runner):
        result = suite_runner.run("kmeans", Scheme.SHM)
        assert result.shared_counter_reads > 0
