"""Property-based security fuzzing of the functional secure memory.

Hypothesis drives arbitrary interleavings of legitimate operations and
attacker actions; the invariants are the paper's guarantees:

* a read either returns the latest legitimately written value or
  raises (no silent corruption, no stale data for writable memory);
* any single-bit tamper of ciphertext or MAC is detected.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import constants
from repro.common.types import IntegrityError
from repro.core.functional import SecureMemoryDevice
from repro.crypto.keys import KeyGenerator

BLOCK = constants.BLOCK_SIZE
NUM_BLOCKS = 8


def make_device():
    keys = KeyGenerator().context_keys(0)
    device = SecureMemoryDevice(keys, size_bytes=1024 * 1024)
    device.host_copy(0, bytes(NUM_BLOCKS * BLOCK), read_only=False)
    return device


write_op = st.tuples(
    st.just("write"),
    st.integers(0, NUM_BLOCKS - 1),
    st.integers(0, 255),
)
read_op = st.tuples(st.just("read"), st.integers(0, NUM_BLOCKS - 1), st.just(0))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.one_of(write_op, read_op), min_size=1, max_size=40))
def test_property_reads_always_return_latest_write(ops):
    device = make_device()
    expected = {i: bytes(BLOCK) for i in range(NUM_BLOCKS)}
    for op, block, value in ops:
        addr = block * BLOCK
        if op == "write":
            data = bytes([value]) * BLOCK
            device.write(addr, data)
            expected[block] = data
        else:
            assert device.read(addr) == expected[block]


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, NUM_BLOCKS - 1),
    st.integers(0, BLOCK - 1),
    st.integers(1, 255),
)
def test_property_any_bitflip_in_ciphertext_detected(block, byte_idx, flip):
    device = make_device()
    device.write(block * BLOCK, b"\x5A" * BLOCK)
    ct, mac = device.raw_block(block * BLOCK)
    tampered = bytearray(ct)
    tampered[byte_idx] ^= flip
    device.raw_overwrite(block * BLOCK, bytes(tampered), mac=mac)
    with pytest.raises(IntegrityError):
        device.read(block * BLOCK)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 7), st.integers(1, 255))
def test_property_any_bitflip_in_mac_detected(byte_idx, flip):
    device = make_device()
    device.write(0, b"\x77" * BLOCK)
    ct, mac = device.raw_block(0)
    forged = bytearray(mac)
    forged[byte_idx] ^= flip
    device.raw_overwrite(0, ct, mac=bytes(forged))
    with pytest.raises(IntegrityError):
        device.read(0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, NUM_BLOCKS - 1), min_size=2, max_size=10))
def test_property_replays_after_any_write_history_detected(history):
    """Snapshot a block, continue writing, replay: always detected."""
    device = make_device()
    target = history[0] * BLOCK
    device.write(target, b"\x01" * BLOCK)
    ct, mac = device.raw_block(target)
    for i, block in enumerate(history):
        device.write(block * BLOCK, bytes([i + 2]) * BLOCK)
    device.raw_overwrite(target, ct, mac=mac)
    with pytest.raises(IntegrityError):
        device.read(target)


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=BLOCK, max_size=BLOCK))
def test_property_read_only_roundtrip_any_content(data):
    keys = KeyGenerator().context_keys(1)
    device = SecureMemoryDevice(keys, size_bytes=1024 * 1024)
    device.host_copy(0, data, read_only=True)
    assert device.read(0) == data
