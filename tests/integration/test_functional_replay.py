"""Workload-scale validation of the functional secure memory.

Replaying real workload traces through genuine AES/MAC/BMT exercises
the read-only state machine (markings, transitions, shared-counter
resets, counter evolution) far beyond what unit tests construct by
hand.  Every read must decrypt to the last written value.
"""

import pytest

from repro.sim.checker import FunctionalReplay
from repro.workloads import patterns as pat
from repro.workloads.base import WorkloadBuilder
from repro.workloads.suite import build

KB = 1024


class TestReplaySmallSuite:
    @pytest.mark.parametrize("name", ["atax", "histo", "srad"])
    def test_suite_workload_replays_clean(self, name):
        workload = build(name, scale=0.02)
        replay = FunctionalReplay(workload).run(max_accesses_per_kernel=400)
        assert replay.reads_verified > 0
        assert replay.device.detected_attacks == 0

    def test_multikernel_with_reset_api(self):
        b = WorkloadBuilder("replay-reset", bandwidth_utilization=0.5, seed=2)
        data = b.alloc("in", 192 * KB)
        out = b.alloc("out", 192 * KB, host_init=False)
        k = lambda: pat.interleave(b.rng, [
            pat.stream_read(data.address, 48 * KB),
            pat.stream_write(out.address, 24 * KB),
        ])
        b.kernel("k0", k())
        b.kernel("k1", k(), readonly_resets=[data])
        b.kernel("k2", k(), copies=[data])
        workload = b.build()
        replay = FunctionalReplay(workload).run()
        assert replay.reads_verified > 0
        # The reset API raised the shared counter at least once.
        assert replay.device.shared_counter > 1


class TestReplayTransitions:
    def test_readonly_to_writable_preserves_data(self):
        b = WorkloadBuilder("replay-trans", bandwidth_utilization=0.5, seed=4)
        data = b.alloc("buf", 192 * KB)
        trace = pat.interleave(b.rng, [
            pat.stream_read(data.address, 32 * KB),
            pat.stream_write(data.address, 16 * KB),  # writes into RO input
            pat.stream_read(data.address, 32 * KB),
        ])
        b.kernel("k0", trace)
        workload = b.build()
        replay = FunctionalReplay(workload).run()
        assert replay.transitions_exercised > 0
        assert replay.reads_verified > 0

    def test_write_versions_tracked(self):
        b = WorkloadBuilder("replay-vers", bandwidth_utilization=0.5, seed=6)
        data = b.alloc("buf", 192 * KB)
        trace = []
        for _ in range(3):  # read/write/read/write... same blocks
            trace += pat.stream_read(data.address, 8 * KB)
            trace += pat.stream_write(data.address, 8 * KB)
        b.kernel("k0", trace)
        replay = FunctionalReplay(b.build()).run()
        assert replay.writes_applied == 3 * 64
        assert replay.reads_verified == 3 * 64
