"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, args=()):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600,
    )


def test_examples_directory_exists():
    assert EXAMPLES.is_dir()
    assert (EXAMPLES / "quickstart.py").exists()


def test_quickstart_runs():
    proc = run_example("quickstart.py", ["atax", "0.05"])
    assert proc.returncode == 0, proc.stderr
    assert "shm" in proc.stdout
    assert "detector statistics" in proc.stdout


def test_attack_detection_runs():
    proc = run_example("attack_detection.py")
    assert proc.returncode == 0, proc.stderr
    assert "DETECTED" in proc.stdout
    assert "replay SUCCEEDED" in proc.stdout  # the vulnerable variant
    assert "attacks detected" in proc.stdout


def test_secure_matmul_runs():
    proc = run_example("secure_matmul.py")
    assert proc.returncode == 0, proc.stderr
    assert "max |C - A@B|" in proc.stdout
    assert "DETECTED" in proc.stdout


@pytest.mark.slow
def test_ml_inference_runs():
    proc = run_example("ml_inference_readonly.py")
    assert proc.returncode == 0, proc.stderr
    assert "InputReadOnlyReset" in proc.stdout


@pytest.mark.slow
def test_access_pattern_sweep_runs():
    proc = run_example("access_pattern_sweep.py")
    assert proc.returncode == 0, proc.stderr
    assert "PSSM mac BW" in proc.stdout
