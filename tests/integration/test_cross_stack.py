"""Consistency between the traffic model and the functional model.

The simulator charges traffic for operations the cryptographic stack
actually needs; these tests pin the two stacks to the same decisions
for the read-only design, where divergence would be a soundness bug
(e.g. the traffic model skipping counters the functional model needs).
"""

import pytest

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.core.api import SecureGPUContext
from repro.core.mee import MemoryEncryptionEngine
from repro.metadata.counters import SharedCounter

KB = 1024


def make_mee(scheme=Scheme.SHM_READONLY):
    config = SimConfig().with_scheme(scheme)
    mapper = AddressMapper(config.gpu.num_partitions,
                           config.gpu.interleave_bytes)
    return MemoryEncryptionEngine(0, config, mapper, SharedCounter())


class TestReadOnlyAgreement:
    """Both stacks must agree on when the shared counter applies."""

    def test_host_initialised_range_is_shared_counter_in_both(self):
        # Functional side.
        ctx = SecureGPUContext(memory_bytes=1 << 20)
        buf = ctx.alloc("in", 64 * KB)
        ctx.memcpy_h2d(buf, bytes(64 * KB), read_only=True)
        assert ctx.device.is_read_only(buf.address)
        # Traffic side (same footprint, partition-local view).
        mee = make_mee()
        mee.on_host_copy(0, 64 * KB, at_init=True)
        res = mee.on_read_miss(0, 0, 0)
        assert not any(r.kind in ("ctr", "bmt") for r in res.requests)

    def test_write_transitions_both_stacks(self):
        ctx = SecureGPUContext(memory_bytes=1 << 20)
        buf = ctx.alloc("in", 64 * KB)
        ctx.memcpy_h2d(buf, bytes(64 * KB), read_only=True)
        ctx.write(buf.address, b"\x01" * 128)
        assert not ctx.device.is_read_only(buf.address)

        mee = make_mee()
        mee.on_host_copy(0, 64 * KB, at_init=True)
        mee.on_writeback(0, 0, 0)
        assert not mee.readonly.predict(0)
        # Subsequent reads pay counter traffic in the traffic model...
        res = mee.on_read_miss(1, 128, 128)
        paid_counters = any(r.kind == "ctr" for r in res.requests) or \
            mee.caches.counter.hits > 0
        assert paid_counters
        # ...matching the functional model's per-block counters, whose
        # freshness is now BMT-protected (see
        # TestReadOnlyDesign.test_transitioned_region_gains_freshness).

    def test_reset_api_raises_shared_counter_in_both(self):
        ctx = SecureGPUContext(memory_bytes=1 << 20)
        buf = ctx.alloc("in", 64 * KB)
        ctx.memcpy_h2d(buf, bytes(64 * KB), read_only=True)
        ctx.write(buf.address, b"\x01" * 128)
        functional_before = ctx.device.shared_counter
        ctx.input_read_only_reset(buf)
        assert ctx.device.shared_counter > functional_before

        mee = make_mee()
        mee.on_host_copy(0, 64 * KB, at_init=True)
        mee.on_writeback(0, 0, 0)
        traffic_before = mee.shared_counter.value
        mee.input_read_only_reset(0, 64 * KB)
        assert mee.shared_counter.value > traffic_before


class TestMACGranularityAgreement:
    def test_chunk_mac_verifies_exactly_what_the_traffic_model_charges(self):
        """A chunk MAC fetched once covers the 32 block MACs the
        functional chunk_mac() is computed over."""
        from repro.crypto.mac import MACEngine

        engine = MACEngine(b"k" * 16)
        block_macs = [
            engine.block_mac(bytes([i]) * 128, i * 128, 0, 0)
            for i in range(constants.BLOCKS_PER_CHUNK)
        ]
        cmac = engine.chunk_mac(block_macs)
        assert engine.verify_chunk(block_macs, cmac)
        # The traffic model charges one 8 B MAC per 4 KB chunk: the
        # functional object is exactly 8 bytes.
        assert len(cmac) == constants.MAC_SIZE

    def test_seed_components_match_layout_coverage(self):
        """The counter the functional device uses for a block is the
        one the traffic model's counter sector covers."""
        from repro.metadata import layout

        for block in (0, 31, 32, 127, 128, 1000):
            line = layout.counter_line(block)
            # The functional device's counter-line granularity.
            from repro.core.functional import SecureMemoryDevice
            from repro.crypto.keys import KeyGenerator

            device = SecureMemoryDevice(KeyGenerator().context_keys(0),
                                        size_bytes=1 << 20)
            fn_line, _ = device._counter_line_of(block)
            assert fn_line == line
