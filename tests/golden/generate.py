"""Regenerate the golden smoke matrix (tests/golden/golden_smoke.json).

Run from the repo root after an *intentional* model change:

    PYTHONPATH=src python tests/golden/generate.py

The golden file pins the lossless serialisation of every
(paper workload x Table VIII scheme) cell at smoke scale, so any
behaviour drift in the request pipeline, the scheme policies or the
DRAM schedulers shows up as a bit-level diff in CI rather than as a
silent change in the paper's numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.common.types import Scheme
from repro.eval.results_io import serialize_run_result
from repro.sim.runner import Runner
from repro.workloads.suite import BENCHMARK_NAMES

SCALE = 0.05
SCHEMES = [s for s in Scheme]
OUT = Path(__file__).parent / "golden_smoke.json"


def generate() -> dict:
    runner = Runner(scale=SCALE)
    cells = {}
    for name in BENCHMARK_NAMES:
        t0 = time.time()
        for scheme in SCHEMES:
            result = runner.run(name, scheme)
            cells[f"{name}/{scheme.value}"] = serialize_run_result(result)
        print(f"{name}: {len(SCHEMES)} schemes in {time.time() - t0:.1f}s")
    return {
        "scale": SCALE,
        "workloads": list(BENCHMARK_NAMES),
        "schemes": [s.value for s in SCHEMES],
        "cells": cells,
    }


if __name__ == "__main__":
    document = generate()
    OUT.write_text(json.dumps(document, indent=1, sort_keys=True))
    print(f"wrote {len(document['cells'])} cells to {OUT}")
