"""Runner: calibration, caching, normalisation."""

import pytest

from repro.common.types import Scheme


class TestCalibration:
    def test_utilization_near_target(self, tiny_runner, tiny_streaming):
        calib = tiny_runner.calibration(tiny_streaming.name)
        target = tiny_streaming.bandwidth_utilization
        measured = calib.baseline.dram_utilization
        assert measured == pytest.approx(target, rel=0.25)

    def test_window_positive(self, tiny_runner, tiny_streaming):
        assert tiny_runner.calibration(tiny_streaming.name).window >= 16

    def test_profile_attached(self, tiny_runner, tiny_streaming):
        profile = tiny_runner.profile(tiny_streaming.name)
        assert profile.total_accesses > 0
        # The tiny streaming workload is overwhelmingly streaming.
        assert profile.streaming_ratio > 0.7


class TestCaching:
    def test_run_cached(self, tiny_runner, tiny_streaming):
        a = tiny_runner.run(tiny_streaming.name, Scheme.PSSM)
        b = tiny_runner.run(tiny_streaming.name, Scheme.PSSM)
        assert a is b

    def test_overrides_bypass_cache(self, tiny_runner, tiny_streaming):
        a = tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        b = tiny_runner.run(tiny_streaming.name, Scheme.SHM,
                            mac_conflict_policy="update_both")
        assert a is not b

    def test_unprotected_is_baseline(self, tiny_runner, tiny_streaming):
        assert tiny_runner.run(tiny_streaming.name, Scheme.UNPROTECTED) is \
            tiny_runner.baseline(tiny_streaming.name)


class TestMetrics:
    def test_normalized_ipc_at_most_one(self, tiny_runner, tiny_streaming):
        for scheme in (Scheme.NAIVE, Scheme.PSSM, Scheme.SHM):
            nipc = tiny_runner.normalized_ipc(tiny_streaming.name, scheme)
            assert 0.0 < nipc <= 1.001

    def test_overhead_complements_ipc(self, tiny_runner, tiny_streaming):
        nipc = tiny_runner.normalized_ipc(tiny_streaming.name, Scheme.PSSM)
        over = tiny_runner.overhead(tiny_streaming.name, Scheme.PSSM)
        assert nipc + over == pytest.approx(1.0)


class TestSuiteIntegration:
    def test_suite_workload_builds_on_demand(self, suite_runner):
        w = suite_runner.workload("atax")
        assert w.name == "atax"
        assert w.total_accesses > 0

    def test_unknown_workload_raises(self, suite_runner):
        with pytest.raises(KeyError):
            suite_runner.workload("nonexistent")
