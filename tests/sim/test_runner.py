"""Runner: calibration, caching, normalisation."""

import pytest

from repro.common.types import Scheme


class TestCalibration:
    def test_utilization_near_target(self, tiny_runner, tiny_streaming):
        calib = tiny_runner.calibration(tiny_streaming.name)
        target = tiny_streaming.bandwidth_utilization
        measured = calib.baseline.dram_utilization
        assert measured == pytest.approx(target, rel=0.25)

    def test_window_positive(self, tiny_runner, tiny_streaming):
        assert tiny_runner.calibration(tiny_streaming.name).window >= 16

    def test_profile_attached(self, tiny_runner, tiny_streaming):
        profile = tiny_runner.profile(tiny_streaming.name)
        assert profile.total_accesses > 0
        # The tiny streaming workload is overwhelmingly streaming.
        assert profile.streaming_ratio > 0.7


class TestCaching:
    def test_run_cached(self, tiny_runner, tiny_streaming):
        a = tiny_runner.run(tiny_streaming.name, Scheme.PSSM)
        b = tiny_runner.run(tiny_streaming.name, Scheme.PSSM)
        # Cached, but served as defensive copies: equal values,
        # distinct objects.
        assert a is not b
        assert a.cycles == b.cycles
        assert a.traffic.total_bytes == b.traffic.total_bytes
        assert a.latency.average == b.latency.average

    def test_overrides_bypass_cache(self, tiny_runner, tiny_streaming):
        a = tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        b = tiny_runner.run(tiny_streaming.name, Scheme.SHM,
                            mac_conflict_policy="update_both")
        assert a is not b

    def test_unprotected_matches_baseline(self, tiny_runner, tiny_streaming):
        run = tiny_runner.run(tiny_streaming.name, Scheme.UNPROTECTED)
        base = tiny_runner.baseline(tiny_streaming.name)
        assert run is not base
        assert run.cycles == base.cycles
        assert run.traffic.total_bytes == base.traffic.total_bytes

    def test_mutation_does_not_corrupt_cache(self, tiny_runner,
                                             tiny_streaming):
        a = tiny_runner.run(tiny_streaming.name, Scheme.PSSM)
        original_cycles = a.cycles
        original_data = a.traffic.data_bytes
        a.cycles = -1.0
        a.traffic.data_bytes = 0
        b = tiny_runner.run(tiny_streaming.name, Scheme.PSSM)
        assert b.cycles == original_cycles
        assert b.traffic.data_bytes == original_data

    def test_baseline_mutation_does_not_corrupt_cache(self, tiny_runner,
                                                      tiny_streaming):
        base = tiny_runner.baseline(tiny_streaming.name)
        original = base.traffic.data_bytes
        base.traffic.data_bytes = 0
        again = tiny_runner.baseline(tiny_streaming.name)
        assert again.traffic.data_bytes == original


class TestMetrics:
    def test_normalized_ipc_at_most_one(self, tiny_runner, tiny_streaming):
        for scheme in (Scheme.NAIVE, Scheme.PSSM, Scheme.SHM):
            nipc = tiny_runner.normalized_ipc(tiny_streaming.name, scheme)
            assert 0.0 < nipc <= 1.001

    def test_overhead_complements_ipc(self, tiny_runner, tiny_streaming):
        nipc = tiny_runner.normalized_ipc(tiny_streaming.name, Scheme.PSSM)
        over = tiny_runner.overhead(tiny_streaming.name, Scheme.PSSM)
        assert nipc + over == pytest.approx(1.0)


class TestSuiteIntegration:
    def test_suite_workload_builds_on_demand(self, suite_runner):
        w = suite_runner.workload("atax")
        assert w.name == "atax"
        assert w.total_accesses > 0

    def test_unknown_workload_raises(self, suite_runner):
        with pytest.raises(KeyError):
            suite_runner.workload("nonexistent")
