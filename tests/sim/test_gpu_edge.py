"""GPU simulator edge cases and conservation invariants."""

import pytest

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.sim.gpu import GPUSimulator
from repro.workloads import patterns as pat
from repro.workloads.base import WorkloadBuilder

KB = 1024


def run(workload, scheme, **overrides):
    config = SimConfig().with_scheme(scheme, **overrides)
    sim = GPUSimulator(config)
    return sim.run(workload, max_inflight=128), sim


def tiny(name, sources_fn, utilization=0.5, kernels=1):
    b = WorkloadBuilder(name, bandwidth_utilization=utilization, seed=5)
    data = b.alloc("data", 384 * KB)
    out = b.alloc("out", 192 * KB, host_init=False)
    for k in range(kernels):
        b.kernel(f"k{k}", sources_fn(b, data, out))
    return b.build()


class TestWriteOnlyWorkload:
    def test_write_only_stream(self):
        w = tiny("wo", lambda b, d, o: pat.stream_write(o.address, o.size))
        result, _ = run(w, Scheme.SHM)
        assert result.cycles > 0
        # Every written byte reaches DRAM via write backs or the flush.
        assert result.traffic.data_bytes >= 192 * KB


class TestReadOnlyWorkload:
    def test_pure_readonly_stream_has_no_counter_traffic(self):
        w = tiny("ro", lambda b, d, o: pat.stream_read(d.address, d.size))
        result, _ = run(w, Scheme.SHM)
        assert result.traffic.counter_bytes == 0
        assert result.traffic.bmt_bytes == 0
        assert result.shared_counter_reads > 0


class TestConservation:
    def test_dirty_data_always_reaches_dram(self):
        """Conservation: every distinct dirty data byte is written to
        DRAM at least once (evictions and/or the final flush)."""
        w = tiny("cons", lambda b, d, o: pat.interleave(b.rng, [
            pat.stream_read(d.address, d.size),
            pat.stream_write(o.address, o.size),
        ]))
        result, sim = run(w, Scheme.SHM)
        write_bytes = sum(ch.stats.write_bytes for ch in sim.channels)
        assert write_bytes >= 192 * KB  # the whole output buffer

    def test_no_metadata_without_secure_scheme(self):
        w = tiny("unp", lambda b, d, o: pat.stream_read(d.address, d.size))
        result, sim = run(w, Scheme.UNPROTECTED)
        assert result.traffic.metadata_bytes == 0
        assert not sim.mees

    def test_channel_byte_totals_match_counters(self):
        w = tiny("acct", lambda b, d, o: pat.interleave(b.rng, [
            pat.stream_read(d.address, d.size),
            pat.random_write(b.rng, o.address, o.size, 500),
        ]))
        for scheme in (Scheme.NAIVE, Scheme.PSSM, Scheme.SHM,
                       Scheme.SHM_CCTR, Scheme.SHM_VL2,
                       Scheme.SHM_UPPER_BOUND):
            result, sim = run(w, scheme)
            channel_total = sum(ch.stats.total_bytes for ch in sim.channels)
            assert channel_total == result.traffic.total_bytes, scheme


class TestKernelBoundaries:
    def test_unknown_host_event_rejected(self):
        from repro.workloads.base import HostEvent

        w = tiny("bad", lambda b, d, o: pat.stream_read(d.address, d.size))
        w.kernels[0].host_events.append(HostEvent("teleport", 0, 128))
        with pytest.raises(ValueError):
            run(w, Scheme.SHM)

    def test_reset_api_counts_shared_resets(self):
        def sources(b, d, o):
            return pat.stream_read(d.address, d.size)

        b = WorkloadBuilder("reset-e2e", bandwidth_utilization=0.5, seed=5)
        data = b.alloc("data", 384 * KB)
        b.kernel("k0", pat.stream_read(data.address, data.size))
        b.kernel("k1", pat.stream_read(data.address, data.size),
                 readonly_resets=[data])
        w = b.build()
        _, sim = run(w, Scheme.SHM)
        assert sim.mees[0].shared_counter.resets >= 1

    def test_empty_kernel_is_fine(self):
        b = WorkloadBuilder("empty-k", bandwidth_utilization=0.5, seed=5)
        data = b.alloc("data", 192 * KB)
        b.kernel("k0", pat.stream_read(data.address, data.size))
        b.kernel("k1", [])
        w = b.build()
        result, _ = run(w, Scheme.SHM)
        assert result.cycles > 0


class TestSchemeIsolation:
    def test_scheme_runs_do_not_share_state(self):
        w = tiny("iso", lambda b, d, o: pat.stream_read(d.address, d.size))
        first, _ = run(w, Scheme.SHM)
        second, _ = run(w, Scheme.SHM)
        assert first.cycles == second.cycles
        assert first.traffic.total_bytes == second.traffic.total_bytes
