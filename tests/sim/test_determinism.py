"""Bit-level determinism of simulation results.

Two guarantees, both load-bearing for the content-addressed result
store and the golden-output equivalence suite:

* the same (config, workload, scheme) simulated twice — on fresh
  runners — serialises identically;
* a cell executed in a worker process (the campaign pool path) equals
  the same cell executed in-process (the serial path).

The second historically failed for ``shm_vl2``: victim-cache lines are
keyed by tuples containing strings, and built-in ``hash()`` is salted
per process (PYTHONHASHSEED), so set indexing differed between the
parent and pool workers.  ``repro.memory.cache.stable_hash`` fixes
that; these tests keep it fixed.
"""

from __future__ import annotations

import os
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.eval.campaign import JobSpec, _cell_worker, run_cells_serial
from repro.eval.results_io import serialize_run_result
from repro.sim.runner import Runner

SCALE = 0.05

#: shm_vl2 exercises the victim cache (string-keyed lines), shm the
#: detector stack — the two paths where hidden state could leak in.
CASES = [("backprop", Scheme.SHM_VL2), ("atax", Scheme.SHM)]


@pytest.mark.parametrize("workload,scheme", CASES)
def test_fresh_runners_agree(workload, scheme):
    first = serialize_run_result(Runner(scale=SCALE).run(workload, scheme))
    second = serialize_run_result(Runner(scale=SCALE).run(workload, scheme))
    assert first == second


@pytest.mark.parametrize("workload,scheme", CASES)
def test_serial_and_pool_cells_agree(workload, scheme):
    job = JobSpec(experiment="determinism", workload=workload,
                  scheme=scheme.value, scale=SCALE, config=SimConfig())

    serial = run_cells_serial(Runner(config=job.config, scale=SCALE), [job])
    assert serial[0].ok
    serial_cell = serialize_run_result(serial[0].result)

    with ProcessPoolExecutor(max_workers=1) as pool:
        pooled = pool.submit(_cell_worker, job).result(timeout=300)
    assert pooled["result"] == serial_cell


def test_stable_hash_survives_hash_randomization():
    """``stable_hash`` of a victim-cache-style key must not depend on
    the interpreter's per-process string-hash salt."""
    snippet = ("from repro.memory.cache import stable_hash; "
               "print(stable_hash(('v', ('mac', 123))))")
    outputs = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run([sys.executable, "-c", snippet], env=env,
                             capture_output=True, text=True, check=True)
        outputs.add(out.stdout.strip())
    assert len(outputs) == 1
