"""Bit-level determinism of simulation results.

Two guarantees, both load-bearing for the content-addressed result
store and the golden-output equivalence suite:

* the same (config, workload, scheme) simulated twice — on fresh
  runners — serialises identically;
* a cell executed in a worker process (the campaign pool path) equals
  the same cell executed in-process (the serial path).

The second historically failed for ``shm_vl2``: victim-cache lines are
keyed by tuples containing strings, and built-in ``hash()`` is salted
per process (PYTHONHASHSEED), so set indexing differed between the
parent and pool workers.  ``repro.memory.cache.stable_hash`` fixes
that; these tests keep it fixed.
"""

from __future__ import annotations

import os
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.eval.campaign import JobSpec, _cell_worker, run_cells_serial
from repro.eval.results_io import serialize_run_result
from repro.sim.runner import Runner

SCALE = 0.05

#: shm_vl2 exercises the victim cache (string-keyed lines), shm the
#: detector stack — the two paths where hidden state could leak in.
CASES = [("backprop", Scheme.SHM_VL2), ("atax", Scheme.SHM)]


@pytest.mark.parametrize("workload,scheme", CASES)
def test_fresh_runners_agree(workload, scheme):
    first = serialize_run_result(Runner(scale=SCALE).run(workload, scheme))
    second = serialize_run_result(Runner(scale=SCALE).run(workload, scheme))
    assert first == second


@pytest.mark.parametrize("workload,scheme", CASES)
def test_serial_and_pool_cells_agree(workload, scheme):
    job = JobSpec(experiment="determinism", workload=workload,
                  scheme=scheme.value, scale=SCALE, config=SimConfig())

    serial = run_cells_serial(Runner(config=job.config, scale=SCALE), [job])
    assert serial[0].ok
    serial_cell = serialize_run_result(serial[0].result)

    with ProcessPoolExecutor(max_workers=1) as pool:
        pooled = pool.submit(_cell_worker, job).result(timeout=300)
    assert pooled["result"] == serial_cell


def test_stable_hash_survives_hash_randomization():
    """``stable_hash`` of a victim-cache-style key must not depend on
    the interpreter's per-process string-hash salt."""
    snippet = ("from repro.memory.cache import stable_hash; "
               "print(stable_hash(('v', ('mac', 123))))")
    outputs = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run([sys.executable, "-c", snippet], env=env,
                             capture_output=True, text=True, check=True)
        outputs.add(out.stdout.strip())
    assert len(outputs) == 1


# ---------------------------------------------------------------------------
# Telemetry determinism: the event log's canonical export and the
# store export must be byte-identical across execution modes and hash
# seeds — otherwise telemetry diffs are noise, not signal.
# ---------------------------------------------------------------------------

def _profile_specs():
    from repro.eval.campaign import (ExperimentResult, ExperimentSpec,
                                     JobSpec)

    def jobs(_workloads, config, scale):
        return [JobSpec(experiment="det", workload=name, kind="profile",
                        scheme=Scheme.SHM.value, series="p",
                        scale=scale, config=config)
                for name in ("atax", "mvt")]

    def aggregate(records):
        result = ExperimentResult("det")
        for rec in records:
            result.series.setdefault("p", {})[rec.job.workload] = \
                rec.profile["streaming_ratio"]
        return result

    return {"det": ExperimentSpec(name="det", title="t", provenance="t",
                                  jobs=jobs, aggregate=aggregate)}


class TestTelemetryDeterminism:
    def _campaign(self, tmp_path, tag, **kwargs):
        from repro.eval.campaign import run_campaign
        from repro.obs.events import EventLog
        from repro.obs.store import TelemetryStore

        events = EventLog(tmp_path / f"{tag}.jsonl")
        store = TelemetryStore(tmp_path / f"{tag}.db")
        run_campaign(["det"], scale=SCALE, specs=_profile_specs(),
                     events=events, telemetry=store, **kwargs)
        events.close()
        return events, store

    def test_serial_and_pool_telemetry_export_identically(self, tmp_path):
        from repro.obs.events import read_events, write_canonical

        serial_events, serial_store = self._campaign(
            tmp_path, "serial", serial=True)
        pool_events, pool_store = self._campaign(tmp_path, "pool", jobs=2)

        write_canonical(read_events(serial_events.path),
                        tmp_path / "serial.canon")
        write_canonical(read_events(pool_events.path),
                        tmp_path / "pool.canon")
        assert ((tmp_path / "serial.canon").read_bytes()
                == (tmp_path / "pool.canon").read_bytes())
        assert serial_store.export_text() == pool_store.export_text()

    def test_canonical_event_export_survives_hash_randomization(
            self, tmp_path):
        """The same pool campaign under different PYTHONHASHSEEDs
        canonicalises to the same bytes."""
        snippet = (
            "import sys, tempfile, os\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from tests.sim.test_determinism import _profile_specs, SCALE\n"
            "from repro.eval.campaign import run_campaign\n"
            "from repro.obs.events import (EventLog, canonical_events,\n"
            "                              encode_event, read_events)\n"
            "with tempfile.TemporaryDirectory() as td:\n"
            "    log = EventLog(os.path.join(td, 'e.jsonl'))\n"
            "    run_campaign(['det'], scale=SCALE, jobs=2,\n"
            "                 specs=_profile_specs(), events=log)\n"
            "    log.close()\n"
            "    for row in canonical_events(read_events(log.path)):\n"
            "        sys.stdout.write(encode_event(row) + '\\n')\n"
        )
        repo_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        outputs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH=os.pathsep.join(sys.path))
            out = subprocess.run(
                [sys.executable, "-c", snippet, repo_root], env=env,
                capture_output=True, text=True, check=True, timeout=300)
            outputs.add(out.stdout)
        assert len(outputs) == 1
        assert "cell_completed" in next(iter(outputs))


# ---------------------------------------------------------------------------
# Decision-ledger determinism: the canonical JSONL export must be
# byte-identical across execution cores, across the serial and pool
# campaign paths, and across hash seeds — it is the provenance record
# campaign cells carry into the telemetry store.
# ---------------------------------------------------------------------------

class TestDecisionLedgerDeterminism:
    def test_export_identical_across_cores(self, tmp_path):
        from dataclasses import replace

        from repro.obs.decisions import DecisionLedger

        exports = []
        for core in ("event", "legacy"):
            ledger = DecisionLedger()
            runner = Runner(config=replace(SimConfig(), core=core),
                            scale=SCALE, ledger=ledger)
            for workload, scheme in CASES:
                runner.run(workload, scheme)
            path = tmp_path / f"{core}.jsonl"
            ledger.write_jsonl(path)
            exports.append(path.read_bytes())
        assert exports[0] == exports[1]

    def test_serial_and_pool_cell_decisions_agree(self):
        from dataclasses import replace as dc_replace

        job = dc_replace(
            JobSpec(experiment="determinism", workload="atax",
                    scheme=Scheme.SHM.value, scale=SCALE,
                    config=SimConfig()),
            collect_decisions=True)

        serial = run_cells_serial(Runner(config=job.config, scale=SCALE),
                                  [job])
        assert serial[0].ok
        summary = serial[0].decisions
        assert summary and summary["total"] > 0

        with ProcessPoolExecutor(max_workers=1) as pool:
            pooled = pool.submit(_cell_worker, job).result(timeout=300)
        assert pooled["decisions"] == summary

    def test_ledger_export_survives_hash_randomization(self):
        """The same instrumented run under different PYTHONHASHSEEDs
        exports byte-identical decision rows."""
        snippet = (
            "import sys\n"
            "from repro.obs.decisions import DecisionLedger\n"
            "from repro.sim.runner import Runner\n"
            "ledger = DecisionLedger()\n"
            "runner = Runner(scale=0.05, ledger=ledger)\n"
            "runner.run('atax', 'shm')\n"
            "sys.stdout.write(ledger.export_text())\n"
        )
        outputs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH=os.pathsep.join(sys.path))
            out = subprocess.run([sys.executable, "-c", snippet], env=env,
                                 capture_output=True, text=True,
                                 check=True, timeout=300)
            outputs.add(out.stdout)
        assert len(outputs) == 1
        assert "stream_verdict" in next(iter(outputs))


# ---------------------------------------------------------------------------
# Learned-policy determinism: the learned schemes train on plain
# floats and draw exploration from crc32 — no ``random`` state, no
# ``hash()`` — so their runs (and provenance exports) must be
# byte-identical across execution cores, the serial and pool campaign
# paths, and hash seeds.  backprop concentrates traffic on few enough
# regions that the bandit's epochs actually close at this scale.
# ---------------------------------------------------------------------------

LEARNED_CASES = [("backprop", "pssm_learned"), ("backprop", "shm_bandit")]


class TestLearnedPolicyDeterminism:
    @pytest.mark.parametrize("workload,scheme", LEARNED_CASES)
    def test_export_identical_across_cores(self, workload, scheme,
                                           tmp_path):
        from dataclasses import replace

        from repro.obs.decisions import DecisionLedger

        exports = []
        for core in ("event", "legacy"):
            ledger = DecisionLedger()
            runner = Runner(config=replace(SimConfig(), core=core),
                            scale=SCALE, ledger=ledger)
            result = serialize_run_result(runner.run(workload, scheme))
            path = tmp_path / f"{core}.jsonl"
            ledger.write_jsonl(path)
            exports.append((result, path.read_bytes()))
        assert exports[0] == exports[1]

    @pytest.mark.parametrize("workload,scheme", LEARNED_CASES)
    def test_serial_and_pool_cells_agree(self, workload, scheme):
        from dataclasses import replace as dc_replace

        job = dc_replace(
            JobSpec(experiment="determinism", workload=workload,
                    scheme=scheme, scale=SCALE, config=SimConfig()),
            collect_decisions=True)

        serial = run_cells_serial(Runner(config=job.config, scale=SCALE),
                                  [job])
        assert serial[0].ok
        assert serial[0].decisions and serial[0].decisions["total"] > 0

        # The worker imports repro.core.policies afresh: the learned
        # registrations must be there without any campaign-side setup.
        with ProcessPoolExecutor(max_workers=1) as pool:
            pooled = pool.submit(_cell_worker, job).result(timeout=300)
        assert pooled["result"] == serialize_run_result(serial[0].result)
        assert pooled["decisions"] == serial[0].decisions

    def test_learned_export_survives_hash_randomization(self):
        """One learned run of each family under different
        PYTHONHASHSEEDs exports byte-identical decision rows."""
        snippet = (
            "import sys\n"
            "from repro.obs.decisions import DecisionLedger\n"
            "from repro.sim.runner import Runner\n"
            "ledger = DecisionLedger()\n"
            "runner = Runner(scale=0.05, ledger=ledger)\n"
            "runner.run('backprop', 'pssm_learned')\n"
            "runner.run('backprop', 'shm_bandit')\n"
            "sys.stdout.write(ledger.export_text())\n"
        )
        outputs = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH=os.pathsep.join(sys.path))
            out = subprocess.run([sys.executable, "-c", snippet], env=env,
                                 capture_output=True, text=True,
                                 check=True, timeout=300)
            outputs.add(out.stdout)
        assert len(outputs) == 1
        export = next(iter(outputs))
        assert "learned_verdict" in export
        assert "arm_select" in export
