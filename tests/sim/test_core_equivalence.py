"""Bit-identity of the event core and the legacy per-access loop.

``SimConfig.core`` selects between the batched, idle-cycle-skipping
event core and the historical per-access run loop.  The two must be
*indistinguishable* in results — every serialised field byte-equal —
across the scheme zoo and across workload shapes the batch boundary
cares about: multi-kernel suites, composed suites whose
``barrier: false`` phases merge into one kernel batch, and kernels
with zero accesses (an empty batch must advance kernel bookkeeping
without issuing anything).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import SimConfig
from repro.eval.results_io import serialize_run_result
from repro.sim.runner import Runner
from repro.workloads.base import Workload, WorkloadBuilder
from repro.workloads.compose import Composer, step
from repro.workloads.patterns import random_read, stream_read, stream_write

SCALE = 0.05

SCHEMES = ["naive", "pssm", "shm", "shm_cctr", "shm_vl2"]


def _run(core: str, workload, scheme: str):
    """One serialised run on the requested core; ``workload`` is a
    suite name or a custom :class:`Workload`."""
    runner = Runner(config=replace(SimConfig(), core=core), scale=SCALE)
    if isinstance(workload, Workload):
        runner.add_workload(workload)
        name = workload.name
    else:
        name = workload
    return serialize_run_result(runner.run(name, scheme))


def _composed_suite() -> Workload:
    """Two tenants with a mid-kernel phase marker: the second phase
    rides in the first kernel batch (``barrier=False``), the third is
    a real kernel boundary."""
    return (
        Composer("eq_composed", bandwidth_utilization=0.5, seed=11)
        .buffer("a", "256KB")
        .buffer("b", "128KB")
        .phase("warm", step("sequential", "a"))
        .phase("spill", step("random", "b", count=400), barrier=False)
        .phase("rescan", step("sequential", "a"),
               step("stride", "b", stride=256), compose="concat")
        .build(scale=1.0)
    )


def _zero_access_workload() -> Workload:
    """Real kernels sandwiching an empty one (and an empty tail)."""
    builder = WorkloadBuilder("eq_zero", bandwidth_utilization=0.5, seed=3)
    buf = builder.alloc("data", 128 * 1024)
    builder.kernel("produce", stream_write(buf.address, buf.size))
    builder.kernel("sync_only", [])
    builder.kernel("consume",
                   stream_read(buf.address, buf.size)
                   + random_read(builder.rng, buf.address, buf.size, 200))
    builder.kernel("tail_empty", [])
    return builder.build()


@pytest.mark.parametrize("scheme", SCHEMES)
def test_cores_agree_on_a_suite_workload(scheme):
    assert _run("event", "atax", scheme) == _run("legacy", "atax", scheme)


@pytest.mark.parametrize("scheme", ["naive", "shm"])
def test_cores_agree_on_a_composed_barrier_false_suite(scheme):
    workload = _composed_suite()
    assert (_run("event", workload, scheme)
            == _run("legacy", workload, scheme))


@pytest.mark.parametrize("scheme", ["pssm", "shm"])
def test_cores_agree_on_zero_access_kernels(scheme):
    workload = _zero_access_workload()
    assert (_run("event", workload, scheme)
            == _run("legacy", workload, scheme))


def test_zero_access_kernels_run_to_completion():
    # An empty batch must neither crash nor contribute cycles beyond
    # its kernel-boundary bookkeeping.
    runner = Runner(config=replace(SimConfig(), core="event"), scale=SCALE)
    workload = _zero_access_workload()
    runner.add_workload(workload)
    result = runner.run(workload.name, "shm")
    assert result.cycles > 0
    assert result.traffic.data_bytes > 0


def test_unknown_core_is_rejected():
    runner = Runner(config=replace(SimConfig(), core="warp-drive"),
                    scale=SCALE)
    with pytest.raises(ValueError, match="warp-drive"):
        runner.run("atax", "shm")


class TestInstrumentationCoreSelection:
    """The fallback contract for instrumented runs.

    A per-access :class:`Observer` needs every access event, so it
    must force the legacy per-access loop even when the config asks
    for the event core.  A :class:`DecisionLedger` taps at decision
    granularity inside the MEE and must *not* force the fallback —
    decision provenance rides the fused fast path.
    """

    @staticmethod
    def _spy_on_run_batch(monkeypatch):
        """Record calls into the event core's batch entry point."""
        from repro.sim import pipeline as pipeline_mod

        calls = []
        original = pipeline_mod.MemoryPipeline.run_batch

        def spy(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(pipeline_mod.MemoryPipeline, "run_batch", spy)
        return calls

    def test_observer_forces_legacy_fallback(self, monkeypatch):
        from repro.obs.observer import Observer

        runner = Runner(config=replace(SimConfig(), core="event"),
                        scale=SCALE, observer=Observer(timeseries=False))
        # Calibration runs are unobserved and legitimately use the
        # event core; resolve them before arming the spy.
        runner.calibration("atax")
        calls = self._spy_on_run_batch(monkeypatch)
        runner.run("atax", "shm")
        assert not calls

    def test_decision_ledger_keeps_the_event_core(self, monkeypatch):
        from repro.obs.decisions import DecisionLedger

        runner = Runner(config=replace(SimConfig(), core="event"),
                        scale=SCALE)
        runner.calibration("atax")
        # Attached after construction: the ledger is a plain settable
        # attribute, read per run().
        ledger = DecisionLedger()
        runner.ledger = ledger
        calls = self._spy_on_run_batch(monkeypatch)
        runner.run("atax", "shm")
        assert calls
        assert ledger.rows  # and the fused path actually recorded

    def test_ledger_export_identical_across_cores(self):
        from repro.obs.decisions import DecisionLedger

        exports = []
        for core in ("event", "legacy"):
            ledger = DecisionLedger()
            runner = Runner(config=replace(SimConfig(), core=core),
                            scale=SCALE, ledger=ledger)
            runner.run("atax", "shm")
            exports.append(ledger.export_text())
        assert exports[0] == exports[1]
        assert exports[0].count("\n") > 1  # not vacuously empty
