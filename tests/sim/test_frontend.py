"""SM frontend: bounded-window issue."""

import pytest

from repro.sim.frontend import Frontend


class TestIssue:
    def test_issues_at_gap_rate_when_window_free(self):
        f = Frontend(max_inflight=4, gap=10)
        assert f.issue() == 0
        assert f.issue() == 10
        assert f.issue() == 20

    def test_window_full_stalls_on_earliest_completion(self):
        f = Frontend(max_inflight=2, gap=0.001)
        f.issue(); f.complete(100)
        f.issue(); f.complete(200)
        issue = f.issue()  # window full: waits for the first completion
        assert issue == pytest.approx(100, abs=1)
        assert f.stall_cycles > 0

    def test_no_stall_when_completion_already_past(self):
        f = Frontend(max_inflight=1, gap=50)
        f.issue(); f.complete(10)
        assert f.issue() == 50  # ready time dominates

    def test_issue_times_monotonic(self):
        f = Frontend(max_inflight=3, gap=1)
        last = -1.0
        for i in range(50):
            t = f.issue()
            assert t >= last
            last = t
            f.complete(t + (i % 7) * 30)

    def test_drain(self):
        f = Frontend(max_inflight=8, gap=1)
        f.issue(); f.complete(500)
        f.issue(); f.complete(300)
        assert f.drain() == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            Frontend(0, 1)
        with pytest.raises(ValueError):
            Frontend(4, 0)


class TestLittlesLaw:
    def test_throughput_bounded_by_window_over_latency(self):
        """With constant latency L and window W, issue rate approaches
        W/L accesses per cycle - the latency-bound regime."""
        latency = 100.0
        f = Frontend(max_inflight=10, gap=0.001)
        t = 0.0
        for _ in range(1000):
            t = f.issue()
            f.complete(t + latency)
        rate = 1000 / t
        assert rate == pytest.approx(10 / latency, rel=0.05)
