"""Parallel matrix runner and the fault-tolerant job engine."""

import os
import time

import pytest

from repro.common.types import Scheme
from repro.sim.parallel import MatrixResult, execute_jobs, run_matrix


# Worker functions must live at module level so the pool can pickle them.

def _square(x):
    return x * x


def _always_raise(x):
    raise ValueError(f"bad payload {x!r}")


def _sleep_then_return(seconds):
    time.sleep(seconds)
    return seconds


def _fail_once_marker(path):
    """Fails on the first attempt (no marker yet), succeeds after."""
    if os.path.exists(path):
        return "recovered"
    with open(path, "w"):
        pass
    raise RuntimeError("transient failure")


def _die_if_poison(payload):
    if payload == "poison":
        time.sleep(0.2)  # let healthy pool-mates finish their cells first
        os._exit(13)
    return payload


class TestExecuteJobs:
    def test_in_process_ok(self):
        outcomes = execute_jobs(_square, [1, 2, 3], jobs=1)
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_pool_preserves_payload_order(self):
        outcomes = execute_jobs(_square, list(range(8)), jobs=2)
        assert [o.value for o in outcomes] == [i * i for i in range(8)]

    def test_exception_captured_not_raised(self):
        outcomes = execute_jobs(_always_raise, ["x"], jobs=1, retries=0)
        (outcome,) = outcomes
        assert not outcome.ok
        assert outcome.reason == "exception"
        assert "bad payload 'x'" in outcome.error

    def test_retry_exhaustion_counts_attempts(self):
        (outcome,) = execute_jobs(_always_raise, ["x"], jobs=1,
                                  retries=2, backoff=0.0)
        assert outcome.status == "failed"
        assert outcome.attempts == 3  # 1 initial + 2 retries

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        (outcome,) = execute_jobs(_fail_once_marker, [marker], jobs=2,
                                  retries=1, backoff=0.0)
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_timeout_enforced(self):
        (outcome,) = execute_jobs(_sleep_then_return, [5.0], jobs=1,
                                  timeout=0.2, retries=0)
        assert outcome.status == "failed"
        assert outcome.reason == "timeout"

    def test_killed_worker_fails_without_poisoning_pool_mates(self):
        outcomes = execute_jobs(_die_if_poison, ["a", "poison", "b"],
                                jobs=2, retries=1, backoff=0.0)
        assert outcomes[0].ok and outcomes[0].value == "a"
        assert outcomes[2].ok and outcomes[2].value == "b"
        poison = outcomes[1]
        assert poison.status == "failed"
        assert poison.reason == "worker_died"

    def test_on_outcome_fires_per_job(self):
        seen = []
        execute_jobs(_square, [1, 2], jobs=1, on_outcome=seen.append)
        assert sorted(o.index for o in seen) == [0, 1]

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            execute_jobs(_square, [1], jobs=0)


class TestAverageOverheadEquality:
    def test_accepts_scheme_value_strings(self, tiny_runner, tiny_streaming):
        """Schemes must match by equality: results that round-tripped
        through the JSON store carry value strings, not enum members."""
        baseline = tiny_runner.baseline(tiny_streaming.name)
        result = tiny_runner.run(tiny_streaming.name, Scheme.SHM)
        matrix = MatrixResult(
            baselines={tiny_streaming.name: baseline},
            runs={(tiny_streaming.name, "shm"): result},
        )
        expected = 1.0 - result.normalized_ipc(baseline)
        assert matrix.average_overhead(Scheme.SHM) == pytest.approx(expected)
        assert matrix.average_overhead("shm") == pytest.approx(expected)
        # A scheme with no runs still averages to zero, not a KeyError.
        assert matrix.average_overhead(Scheme.NAIVE) == 0.0


class TestRunMatrix:
    def test_sequential_matrix(self):
        result = run_matrix(["atax"], [Scheme.PSSM, Scheme.SHM],
                            scale=0.05, jobs=1)
        assert ("atax", Scheme.PSSM) in result.runs
        assert ("atax", Scheme.SHM) in result.runs
        assert 0 < result.normalized_ipc("atax", Scheme.SHM) <= 1.001

    def test_parallel_matches_sequential(self):
        seq = run_matrix(["atax", "mvt"], [Scheme.PSSM], scale=0.05, jobs=1)
        par = run_matrix(["atax", "mvt"], [Scheme.PSSM], scale=0.05, jobs=2)
        for key in seq.runs:
            assert par.runs[key].cycles == seq.runs[key].cycles
            assert (par.runs[key].traffic.total_bytes
                    == seq.runs[key].traffic.total_bytes)

    def test_average_overhead(self):
        result = run_matrix(["atax"], [Scheme.PSSM], scale=0.05, jobs=1)
        over = result.average_overhead(Scheme.PSSM)
        assert 0.0 <= over < 0.5
        assert result.average_overhead(Scheme.NAIVE) == 0.0  # not run

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_matrix(["atax"], [Scheme.PSSM], jobs=0)
