"""Parallel matrix runner."""

import pytest

from repro.common.types import Scheme
from repro.sim.parallel import MatrixResult, run_matrix


class TestRunMatrix:
    def test_sequential_matrix(self):
        result = run_matrix(["atax"], [Scheme.PSSM, Scheme.SHM],
                            scale=0.05, jobs=1)
        assert ("atax", Scheme.PSSM) in result.runs
        assert ("atax", Scheme.SHM) in result.runs
        assert 0 < result.normalized_ipc("atax", Scheme.SHM) <= 1.001

    def test_parallel_matches_sequential(self):
        seq = run_matrix(["atax", "mvt"], [Scheme.PSSM], scale=0.05, jobs=1)
        par = run_matrix(["atax", "mvt"], [Scheme.PSSM], scale=0.05, jobs=2)
        for key in seq.runs:
            assert par.runs[key].cycles == seq.runs[key].cycles
            assert (par.runs[key].traffic.total_bytes
                    == seq.runs[key].traffic.total_bytes)

    def test_average_overhead(self):
        result = run_matrix(["atax"], [Scheme.PSSM], scale=0.05, jobs=1)
        over = result.average_overhead(Scheme.PSSM)
        assert 0.0 <= over < 0.5
        assert result.average_overhead(Scheme.NAIVE) == 0.0  # not run

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            run_matrix(["atax"], [Scheme.PSSM], jobs=0)
