"""Trace profiling: ground truth for the detectors and Fig. 5."""

import pytest

from repro.common.types import Pattern
from repro.sim.profiling import TraceProfile

BLOCK = 128
CHUNK = 4096


def stream_events(chunk_id, kernel=0, is_write=False):
    """32 line-grain events covering every block of one chunk."""
    base = chunk_id * CHUNK
    return [(base + i * BLOCK, is_write, kernel) for i in range(32)]


def random_events(chunk_id, n=32, kernel=0):
    base = chunk_id * CHUNK
    return [(base + (i % 3) * BLOCK, False, kernel) for i in range(n)]


class TestStreamPhases:
    def test_full_coverage_is_stream(self):
        p = TraceProfile().ingest({0: stream_events(0)})
        assert p.stream_truth(0, 0, 0) is Pattern.STREAM
        assert p.streaming_ratio == 1.0

    def test_partial_coverage_is_random(self):
        p = TraceProfile().ingest({0: random_events(0)})
        assert p.stream_truth(0, 0, 10) is Pattern.RANDOM
        assert p.streaming_ratio == 0.0

    def test_phase_change_tracked(self):
        events = random_events(1, 32) + stream_events(1)
        p = TraceProfile().ingest({0: events})
        assert p.stream_truth(0, 1, 5) is Pattern.RANDOM
        assert p.stream_truth(0, 1, 40) is Pattern.STREAM

    def test_incomplete_final_window_flushed(self):
        # Only 10 accesses: window closes at end of trace as RANDOM.
        p = TraceProfile().ingest({0: random_events(0, n=10)})
        assert p.stream_truth(0, 0, 5) is Pattern.RANDOM

    def test_unknown_chunk_returns_none(self):
        p = TraceProfile().ingest({0: stream_events(0)})
        assert p.stream_truth(0, 999, 0) is None

    def test_first_phase_patterns(self):
        events = stream_events(0) + random_events(1)
        p = TraceProfile().ingest({0: events})
        first = p.first_phase_patterns(0)
        assert first[0] is Pattern.STREAM
        assert first[1] is Pattern.RANDOM


class TestEdgeCases:
    def test_empty_stream_for_partition(self):
        # A partition key with no events must not crash profiling.
        p = TraceProfile().ingest({0: []})
        assert p.total_accesses == 0
        assert p.streaming_ratio == 0.0
        assert p.readonly_ratio == 0.0
        assert p.stream_truth(0, 0, 0) is None
        assert p.first_phase_patterns(0) == {}
        assert p.readonly_regions(0, 0) == []

    def test_mixed_empty_and_populated_streams(self):
        p = TraceProfile().ingest({0: [], 1: stream_events(0)})
        assert p.stream_truth(0, 0, 0) is None
        assert p.stream_truth(1, 0, 0) is Pattern.STREAM
        assert p.total_accesses == 32

    def test_final_window_below_monitor_size_becomes_phase(self):
        # A full 32-access STREAM window, then 5 trailing accesses to
        # the same chunk: the under-sized remainder is flushed at end
        # of trace as its own (RANDOM) phase.
        events = stream_events(0) + random_events(0, n=5)
        p = TraceProfile().ingest({0: events})
        assert p.stream_truth(0, 0, 10) is Pattern.STREAM
        assert p.stream_truth(0, 0, 33) is Pattern.RANDOM

    def test_seq_before_first_phase_clamps_to_first(self):
        # Chunk 1's first phase starts at seq 32 (after the chunk-5
        # prefix); a query with an earlier seq must clamp to the first
        # phase rather than crash or return None.
        events = random_events(5, 32) + stream_events(1)
        p = TraceProfile().ingest({0: events})
        assert p.stream_truth(0, 1, 0) is Pattern.STREAM
        assert p.stream_truth(0, 1, 40) is Pattern.STREAM


class TestReadOnlyTruth:
    def test_never_written_region_is_read_only(self):
        p = TraceProfile().ingest({0: stream_events(0, kernel=0)})
        assert p.readonly_truth(0, 0, 0)

    def test_written_region_not_read_only(self):
        p = TraceProfile().ingest({0: stream_events(0, kernel=0, is_write=True)})
        assert not p.readonly_truth(0, 0, 0)

    def test_truth_is_per_kernel(self):
        events = (stream_events(0, kernel=0, is_write=True)
                  + stream_events(0, kernel=1, is_write=False))
        p = TraceProfile().ingest({0: events})
        assert not p.readonly_truth(0, 0, 0)
        assert p.readonly_truth(0, 1, 0)  # not written during kernel 1

    def test_readonly_regions_listing(self):
        events = stream_events(0) + stream_events(8, is_write=True)
        p = TraceProfile().ingest({0: events})
        regions = p.readonly_regions(0, 0)
        assert 0 in regions  # chunk 0 -> region 0, read only
        assert 2 not in regions  # chunk 8 -> region 2, written


class TestRatios:
    def test_mixed_ratio(self):
        events = stream_events(0) + random_events(1, 32)
        p = TraceProfile().ingest({0: events})
        assert p.streaming_ratio == pytest.approx(0.5)

    def test_readonly_ratio(self):
        events = stream_events(0) + stream_events(8, is_write=True)
        p = TraceProfile().ingest({0: events})
        assert p.readonly_ratio == pytest.approx(0.5)

    def test_empty_profile(self):
        p = TraceProfile().ingest({})
        assert p.streaming_ratio == 0.0
        assert p.readonly_ratio == 0.0
        assert p.total_accesses == 0

    def test_kernel_count(self):
        events = stream_events(0, kernel=0) + stream_events(1, kernel=3)
        p = TraceProfile().ingest({0: events})
        assert p.kernels == 4
