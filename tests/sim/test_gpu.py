"""GPU simulator integration on tiny workloads."""

import pytest

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.sim.gpu import GPUSimulator


def run(workload, scheme, window=256, **overrides):
    config = SimConfig().with_scheme(scheme, **overrides)
    sim = GPUSimulator(config)
    return sim.run(workload, max_inflight=window)


class TestBasics:
    def test_unprotected_run_completes(self, tiny_streaming):
        result = run(tiny_streaming, Scheme.UNPROTECTED)
        assert result.cycles > 0
        assert result.instructions == tiny_streaming.instructions
        assert result.traffic.data_bytes > 0
        assert result.traffic.metadata_bytes == 0

    def test_secure_run_adds_metadata_traffic(self, tiny_streaming):
        result = run(tiny_streaming, Scheme.PSSM)
        assert result.traffic.metadata_bytes > 0

    def test_secure_never_faster_than_unprotected(self, tiny_streaming):
        base = run(tiny_streaming, Scheme.UNPROTECTED)
        for scheme in (Scheme.NAIVE, Scheme.PSSM, Scheme.SHM):
            secure = run(tiny_streaming, scheme)
            assert secure.cycles >= base.cycles * 0.999

    def test_deterministic(self, tiny_random):
        a = run(tiny_random, Scheme.SHM)
        b = run(tiny_random, Scheme.SHM)
        assert a.cycles == b.cycles
        assert a.traffic.total_bytes == b.traffic.total_bytes

    def test_data_traffic_identical_across_schemes(self, tiny_streaming):
        """Schemes change metadata, never demand data."""
        base = run(tiny_streaming, Scheme.UNPROTECTED)
        pssm = run(tiny_streaming, Scheme.PSSM)
        assert pssm.traffic.data_bytes == base.traffic.data_bytes


class TestTrafficAccounting:
    def test_traffic_matches_channel_stats(self, tiny_streaming):
        config = SimConfig().with_scheme(Scheme.SHM)
        sim = GPUSimulator(config)
        result = sim.run(tiny_streaming, max_inflight=256)
        channel_bytes = sum(ch.stats.total_bytes for ch in sim.channels)
        assert channel_bytes == result.traffic.total_bytes

    def test_utilization_in_unit_range(self, tiny_streaming):
        result = run(tiny_streaming, Scheme.UNPROTECTED)
        assert 0.0 < result.dram_utilization <= 1.0


class TestSchemeOrdering:
    def test_naive_worst_on_streaming(self, tiny_streaming):
        naive = run(tiny_streaming, Scheme.NAIVE)
        pssm = run(tiny_streaming, Scheme.PSSM)
        shm = run(tiny_streaming, Scheme.SHM)
        assert naive.traffic.metadata_bytes > pssm.traffic.metadata_bytes
        assert pssm.traffic.metadata_bytes > shm.traffic.metadata_bytes

    def test_readonly_optimization_kills_counter_traffic(self, tiny_streaming):
        pssm = run(tiny_streaming, Scheme.PSSM)
        shm_ro = run(tiny_streaming, Scheme.SHM_READONLY)
        ro_ctr = shm_ro.traffic.counter_bytes + shm_ro.traffic.bmt_bytes
        pssm_ctr = pssm.traffic.counter_bytes + pssm.traffic.bmt_bytes
        assert ro_ctr < pssm_ctr
        assert shm_ro.shared_counter_reads > 0

    def test_dual_mac_reduces_mac_traffic_on_streams(self, tiny_streaming):
        pssm = run(tiny_streaming, Scheme.PSSM)
        shm = run(tiny_streaming, Scheme.SHM)
        assert shm.traffic.mac_bytes < pssm.traffic.mac_bytes


class TestMultiKernel:
    def test_midrun_copy_degrades_readonly(self, tiny_multikernel):
        """Without the reset API a re-copied input loses its read-only
        status; with it the second kernel keeps the optimisation."""
        plain = run(tiny_multikernel, Scheme.SHM_READONLY)

        # Same workload but using the reset API before kernel 1.
        from tests.conftest import build_tiny_multikernel
        w = build_tiny_multikernel()
        copy_event = w.kernels[1].host_events[0]
        copy_event.kind = "readonly_reset"
        with_api = run(w, Scheme.SHM_READONLY)

        assert with_api.shared_counter_reads > plain.shared_counter_reads
        assert with_api.traffic.counter_bytes <= plain.traffic.counter_bytes

    def test_kernel_count_preserved(self, tiny_multikernel):
        result = run(tiny_multikernel, Scheme.SHM)
        assert result.cycles > 0


class TestVictimCacheScheme:
    def test_vl2_runs_and_accounts(self, tiny_random):
        result = run(tiny_random, Scheme.SHM_VL2)
        assert result.cycles > 0
        # Victim insertions only occur if the miss-rate trigger fired;
        # either way the accounting invariants hold.
        assert result.victim_hits <= result.victim_insertions or \
            result.victim_insertions == 0


class TestPredictionStats:
    def test_stats_populated_with_truth(self, tiny_streaming):
        from repro.sim.runner import Runner
        runner = Runner()
        runner.add_workload(tiny_streaming)
        result = runner.run(tiny_streaming.name, Scheme.SHM)
        assert result.readonly_stats.total > 0
        assert result.streaming_stats.total > 0
        assert result.readonly_stats.accuracy > 0.5
        assert result.streaming_stats.accuracy > 0.5
