"""The typed request pipeline (repro.sim.pipeline): lifecycle,
observer hooks and the teardown-flush completion fix."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common import constants
from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.core.mee import DRAMRequest, MEEResult
from repro.sim.gpu import GPUSimulator
from repro.sim.pipeline import (
    L2_HIT_LATENCY,
    TRAFFIC_KIND_COUNTERS,
    MemoryRequest,
    PipelineHooks,
    Stage,
    register_traffic_kind,
)
from tests.conftest import build_tiny_random, build_tiny_streaming


def _sim(scheme=Scheme.SHM, **gpu_overrides) -> GPUSimulator:
    config = SimConfig().with_scheme(scheme)
    if gpu_overrides:
        config = replace(config, gpu=replace(config.gpu, **gpu_overrides))
    return GPUSimulator(config)


# ---------------------------------------------------------------------------
# Request lifecycle
# ---------------------------------------------------------------------------

def test_read_request_walks_lifecycle():
    sim = _sim()
    request = sim.pipeline.access(0.0, 4096, False, 4)
    assert isinstance(request, MemoryRequest)
    assert request.stage is Stage.COMPLETE
    assert request.l2_miss and request.fetch_sectors
    assert request.partition == sim.mapper.to_local(4096).partition
    assert request.completion >= L2_HIT_LATENCY
    # A decrypt-critical counter fetch gates the miss under SHM.
    assert request.ctr_done > 0.0


def test_l2_hit_completes_at_hit_latency():
    sim = _sim()
    sim.pipeline.access(0.0, 4096, False, 4)
    hit = sim.pipeline.access(1000.0, 4096, False, 4)
    assert not hit.l2_miss
    assert hit.completion == 1000.0 + L2_HIT_LATENCY


def test_write_requests_are_posted():
    sim = _sim()
    request = sim.pipeline.access(5.0, 4096, True, 4)
    assert request.stage is Stage.COMPLETE
    assert request.completion == 5.0 + L2_HIT_LATENCY


def test_custom_hooks_see_lifecycle_transitions():
    events = []

    class Recorder(PipelineHooks):
        enabled = True

        def l2_checked(self, request):
            events.append(("l2", request.l2_miss))

        def metadata_request(self, issue, dram_request, done):
            events.append(("meta", dram_request.kind))

        def data_transfer(self, issue, partition, size, is_write):
            events.append(("data", size))

        def completed(self, request):
            events.append(("done", request.stage))

    sim = _sim()
    sim.pipeline.hooks = Recorder()
    sim.pipeline._observe = True
    sim.pipeline.access(0.0, 4096, False, 4)
    kinds = [e[0] for e in events]
    assert kinds.count("l2") == 1 and kinds.count("done") == 1
    assert "meta" in kinds and "data" in kinds
    assert events[-1] == ("done", Stage.COMPLETE)
    assert ("l2", True) in events


# ---------------------------------------------------------------------------
# Traffic-kind dispatch: unknown kinds must fail loudly
# ---------------------------------------------------------------------------

def test_schedule_books_builtin_kinds_to_their_counters():
    sim = _sim()
    result = MEEResult(requests=[
        DRAMRequest(partition=0, size=128, is_write=False, kind="data"),
        DRAMRequest(partition=0, size=8, is_write=False, kind="ctr",
                    critical=True),
        DRAMRequest(partition=0, size=8, is_write=True, kind="mac"),
        DRAMRequest(partition=0, size=64, is_write=False, kind="bmt"),
        DRAMRequest(partition=0, size=32, is_write=False, kind="mispred"),
    ])
    sim.pipeline.schedule(0.0, result)
    traffic = sim.pipeline.traffic
    assert traffic.data_bytes == 128
    assert traffic.counter_bytes == 8
    assert traffic.mac_bytes == 8
    assert traffic.bmt_bytes == 64
    assert traffic.misprediction_bytes == 32


def test_schedule_rejects_unregistered_kind():
    sim = _sim()
    bogus = MEEResult(requests=[
        DRAMRequest(partition=0, size=32, is_write=False, kind="ecc"),
    ])
    # An unknown kind used to be silently booked as demand data,
    # corrupting every overhead ratio built from the breakdown.
    with pytest.raises(ValueError, match="unregistered DRAM request kind"):
        sim.pipeline.schedule(0.0, bogus)


def test_register_traffic_kind_makes_kind_schedulable():
    register_traffic_kind("ecc_test", "mac_bytes")
    try:
        sim = _sim()
        sim.pipeline.schedule(0.0, MEEResult(requests=[
            DRAMRequest(partition=0, size=48, is_write=False,
                        kind="ecc_test"),
        ]))
        assert sim.pipeline.traffic.mac_bytes == 48
    finally:
        del TRAFFIC_KIND_COUNTERS["ecc_test"]


def test_register_traffic_kind_validates_counter_attr():
    with pytest.raises(ValueError, match="unknown TrafficCounters"):
        register_traffic_kind("bogus_kind", "no_such_counter")
    assert "bogus_kind" not in TRAFFIC_KIND_COUNTERS


# ---------------------------------------------------------------------------
# final_flush: teardown write-backs must propagate their completion
# ---------------------------------------------------------------------------

def _dirty_teardown_pipeline(scheme, **gpu_overrides):
    """Leave every partition's L2 full of dirty lines, then flush."""
    sim = _sim(scheme, **gpu_overrides)
    issue = 0.0
    for i in range(512):
        issue = i * 2.0
        sim.pipeline.access(issue, i * constants.BLOCK_SIZE, True,
                            constants.SECTORS_PER_BLOCK)
    return sim, issue


@pytest.mark.parametrize("scheme", [Scheme.UNPROTECTED, Scheme.SHM])
def test_final_flush_returns_last_teardown_completion(scheme):
    sim, last_issue = _dirty_teardown_pipeline(scheme)
    end = last_issue + L2_HIT_LATENCY
    done = sim.pipeline.final_flush(end)
    # The teardown write-backs land on the channels *after* ``end``;
    # their completion must come back to the caller, not be discarded.
    assert done > end
    busy = max(ch.next_free + ch.latency for ch in sim.channels
               if ch.stats.requests)
    assert done == busy


def test_final_flush_is_noop_when_nothing_is_dirty():
    sim = _sim(Scheme.SHM)
    assert sim.pipeline.final_flush(123.0) == 123.0


def test_final_flush_drains_deferred_scheduler_writes():
    sim, last_issue = _dirty_teardown_pipeline(
        Scheme.SHM, dram_scheduler="critical_first")
    sim.pipeline.final_flush(last_issue + L2_HIT_LATENCY)
    for ch in sim.channels:
        assert ch.scheduler.pending_writes == 0


def test_run_cycles_cover_teardown_writebacks():
    """End-to-end: a write-heavy run's cycle count includes the flush."""
    workload = build_tiny_random()
    sim = _sim(Scheme.SHM)
    result = sim.run(workload, max_inflight=256)
    busy_end = max(ch.next_free + ch.latency for ch in sim.channels
                   if ch.stats.requests)
    assert result.cycles >= busy_end


def test_streams_recorded_through_pipeline():
    workload = build_tiny_streaming()
    config = SimConfig().with_scheme(Scheme.UNPROTECTED)
    sim = GPUSimulator(config, record_stream=True)
    sim.run(workload, max_inflight=256)
    assert sum(len(s) for s in sim.streams.values()) > 0
