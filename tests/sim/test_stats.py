"""Run statistics: geomean robustness, latency percentiles."""

import math

import pytest

from repro.sim.stats import LatencyStats, geomean, mean


class TestGeomean:
    def test_simple(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_identity(self):
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_nonpositive_values_dropped(self):
        assert geomean([0.0, -3.0, 4.0, 9.0]) == pytest.approx(6.0)

    def test_no_overflow_on_long_large_lists(self):
        # A raw product of 10k values around 1e300 overflows to inf;
        # the log-sum formulation must not.
        values = [1e300] * 10_000
        result = geomean(values)
        assert math.isfinite(result)
        assert result == pytest.approx(1e300, rel=1e-6)

    def test_no_underflow_on_long_small_lists(self):
        values = [1e-300] * 10_000
        result = geomean(values)
        assert result > 0.0
        assert result == pytest.approx(1e-300, rel=1e-6)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0


class TestLatencyPercentiles:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.average == 0.0
        assert stats.p50 == 0.0
        assert stats.p95 == 0.0

    def test_record_feeds_histogram(self):
        stats = LatencyStats()
        for lat in (100.0, 200.0, 400.0):
            stats.record(lat)
        assert stats.count == 3
        assert stats.histogram.count == 3
        assert stats.max_cycles == 400.0
        assert stats.average == pytest.approx(700.0 / 3)

    def test_percentiles_bracket_the_data(self):
        stats = LatencyStats()
        for i in range(1, 1001):
            stats.record(float(i))
        # Within one log bucket (~19 %) of the true order statistic.
        assert stats.p50 == pytest.approx(500.0, rel=0.2)
        assert stats.p95 == pytest.approx(950.0, rel=0.2)
        assert stats.p99 == pytest.approx(990.0, rel=0.2)
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max_cycles

    def test_single_sample_is_exact(self):
        stats = LatencyStats()
        stats.record(123.0)
        assert stats.p50 == 123.0
        assert stats.p99 == 123.0
