"""The event queue of the batched core (:mod:`repro.sim.events`).

:class:`CompletionWindow` is the only sequential state the event core
carries between accesses, so its arithmetic *is* the idle-cycle
skipping contract: these tests pin the window/issue/stall semantics —
including the ``freed == ready`` horizon edge where a completion lands
exactly on an access's program-order slot — and the bit-level identity
with the legacy :class:`repro.sim.frontend.Frontend`.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.sim.events import CompletionWindow
from repro.sim.frontend import Frontend, iter_batches


class _ReferenceWindow:
    """Straight-line reference model of the issue-window semantics
    (no shared code with :class:`CompletionWindow`)."""

    def __init__(self, max_inflight: int, gap: float) -> None:
        self.max_inflight = max_inflight
        self.gap = gap
        self.inflight: list = []
        self.seq = 0
        self.stall_cycles = 0.0
        self.last_issue = 0.0
        self.last_completion = 0.0

    def issue(self) -> float:
        ready = self.seq * self.gap
        self.seq += 1
        if len(self.inflight) < self.max_inflight:
            self.last_issue = ready
            return ready
        freed = heapq.heappop(self.inflight)
        if freed > ready:
            self.stall_cycles += freed - ready
            ready = freed
        self.last_issue = ready
        return ready

    def complete(self, completion: float) -> None:
        heapq.heappush(self.inflight, completion)
        self.last_completion = max(self.last_completion, completion)

    def drain(self) -> float:
        return max(self.last_completion, self.last_issue)


def _drive(window, latencies):
    """Issue one access per latency; returns (issue times, drain)."""
    issues = []
    for latency in latencies:
        at = window.issue()
        issues.append(at)
        window.complete(at + latency)
    return issues, window.drain()


def test_unconstrained_issue_follows_the_compute_rate():
    window = CompletionWindow(max_inflight=8, gap=2.0)
    issues, _ = _drive(window, [100.0] * 8)
    assert issues == [i * 2.0 for i in range(8)]
    assert window.stall_cycles == 0.0


def test_full_window_jumps_to_the_earliest_completion():
    # Window of 1, latency 10: access i+1 cannot issue before access
    # i completes, so the clock jumps 10 cycles per access and the
    # skipped idle cycles accumulate as stall.
    window = CompletionWindow(max_inflight=1, gap=1.0)
    issues, drain = _drive(window, [10.0] * 4)
    assert issues == [0.0, 10.0, 20.0, 30.0]
    assert drain == 40.0
    # Stalls: access i ready at i*gap, issued at i*10.
    assert window.stall_cycles == sum(i * 10.0 - i * 1.0 for i in range(4))


def test_completion_exactly_at_the_ready_slot_is_zero_stall():
    # The horizon edge: with gap 10 and latency 10, access 1's slot
    # (cycle 10) coincides exactly with access 0's completion event.
    # ``freed == ready`` must free the window slot just in time —
    # no stall, and the issue time is the program-order slot.
    window = CompletionWindow(max_inflight=1, gap=10.0)
    window.complete(window.issue() + 10.0)
    second = window.issue()
    assert second == 10.0
    assert window.stall_cycles == 0.0
    assert window.last_stall == 0.0


def test_drain_covers_late_issue_without_completion():
    # An access can issue after every completion already landed; the
    # drain horizon must then be the issue time, not the stale
    # completion maximum.
    window = CompletionWindow(max_inflight=4, gap=5.0)
    at = window.issue()
    window.complete(at + 1.0)
    window.issue()  # issues at cycle 5, never completes
    assert window.drain() == 5.0


def test_zero_access_stream_drains_at_cycle_zero():
    window = CompletionWindow(max_inflight=4, gap=1.0)
    assert window.drain() == 0.0


@pytest.mark.parametrize("bad", [0, -3])
def test_window_size_must_be_positive(bad):
    with pytest.raises(ValueError):
        CompletionWindow(max_inflight=bad, gap=1.0)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_gap_must_be_positive(bad):
    with pytest.raises(ValueError):
        CompletionWindow(max_inflight=4, gap=bad)


@pytest.mark.parametrize("max_inflight,gap", [(1, 1.0), (3, 0.5), (16, 2.5)])
def test_window_matches_the_reference_model(max_inflight, gap):
    rng = random.Random(max_inflight * 31 + int(gap * 8))
    window = CompletionWindow(max_inflight, gap)
    reference = _ReferenceWindow(max_inflight, gap)
    for _ in range(500):
        got = window.issue()
        want = reference.issue()
        assert got == want
        latency = rng.choice([0.0, 0.5, 1.0, 7.0, 40.0])
        window.complete(got + latency)
        reference.complete(want + latency)
    assert window.drain() == reference.drain()
    assert window.stall_cycles == reference.stall_cycles


def test_frontend_is_the_event_queue_bit_for_bit():
    # The legacy frontend must be the *same machine*: same state slots
    # after identical stimulus, not merely similar behaviour.
    rng = random.Random(7)
    front = Frontend(max_inflight=4, gap=1.5)
    window = CompletionWindow(max_inflight=4, gap=1.5)
    for _ in range(300):
        assert front.issue() == window.issue()
        latency = rng.uniform(0.0, 25.0)
        front.complete(front.last_issue + latency)
        window.complete(window.last_issue + latency)
    assert front.inflight == window.inflight
    assert front.stall_cycles == window.stall_cycles
    assert front.drain() == window.drain()


def test_iter_batches_yields_kernels_in_program_order():
    from repro.workloads.base import Kernel, Workload

    kernels = [Kernel("k0", [(0, False, 4)]),
               Kernel("empty", []),
               Kernel("k2", [(128, True, 4)])]
    workload = Workload(name="b", kernels=kernels, buffers=[],
                        bandwidth_utilization=0.5)
    batches = list(iter_batches(workload))
    assert [idx for idx, _ in batches] == [0, 1, 2]
    assert [k.name for _, k in batches] == ["k0", "empty", "k2"]
    # A zero-access kernel is a legal (empty) batch, not a skip.
    assert batches[1][1].accesses == []
