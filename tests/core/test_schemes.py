"""Scheme catalogue (Table VIII)."""

from repro.common.types import Scheme
from repro.core.schemes import (
    FIG12_SCHEMES,
    FIG13_SCHEMES,
    FIG14_SCHEMES,
    SCHEME_DESCRIPTIONS,
    all_schemes,
    describe,
)


class TestCatalogue:
    def test_every_scheme_described(self):
        assert set(SCHEME_DESCRIPTIONS) == set(Scheme)

    def test_all_schemes_builds_configs(self):
        configs = all_schemes()
        assert len(configs) == len(Scheme)
        assert {c.scheme for c in configs} == set(Scheme)

    def test_describe(self):
        assert "PSSM" in describe(Scheme.PSSM)

    def test_fig12_lineup(self):
        assert FIG12_SCHEMES == [
            Scheme.NAIVE, Scheme.COMMON_CTR, Scheme.PSSM,
            Scheme.SHM, Scheme.SHM_UPPER_BOUND,
        ]

    def test_fig13_lineup(self):
        assert Scheme.SHM_READONLY in FIG13_SCHEMES
        assert Scheme.SHM_CCTR in FIG13_SCHEMES

    def test_fig14_lineup(self):
        assert Scheme.NAIVE in FIG14_SCHEMES
        assert Scheme.SHM in FIG14_SCHEMES
