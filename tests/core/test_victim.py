"""L2 victim-cache controller: miss-rate-triggered enable."""

import pytest

from repro.common.config import GPUConfig
from repro.core.victim import VictimController
from repro.memory.l2 import PartitionL2, SAMPLE_STRIDE


def sampled_keys(bank, n, want_hit=False):
    keys = []
    k = 0
    while len(keys) < n:
        if bank.cache.set_index(k) % SAMPLE_STRIDE == 0:
            keys.append(k)
        k += 1
    return keys


def drive_misses(l2, n):
    bank = l2.banks[0]
    for key in sampled_keys(bank, n):
        bank.access_data(key, 0, False, now=0)


def drive_hits(l2, n):
    bank = l2.banks[0]
    key = sampled_keys(bank, 1)[0]
    bank.access_data(key, 0, False, now=0)
    for _ in range(n):
        bank.access_data(key, 0, False, now=0)


class TestEnable:
    def test_disabled_before_min_samples(self):
        l2 = PartitionL2(GPUConfig(), 0)
        vc = VictimController(l2)
        drive_misses(l2, 10)
        assert not vc.enabled()

    def test_enabled_on_high_miss_rate(self):
        l2 = PartitionL2(GPUConfig(), 0)
        vc = VictimController(l2, threshold=0.90)
        drive_misses(l2, 100)  # 100% sampled miss rate
        assert vc.enabled()
        assert vc.enable_events == 1

    def test_stays_disabled_on_low_miss_rate(self):
        l2 = PartitionL2(GPUConfig(), 0)
        vc = VictimController(l2, threshold=0.90)
        drive_hits(l2, 200)
        assert not vc.enabled()

    def test_kernel_boundary_resets(self):
        l2 = PartitionL2(GPUConfig(), 0)
        vc = VictimController(l2)
        drive_misses(l2, 100)
        assert vc.enabled()
        vc.on_kernel_boundary()
        assert not vc.enabled()
        assert l2.sampled_accesses == 0

    def test_threshold_validation(self):
        l2 = PartitionL2(GPUConfig(), 0)
        with pytest.raises(ValueError):
            VictimController(l2, threshold=0.0)
        with pytest.raises(ValueError):
            VictimController(l2, threshold=1.5)
