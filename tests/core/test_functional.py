"""Functional secure memory: real confidentiality/integrity/freshness.

These tests exercise the actual attacks the paper's mechanisms defend
against, end to end with real cryptography.
"""

import pytest

from repro.common import constants
from repro.common.types import ReplayAttackError, TamperError
from repro.core.functional import SecureMemoryDevice
from repro.crypto.keys import KeyGenerator

BLOCK = constants.BLOCK_SIZE


@pytest.fixture
def device():
    keys = KeyGenerator().context_keys(0)
    return SecureMemoryDevice(keys, size_bytes=4 * 1024 * 1024)


class TestBasicOperation:
    def test_host_copy_roundtrip(self, device):
        device.host_copy(0, b"\x42" * BLOCK, read_only=True)
        assert device.read(0) == b"\x42" * BLOCK

    def test_write_then_read(self, device):
        device.host_copy(0, bytes(BLOCK), read_only=False)
        device.write(0, b"\x07" * BLOCK)
        assert device.read(0) == b"\x07" * BLOCK

    def test_unknown_address(self, device):
        with pytest.raises(KeyError):
            device.read(1024 * BLOCK)

    def test_alignment_enforced(self, device):
        with pytest.raises(ValueError):
            device.read(5)
        with pytest.raises(ValueError):
            device.write(0, b"short")

    def test_out_of_range(self, device):
        with pytest.raises(ValueError):
            device.read(device.size_bytes)


class TestConfidentiality:
    def test_data_at_rest_is_ciphertext(self, device):
        plaintext = b"\xAA" * BLOCK
        device.host_copy(0, plaintext, read_only=True)
        ciphertext, _ = device.raw_block(0)
        assert ciphertext != plaintext

    def test_same_plaintext_different_addresses_different_ciphertext(self, device):
        # Spatial uniqueness of the seed.
        data = b"\x55" * (2 * BLOCK)
        device.host_copy(0, data, read_only=True)
        ct0, _ = device.raw_block(0)
        ct1, _ = device.raw_block(BLOCK)
        assert ct0 != ct1

    def test_rewrite_changes_ciphertext(self, device):
        # Temporal uniqueness: same value re-written encrypts differently.
        device.host_copy(0, bytes(BLOCK), read_only=False)
        device.write(0, b"\x11" * BLOCK)
        ct1, _ = device.raw_block(0)
        device.write(0, b"\x22" * BLOCK)
        device.write(0, b"\x11" * BLOCK)
        ct2, _ = device.raw_block(0)
        assert ct1 != ct2


class TestIntegrity:
    def test_tampered_ciphertext_detected(self, device):
        device.host_copy(0, b"\x01" * BLOCK, read_only=True)
        ct, _ = device.raw_block(0)
        tampered = bytes([ct[0] ^ 0xFF]) + ct[1:]
        device.raw_overwrite(0, tampered)
        with pytest.raises(TamperError):
            device.read(0)
        assert device.detected_attacks == 1

    def test_forged_mac_detected(self, device):
        device.host_copy(0, b"\x01" * BLOCK, read_only=True)
        ct, _ = device.raw_block(0)
        device.raw_overwrite(0, ct, mac=b"\x00" * 8)
        with pytest.raises(TamperError):
            device.read(0)

    def test_block_swap_detected(self, device):
        # Relocating valid ciphertext to another address fails (the
        # address is in the MAC and in the pad seed).
        device.host_copy(0, b"\x01" * (2 * BLOCK), read_only=True)
        ct0, mac0 = device.raw_block(0)
        device.raw_overwrite(BLOCK, ct0, mac=mac0)
        with pytest.raises(TamperError):
            device.read(BLOCK)


class TestFreshness:
    def test_replay_of_data_and_mac_detected(self, device):
        """Replay the full (ciphertext, MAC) pair: the stateful MAC's
        counter has moved on, so verification fails."""
        device.host_copy(0, bytes(BLOCK), read_only=False)
        device.write(0, b"v1" * 64)
        snapshot_ct, snapshot_mac = device.raw_block(0)
        device.write(0, b"v2" * 64)
        device.raw_overwrite(0, snapshot_ct, mac=snapshot_mac)
        with pytest.raises(TamperError):
            device.read(0)

    def test_replay_with_counters_detected_by_bmt(self, device):
        """The strongest attacker: replays data, MAC *and* the counter
        line.  Only the integrity tree (on-chip root) catches this."""
        device.host_copy(0, bytes(BLOCK), read_only=False)
        device.write(0, b"v1" * 64)
        snapshot_ct, snapshot_mac = device.raw_block(0)
        line_key, counter_snapshot = device.raw_counter_snapshot(0)
        device.write(0, b"v2" * 64)
        device.raw_overwrite(0, snapshot_ct, mac=snapshot_mac)
        device.raw_counter_restore(line_key, counter_snapshot)
        with pytest.raises(ReplayAttackError):
            device.read(0)


class TestReadOnlyDesign:
    def test_read_only_region_uses_shared_counter(self, device):
        device.host_copy(0, b"\x09" * BLOCK, read_only=True)
        assert device.is_read_only(0)
        assert device.read(0) == b"\x09" * BLOCK

    def test_transition_preserves_content(self, device):
        """Fig. 8: writing one block of a read-only region re-encrypts
        the region under per-block counters without losing the rest."""
        region = device.region_size
        device.host_copy(0, b"\x03" * region, read_only=True)
        device.write(0, b"\x04" * BLOCK)
        assert not device.is_read_only(0)
        assert device.read(0) == b"\x04" * BLOCK
        assert device.read(BLOCK) == b"\x03" * BLOCK  # untouched block intact

    def test_transitioned_region_gains_freshness(self, device):
        region = device.region_size
        device.host_copy(0, b"\x03" * region, read_only=True)
        device.write(0, b"\x04" * BLOCK)
        device.write(0, b"\x05" * BLOCK)
        snapshot_ct, snapshot_mac = device.raw_block(0)
        device.write(0, b"\x06" * BLOCK)
        device.raw_overwrite(0, snapshot_ct, mac=snapshot_mac)
        with pytest.raises(TamperError):
            device.read(0)


class TestCrossKernelReplay:
    """Section III-B: the attack the shared-counter reset exists for."""

    def test_vulnerable_without_reset_api(self, device):
        # Kernel 1's input at address 0.
        device.host_copy(0, b"K1-input" * 16, read_only=True)
        stale_ct, stale_mac = device.raw_block(0)
        # Host reuses the region for kernel 2 WITHOUT the reset API
        # (shared counter unchanged) - the paper's vulnerable scenario.
        device.host_copy(0, b"K2-input" * 16, read_only=True)
        device.raw_overwrite(0, stale_ct, mac=stale_mac)
        # The replay VERIFIES and returns kernel 1's stale data:
        # freshness is violated.
        assert device.read(0) == b"K1-input" * 16

    def test_protected_with_reset_api(self, device):
        device.host_copy(0, b"K1-input" * 16, read_only=True)
        stale_ct, stale_mac = device.raw_block(0)
        # The reset API raises the shared counter before the reuse.
        old = device.shared_counter
        device.input_read_only_reset(0, device.region_size)
        assert device.shared_counter > old
        device.host_copy(0, b"K2-input" * 16, read_only=True)
        device.raw_overwrite(0, stale_ct, mac=stale_mac)
        with pytest.raises(TamperError):
            device.read(0)

    def test_reset_scans_max_major(self, device):
        # Transition a region so its major counters advance, then reset:
        # the shared counter must clear the scanned maximum (Fig. 9).
        device.host_copy(0, bytes(device.region_size), read_only=True)
        device.write(0, b"x" * BLOCK)
        before = device.shared_counter
        new_value = device.input_read_only_reset(0, device.region_size)
        assert new_value > before

    def test_other_read_only_regions_survive_reset(self, device):
        # The paper's remedy (b): regions encrypted under the old shared
        # value are re-encrypted so they stay readable.
        region = device.region_size
        device.host_copy(0, b"\x0A" * BLOCK, read_only=True)
        device.host_copy(4 * region, b"\x0B" * BLOCK, read_only=True)
        device.input_read_only_reset(4 * region, region)
        assert device.read(0) == b"\x0A" * BLOCK
        assert device.read(4 * region) == b"\x0B" * BLOCK
