"""Read-only region detector (Section IV-B)."""

import pytest

from repro.common.config import DetectorConfig
from repro.core.readonly import ReadOnlyDetector


@pytest.fixture
def det():
    return ReadOnlyDetector(DetectorConfig())


class TestPrediction:
    def test_default_not_read_only(self, det):
        assert not det.predict(0)

    def test_host_copy_marks_read_only(self, det):
        det.mark_read_only([3, 4])
        assert det.predict(3) and det.predict(4)
        assert not det.predict(5)

    def test_store_clears_bit(self, det):
        det.mark_read_only([3])
        transitioned = det.on_store(3)
        assert transitioned
        assert not det.predict(3)
        assert det.transitions == 1

    def test_store_to_not_read_only_is_not_transition(self, det):
        assert not det.on_store(7)
        assert det.transitions == 0

    def test_transitions_are_one_way(self, det):
        # Section IV-B: once not-read-only, a region stays that way
        # (absent the reset API).
        det.mark_read_only([3])
        det.on_store(3)
        assert not det.predict(3)
        # Another store does not re-arm anything.
        det.on_store(3)
        assert not det.predict(3)

    def test_midrun_host_copy_clears(self, det):
        det.mark_read_only([2])
        det.mark_written([2])
        assert not det.predict(2)

    def test_reset_api_rearms(self, det):
        det.mark_read_only([2])
        det.on_store(2)
        det.mark_read_only([2])  # command processor reset path
        assert det.predict(2)


class TestAliasing:
    def test_aliased_regions_share_entry(self, det):
        n = DetectorConfig().readonly_entries
        det.mark_read_only([5])
        # Region 5 + N aliases onto the same bit.
        assert det.predict(5 + n)

    def test_aliased_write_clears_victim_region(self, det):
        n = DetectorConfig().readonly_entries
        det.mark_read_only([5, 5 + n])
        det.on_store(5 + n)
        # The write to the alias also cleared region 5's bit: a lost
        # opportunity, never a security problem.
        assert not det.predict(5)


class TestAttribution:
    def test_correct(self, det):
        det.mark_read_only([1])
        assert det.attribute(1, predicted=True, truth=True) == "correct"
        assert det.attribute(2, predicted=False, truth=False) == "correct"

    def test_init_misprediction(self, det):
        # Region never marked at init but actually read-only.
        assert det.attribute(9, predicted=False, truth=True) == "mp_init"

    def test_aliasing_misprediction(self, det):
        n = DetectorConfig().readonly_entries
        det.mark_read_only([5])
        det.on_store(5 + n)  # alias clears the entry
        assert det.attribute(5, predicted=False, truth=True) == "mp_aliasing"

    def test_self_clear_is_init_not_aliasing(self, det):
        det.mark_read_only([5])
        det.on_store(5)
        assert det.attribute(5, predicted=False, truth=True) == "mp_init"


class TestUnlimited:
    def test_no_aliasing_in_unlimited_mode(self):
        det = ReadOnlyDetector(DetectorConfig(unlimited=True))
        det.mark_read_only([5])
        assert det.predict(5)
        assert not det.predict(5 + 1024)

    def test_unlimited_attribution_never_aliasing(self):
        det = ReadOnlyDetector(DetectorConfig(unlimited=True))
        assert det.attribute(5, predicted=False, truth=True) == "mp_init"


class TestStorage:
    def test_table9_predictor_size(self, det):
        assert det.storage_bits == 1024  # 128 B

    def test_unlimited_has_no_hardware_cost(self):
        assert ReadOnlyDetector(DetectorConfig(unlimited=True)).storage_bits == 0
