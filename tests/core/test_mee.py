"""The MEE's per-scheme metadata traffic (the heart of the model)."""

import pytest

from repro.common.address import AddressMapper
from repro.common.config import SimConfig, scheme_config
from repro.common.types import Pattern, Scheme
from repro.core.mee import MemoryEncryptionEngine
from repro.metadata.counters import SharedCounter
from repro.metadata.layout import CHUNK_MAC_KEY_BASE

KB = 1024


def make_mee(scheme, **overrides):
    config = SimConfig().with_scheme(scheme, **overrides)
    mapper = AddressMapper(config.gpu.num_partitions, config.gpu.interleave_bytes)
    return MemoryEncryptionEngine(0, config, mapper, SharedCounter())


def kinds(requests):
    return sorted({r.kind for r in requests})


class TestUnprotected:
    def test_no_traffic(self):
        mee = make_mee(Scheme.UNPROTECTED)
        res = mee.on_read_miss(0, 0, 0)
        assert not res.requests


class TestPSSM:
    def test_read_miss_fetches_counter_mac_and_bmt_sectors(self):
        mee = make_mee(Scheme.PSSM)
        res = mee.on_read_miss(0, 0, 0)
        # A cold counter miss also verifies its BMT path.
        assert kinds(res.requests) == ["bmt", "ctr", "mac"]
        assert all(r.size == 32 for r in res.requests)  # sectored

    def test_counter_fetch_is_decrypt_critical(self):
        mee = make_mee(Scheme.PSSM)
        res = mee.on_read_miss(0, 0, 0)
        critical = [r for r in res.requests if r.critical]
        assert len(critical) == 1
        assert critical[0].kind == "ctr"

    def test_mac_fetch_not_critical(self):
        mee = make_mee(Scheme.PSSM)
        res = mee.on_read_miss(0, 0, 0)
        assert not any(r.critical for r in res.requests if r.kind == "mac")

    def test_metadata_routed_to_own_partition(self):
        mee = make_mee(Scheme.PSSM)
        res = mee.on_read_miss(0, 0, 0)
        assert all(r.partition == 0 for r in res.requests)

    def test_counter_cache_absorbs_repeat_accesses(self):
        mee = make_mee(Scheme.PSSM)
        mee.on_read_miss(0, 0, 0)
        res = mee.on_read_miss(1, 128, 128)  # same counter sector
        assert "ctr" not in kinds(res.requests)

    def test_write_fetches_counter_rmw(self):
        mee = make_mee(Scheme.PSSM)
        res = mee.on_writeback(0, 0, 0)
        ctr = [r for r in res.requests if r.kind == "ctr"]
        assert len(ctr) == 1 and not ctr[0].is_write  # read-modify-write fetch

    def test_mac_write_produces_without_fetch(self):
        mee = make_mee(Scheme.PSSM)
        res = mee.on_writeback(0, 0, 0)
        assert not [r for r in res.requests if r.kind == "mac"]
        # The produced MAC is dirty in the cache; it reaches DRAM at flush.
        flushed = mee.flush()
        assert any(r.kind == "mac" and r.is_write for r in flushed)


class TestNaive:
    def test_unsectored_fetch_is_full_line(self):
        mee = make_mee(Scheme.NAIVE)
        res = mee.on_read_miss(0, 0, 0)
        assert all(r.size == 128 for r in res.requests if r.kind in ("ctr", "mac"))

    def test_metadata_routed_by_physical_carveout(self):
        mee = make_mee(Scheme.NAIVE)
        res = mee.on_read_miss(0, 0, 0)
        partitions = {r.partition for r in res.requests}
        assert partitions  # routed somewhere valid
        assert all(0 <= p < 12 for p in partitions)

    def test_bmt_traffic_on_counter_miss(self):
        mee = make_mee(Scheme.NAIVE)
        res = mee.on_read_miss(0, 0, 0)
        assert "bmt" in kinds(res.requests)


class TestReadOnlyOptimization:
    def test_read_only_read_skips_counter_and_bmt(self):
        mee = make_mee(Scheme.SHM_READONLY)
        mee.on_host_copy(0, 64 * KB, at_init=True)
        res = mee.on_read_miss(0, 0, 0)
        assert kinds(res.requests) == ["mac"]
        assert mee.shared_counter_reads == 1

    def test_not_marked_region_uses_counters(self):
        mee = make_mee(Scheme.SHM_READONLY)
        res = mee.on_read_miss(0, 0, 0)
        assert "ctr" in kinds(res.requests)

    def test_write_triggers_transition_and_propagation(self):
        mee = make_mee(Scheme.SHM_READONLY)
        mee.on_host_copy(0, 64 * KB, at_init=True)
        mee.on_writeback(0, 0, 0)
        assert mee.readonly.transitions == 1
        # Propagated counters are dirty in the counter cache.
        flushed = mee.flush()
        assert any(r.kind == "ctr" and r.is_write for r in flushed)
        # Subsequent reads use per-block counters.
        res = mee.on_read_miss(1, 0, 0)
        assert "ctr" in kinds(res.requests) or not res.requests  # cached ok
        assert mee.shared_counter_reads == 0

    def test_midrun_copy_clears_read_only(self):
        mee = make_mee(Scheme.SHM_READONLY)
        mee.on_host_copy(0, 64 * KB, at_init=True)
        mee.on_host_copy(0, 64 * KB, at_init=False)
        res = mee.on_read_miss(0, 0, 0)
        assert "ctr" in kinds(res.requests)


class TestResetAPI:
    def test_reset_raises_shared_counter_above_majors(self):
        mee = make_mee(Scheme.SHM_READONLY)
        mee.counters.set_major(0, 90)  # as in Fig. 9
        new_value = mee.input_read_only_reset(0, 16 * KB)
        assert new_value == 91

    def test_reset_rearms_read_only(self):
        mee = make_mee(Scheme.SHM_READONLY)
        mee.on_host_copy(0, 16 * KB, at_init=True)
        mee.on_writeback(0, 0, 0)  # transition away
        mee.input_read_only_reset(0, 16 * KB)
        res = mee.on_read_miss(1, 0, 0)
        assert "ctr" not in kinds(res.requests)

    def test_empty_range_rejected(self):
        mee = make_mee(Scheme.SHM_READONLY)
        with pytest.raises(ValueError):
            mee.input_read_only_reset(100, 100)


class TestCommonCounters:
    def test_common_line_skips_counter_fetch(self):
        mee = make_mee(Scheme.PSSM_CTR)
        res = mee.on_read_miss(0, 0, 0)
        assert "ctr" not in kinds(res.requests)
        assert mee.common_counter_hits == 1

    def test_diverged_line_fetches_counters(self):
        mee = make_mee(Scheme.PSSM_CTR)
        mee.on_writeback(0, 0, 0)  # diverges the line
        # Block 32 shares the 16 KB counter line but lives in a
        # different (uncached) counter sector: the fetch must happen.
        res = mee.on_read_miss(1, 32 * 128, 32 * 128)
        assert "ctr" in kinds(res.requests)


class TestDualGranularityMAC:
    def test_stream_predicted_read_fetches_chunk_mac(self):
        mee = make_mee(Scheme.SHM)
        res = mee.on_read_miss(0, 0, 0)
        mac = [r for r in res.requests if r.kind == "mac"]
        assert len(mac) == 1 and mac[0].size == 32

    def test_chunk_mac_uses_chunk_key_space(self):
        mee = make_mee(Scheme.SHM)
        mee.on_read_miss(0, 0, 0)
        assert any(
            line.key >= CHUNK_MAC_KEY_BASE
            for lines in mee.caches.mac._sets for line in lines.values()
        )

    def test_random_verdict_flips_to_block_macs(self):
        mee = make_mee(Scheme.SHM)
        # 32 accesses to the same block -> RANDOM verdict.
        for i in range(32):
            mee.on_read_miss(i, 0, 0)
        assert mee.streaming.predict(0) is Pattern.RANDOM

    def test_stream_verdict_with_writes_updates_chunk_mac(self):
        mee = make_mee(Scheme.SHM)
        for block in range(32):
            mee.on_writeback(block, block * 128, block * 128)
        # Verdict STREAM: chunk MAC dirty, block MACs cleaned.
        flushed = mee.flush()
        mac_writes = [r for r in flushed if r.kind == "mac" and r.is_write]
        total_mac_bytes = sum(r.size for r in mac_writes)
        # Only the chunk-MAC sector (32 B) remains dirty, not 8 block
        # MAC sectors (256 B).
        assert total_mac_bytes <= 64

    def test_random_mispredict_readonly_refetches_touched_block_macs(self):
        mee = make_mee(Scheme.SHM)
        mee.on_host_copy(0, 64 * KB, at_init=True)  # read-only region
        # Hit two distant blocks of the chunk repeatedly: RANDOM verdict.
        mispred_sectors = 0
        for i in range(32):
            block_off = 0 if i % 2 == 0 else 20 * 128
            res = mee.on_read_miss(i, block_off, block_off)
            mispred_sectors += sum(
                1 for r in res.requests if r.kind == "mispred"
            )
        # Table III row 2, bounded to the touched blocks: the two
        # touched blocks live in two distinct MAC sectors.
        assert mispred_sectors == 2

    def test_random_mispredict_wide_window_refetches_more(self):
        mee = make_mee(Scheme.SHM)
        mee.on_host_copy(0, 64 * KB, at_init=True)
        # Touch 31 of 32 blocks: still RANDOM, but nearly every MAC
        # sector was used under the chunk MAC and must be re-fetched.
        mispred_sectors = 0
        for i in range(31):
            res = mee.on_read_miss(i, i * 128, i * 128)
            mispred_sectors += sum(1 for r in res.requests if r.kind == "mispred")
        res = mee.on_read_miss(32, 0, 0)  # 32nd access, duplicate block
        mispred_sectors += sum(1 for r in res.requests if r.kind == "mispred")
        assert mispred_sectors == 8

    def test_update_both_policy_writes_both_macs(self):
        mee = make_mee(Scheme.SHM, mac_conflict_policy="update_both")
        mee.on_writeback(0, 0, 0)
        flushed = mee.flush()
        mac_bytes = sum(r.size for r in flushed if r.kind == "mac" and r.is_write)
        assert mac_bytes >= 64  # block MAC sector + chunk MAC sector


class TestOracle:
    def test_oracle_init_uses_profile(self):
        from repro.common.types import Pattern as P
        from repro.core.mee import TruthProvider

        class FakeTruth(TruthProvider):
            def readonly_regions(self, partition, kernel):
                return [0]

            def first_phase_patterns(self, partition):
                return {0: P.RANDOM}

        config = SimConfig().with_scheme(Scheme.SHM_UPPER_BOUND)
        mapper = AddressMapper(12, 256)
        mee = MemoryEncryptionEngine(0, config, mapper, SharedCounter(),
                                     truth=FakeTruth())
        mee.on_kernel_boundary(0)
        assert mee.readonly.predict(0)
        assert mee.streaming.predict(0) is P.RANDOM
