"""Scheme-matrix smoke and invariant tests for the MEE.

Every Table VIII design must handle arbitrary read/write mixes without
error, with deterministic traffic and sane invariants.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.core.mee import MemoryEncryptionEngine
from repro.metadata.counters import SharedCounter

SECURE_SCHEMES = [s for s in Scheme if s is not Scheme.UNPROTECTED]


def make_mee(scheme):
    config = SimConfig().with_scheme(scheme)
    mapper = AddressMapper(config.gpu.num_partitions,
                           config.gpu.interleave_bytes)
    return MemoryEncryptionEngine(0, config, mapper, SharedCounter())


def drive(mee, n=300, seed=1, footprint=1 << 20):
    rng = random.Random(seed)
    total = 0
    for i in range(n):
        offset = rng.randrange(footprint // 128) * 128
        if rng.random() < 0.3:
            res = mee.on_writeback(i, offset, offset)
        else:
            res = mee.on_read_miss(i, offset, offset)
        for req in res.requests:
            assert req.size > 0
            assert 0 <= req.partition < 12
            assert req.kind in ("ctr", "mac", "bmt", "mispred", "data")
            total += req.size
    return total


@pytest.mark.parametrize("scheme", SECURE_SCHEMES)
class TestSchemeMatrix:
    def test_handles_mixed_traffic(self, scheme):
        mee = make_mee(scheme)
        mee.on_host_copy(0, 256 * 1024, at_init=True)
        assert drive(mee) >= 0

    def test_deterministic(self, scheme):
        a, b = make_mee(scheme), make_mee(scheme)
        for m in (a, b):
            m.on_host_copy(0, 256 * 1024, at_init=True)
        assert drive(a, seed=7) == drive(b, seed=7)

    def test_flush_is_idempotent(self, scheme):
        mee = make_mee(scheme)
        drive(mee, n=100)
        first = mee.flush()
        second = mee.flush()
        assert not second  # everything already drained
        assert all(r.is_write for r in first)

    def test_caches_respect_capacity(self, scheme):
        mee = make_mee(scheme)
        drive(mee, n=500, footprint=8 << 20)
        for cache in (mee.caches.counter, mee.caches.mac, mee.caches.bmt):
            assert cache.resident_lines() <= cache.config.num_blocks


class TestTrafficInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**16), st.booleans())
    def test_property_single_access_bounded_traffic(self, block, is_write):
        """No single access may generate unbounded metadata traffic
        (worst case: unsectored line fills on every metadata kind plus
        a full tree walk)."""
        mee = make_mee(Scheme.NAIVE)
        offset = block * 128
        res = (mee.on_writeback(0, offset, offset) if is_write
               else mee.on_read_miss(0, offset, offset))
        assert sum(r.size for r in res.requests) <= 16 * 1024

    def test_readonly_reads_generate_no_freshness_traffic(self):
        mee = make_mee(Scheme.SHM)
        mee.on_host_copy(0, 1 << 20, at_init=True)
        rng = random.Random(3)
        for i in range(400):
            offset = rng.randrange((1 << 20) // 128) * 128
            res = mee.on_read_miss(i, offset, offset)
            kinds = {r.kind for r in res.requests}
            assert "ctr" not in kinds and "bmt" not in kinds

    def test_critical_requests_are_always_counter_reads(self):
        for scheme in (Scheme.NAIVE, Scheme.PSSM, Scheme.SHM):
            mee = make_mee(scheme)
            rng = random.Random(5)
            for i in range(200):
                offset = rng.randrange(4096) * 128
                res = mee.on_read_miss(i, offset, offset)
                for req in res.requests:
                    if req.critical:
                        assert req.kind == "ctr" and not req.is_write

    def test_writes_never_critical(self):
        mee = make_mee(Scheme.PSSM)
        for i in range(100):
            res = mee.on_writeback(i, i * 128, i * 128)
            assert not any(r.critical for r in res.requests)
