"""Host-side programming API (SecureGPUContext)."""

import pytest

from repro.core.api import SecureGPUContext


@pytest.fixture
def ctx():
    return SecureGPUContext(memory_bytes=2 * 1024 * 1024)


class TestAllocation:
    def test_alloc_region_aligned(self, ctx):
        a = ctx.alloc("a", 100)
        b = ctx.alloc("b", 100)
        assert a.address % ctx.device.region_size == 0
        assert b.address % ctx.device.region_size == 0
        assert b.address > a.address

    def test_duplicate_name_rejected(self, ctx):
        ctx.alloc("a", 100)
        with pytest.raises(ValueError):
            ctx.alloc("a", 100)

    def test_exhaustion(self, ctx):
        with pytest.raises(MemoryError):
            ctx.alloc("big", 4 * 1024 * 1024)

    def test_lookup(self, ctx):
        a = ctx.alloc("a", 100)
        assert ctx.buffer("a") is a

    def test_invalid_size(self, ctx):
        with pytest.raises(ValueError):
            ctx.alloc("z", 0)


class TestDataMovement:
    def test_h2d_d2h_roundtrip(self, ctx):
        buf = ctx.alloc("in", 512)
        ctx.memcpy_h2d(buf, b"\x11" * 512)
        assert ctx.memcpy_d2h(buf, 512) == b"\x11" * 512

    def test_padding_on_partial_block(self, ctx):
        buf = ctx.alloc("in", 200)
        ctx.memcpy_h2d(buf, b"\x22" * 200)
        assert ctx.read(buf.address, 200) == b"\x22" * 200

    def test_oversized_copy_rejected(self, ctx):
        buf = ctx.alloc("in", 128)
        with pytest.raises(ValueError):
            ctx.memcpy_h2d(buf, bytes(16 * 1024 + 128))

    def test_kernel_write_visible(self, ctx):
        buf = ctx.alloc("out", 256)
        ctx.memcpy_h2d(buf, bytes(256), read_only=False)
        ctx.write(buf.address, b"\x33" * 256)
        assert ctx.read(buf.address, 256) == b"\x33" * 256

    def test_unaligned_read(self, ctx):
        buf = ctx.alloc("in", 512)
        ctx.memcpy_h2d(buf, bytes(range(256)) * 2)
        assert ctx.read(buf.address + 100, 10) == bytes(range(100, 110))


class TestReadOnlyFlow:
    def test_read_only_marking(self, ctx):
        buf = ctx.alloc("in", 256)
        ctx.memcpy_h2d(buf, bytes(256), read_only=True)
        assert ctx.device.is_read_only(buf.address)

    def test_write_transitions(self, ctx):
        buf = ctx.alloc("in", 256)
        ctx.memcpy_h2d(buf, bytes(256), read_only=True)
        ctx.write(buf.address, b"\x01" * 128)
        assert not ctx.device.is_read_only(buf.address)

    def test_reset_api(self, ctx):
        buf = ctx.alloc("in", 256)
        ctx.memcpy_h2d(buf, bytes(256), read_only=True)
        ctx.write(buf.address, b"\x01" * 128)
        value = ctx.input_read_only_reset(buf)
        assert value == ctx.device.shared_counter
        assert ctx.device.is_read_only(buf.address)


class TestKeys:
    def test_contexts_have_distinct_keys(self):
        a = SecureGPUContext(context_id=0, memory_bytes=1 << 20)
        b = SecureGPUContext(context_id=1, memory_bytes=1 << 20)
        assert a.keys != b.keys


class TestUnalignedWrites:
    def test_misaligned_write_preserves_neighbours(self, ctx):
        buf = ctx.alloc("rw", 512)
        ctx.memcpy_h2d(buf, bytes(range(256)) * 2, read_only=False)
        ctx.write(buf.address + 100, b"\xEE" * 10)
        assert ctx.read(buf.address + 100, 10) == b"\xEE" * 10
        assert ctx.read(buf.address + 99, 1) == bytes([99])
        assert ctx.read(buf.address + 110, 1) == bytes([110])

    def test_write_spanning_blocks(self, ctx):
        buf = ctx.alloc("rw", 512)
        ctx.memcpy_h2d(buf, bytes(512), read_only=False)
        ctx.write(buf.address + 120, b"\xAB" * 20)  # crosses block 0/1
        assert ctx.read(buf.address + 120, 20) == b"\xAB" * 20
        assert ctx.read(buf.address, 1) == b"\x00"

    def test_empty_write_noop(self, ctx):
        buf = ctx.alloc("rw", 256)
        ctx.memcpy_h2d(buf, bytes(256), read_only=False)
        ctx.write(buf.address, b"")
        assert ctx.read(buf.address, 4) == bytes(4)
