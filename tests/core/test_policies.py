"""The policy layer and the scheme registry (repro.core.policies).

The registry's acceptance bar: a new scheme is ONE registration —
after ``register_scheme`` it runs end-to-end through ``SimConfig``,
the :class:`Runner` and the CLI parser without any change to
``repro.core.mee``.
"""

from __future__ import annotations

import pytest

from repro.common.config import SimConfig, scheme_config
from repro.common.types import Scheme
from repro.core.mee import MemoryEncryptionEngine
from repro.core.policies import (
    BlockMACPolicy,
    CommonCounterPolicy,
    DualGranularityMACPolicy,
    SharedReadonlyCounterPolicy,
    SplitCounterPolicy,
    available_schemes,
    build_scheme_config,
    integrity_policy,
    register_scheme,
    resolve_scheme,
    scheme_entry,
    unregister_scheme,
)
from repro.sim.runner import Runner


@pytest.fixture
def custom_scheme():
    """A throwaway registry entry, removed again after the test."""
    name = "shm_nobmt_test"
    register_scheme(name, base=Scheme.SHM,
                    description="SHM without replay protection",
                    integrity_tree="none")
    yield name
    unregister_scheme(name)


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------

def test_paper_designs_are_preregistered():
    names = available_schemes()
    assert set(names) >= {s.value for s in Scheme}
    for s in Scheme:
        entry = scheme_entry(s)
        assert entry.base is s and not entry.custom


def test_unknown_flag_is_rejected():
    with pytest.raises(ValueError, match="unknown SchemeConfig flag"):
        register_scheme("typo_test", base=Scheme.SHM,
                        dual_granularity_mack=True)
    assert "typo_test" not in available_schemes()


def test_duplicate_registration_is_rejected(custom_scheme):
    with pytest.raises(ValueError, match="already registered"):
        register_scheme(custom_scheme, base=Scheme.SHM)


def test_builtin_schemes_cannot_be_unregistered():
    with pytest.raises(ValueError, match="built-in"):
        unregister_scheme("shm")


def test_shadow_then_unregister_restores_builtin():
    # Shadowing a Table VIII name with replace=True and then
    # unregistering the shadow must restore the built-in entry, not
    # leave a hole that breaks every later resolve of the design.
    register_scheme("shm", base=Scheme.SHM, replace=True,
                    description="shadow", integrity_tree="none")
    assert scheme_entry("shm").custom
    unregister_scheme("shm")
    entry = scheme_entry("shm")
    assert not entry.custom
    assert resolve_scheme("shm") is Scheme.SHM
    assert scheme_config(Scheme.SHM).dual_granularity_mac


def test_registry_leak_is_contained_by_fixture():
    # The autouse conftest fixture snapshots the registry: deliberately
    # "leak" an entry here; the paired test below (runs later in file
    # order) asserts it is gone.
    register_scheme("leaky_test_scheme", base=Scheme.PSSM)
    assert "leaky_test_scheme" in available_schemes()


def test_registry_leak_was_rolled_back():
    assert "leaky_test_scheme" not in available_schemes()


def test_resolve_scheme_maps_paper_names_to_enum(custom_scheme):
    assert resolve_scheme("shm") is Scheme.SHM
    assert resolve_scheme(custom_scheme) == custom_scheme
    with pytest.raises(ValueError, match="unknown scheme"):
        resolve_scheme("not_a_scheme")


def test_custom_entry_materialises_config(custom_scheme):
    config = build_scheme_config(custom_scheme)
    assert config.scheme is Scheme.SHM  # rides on its base design
    assert config.name == custom_scheme
    assert config.label == custom_scheme
    assert config.integrity_tree == "none"
    assert config.dual_granularity_mac  # inherited from the SHM base
    # The common-layer shim resolves registry names too.
    assert scheme_config(custom_scheme) == config


def test_paper_configs_unchanged_by_registry():
    for s in Scheme:
        config = scheme_config(s)
        assert config.scheme is s
        assert config.label == s.value


# ---------------------------------------------------------------------------
# Policy composition (build_policies via the MEE)
# ---------------------------------------------------------------------------

def _mee_for(scheme, **flags) -> MemoryEncryptionEngine:
    from repro.common.address import AddressMapper
    from repro.metadata.counters import SharedCounter

    config = SimConfig().with_scheme(scheme, **flags)
    mapper = AddressMapper(config.gpu.num_partitions,
                           config.gpu.interleave_bytes)
    return MemoryEncryptionEngine(0, config, mapper, SharedCounter())


def test_policy_stack_matches_scheme_flags():
    mee = _mee_for(Scheme.PSSM)
    assert isinstance(mee.counter_policy, SplitCounterPolicy)
    assert isinstance(mee.mac_policy, BlockMACPolicy)

    mee = _mee_for(Scheme.PSSM_CTR)
    assert isinstance(mee.counter_policy, CommonCounterPolicy)
    assert isinstance(mee.counter_policy.inner, SplitCounterPolicy)

    mee = _mee_for(Scheme.SHM)
    assert isinstance(mee.counter_policy, SharedReadonlyCounterPolicy)
    assert isinstance(mee.counter_policy.inner, SplitCounterPolicy)
    assert isinstance(mee.mac_policy, DualGranularityMACPolicy)

    mee = _mee_for(Scheme.SHM_CCTR)
    assert isinstance(mee.counter_policy, SharedReadonlyCounterPolicy)
    assert isinstance(mee.counter_policy.inner, CommonCounterPolicy)


def test_integrity_policy_selects_walker():
    assert _mee_for(Scheme.SHM).bmt.arity == 16
    assert _mee_for(Scheme.SHM, integrity_tree="counter_tree").bmt.arity == 8
    null_walker = _mee_for(Scheme.SHM, integrity_tree="none").bmt
    assert null_walker.arity == 0 and null_walker.walk(None, 0, True) == ([], [])
    with pytest.raises(ValueError, match="unknown integrity tree"):
        integrity_policy("merkle_ish")


# ---------------------------------------------------------------------------
# End-to-end: one registration, no core/mee.py changes
# ---------------------------------------------------------------------------

def test_custom_scheme_runs_end_to_end(custom_scheme):
    runner = Runner(scale=0.02)
    result = runner.run("atax", custom_scheme)
    base = runner.run("atax", Scheme.SHM)
    # No integrity tree: zero BMT traffic, but otherwise a real secure
    # run (counters + MACs still flow).
    assert result.traffic.bmt_bytes == 0
    assert base.traffic.bmt_bytes > 0
    assert result.traffic.counter_bytes > 0
    assert result.traffic.mac_bytes > 0
    assert result.cycles <= base.cycles
    # Cached under the registry name, distinct from the base design.
    from repro.eval.results_io import serialize_run_result

    assert (serialize_run_result(runner.run("atax", custom_scheme))
            == serialize_run_result(result))
    assert serialize_run_result(result) != serialize_run_result(base)


def test_custom_scheme_through_simconfig(custom_scheme):
    config = SimConfig().with_scheme(custom_scheme)
    assert config.scheme.label == custom_scheme
    assert config.scheme.is_secure
