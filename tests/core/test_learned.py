"""Learned adaptive policies (repro.core.policies.learned).

Unit tests pin the deterministic primitives (crc draws, the online
logit), the cost-sensitive streaming veto, learned read-only
promotion/demotion and the bandit's epoch mechanics; integration
tests run both registered learned schemes end to end through the
Runner with a ledger attached; the acceptance test reproduces the
PR's headline claim — under heavy phase churn the learned design
recovers a large fraction of the heuristics' charged misprediction
cost.
"""

from __future__ import annotations

import pytest

from repro.common.config import DetectorConfig, SimConfig
from repro.common.types import Pattern, Scheme
from repro.core.policies import available_schemes, build_scheme_config
from repro.core.policies.learned import (
    ARMS,
    CHUNK_READ_SAVING,
    EPOCH_ACCESSES,
    FEATURES,
    MAX_SAMPLE_WEIGHT,
    MIN_MODEL_UPDATES,
    BanditArmSelector,
    LearnedReadOnlyDetector,
    LearnedStreamingDetector,
    OnlineLogit,
    build_learned_policies,
    crc_unit,
)
from repro.core.streaming import Verdict
from repro.obs.decisions import DECISION_TYPES, DecisionLedger
from repro.obs.validate import validate_decisions
from repro.sim.runner import Runner

FULL_MASK = (1 << 32) - 1


def _verdict(chunk=0, pattern=Pattern.RANDOM, predicted=Pattern.STREAM,
             **kwargs) -> Verdict:
    defaults = dict(had_write=False, timed_out=False, accesses=32,
                    touched_mask=0b1010101, evicted=-1)
    defaults.update(kwargs)
    return Verdict(chunk_id=chunk, pattern=pattern, predicted=predicted,
                   **defaults)


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

class TestCrcUnit:
    def test_in_unit_interval_and_deterministic(self):
        draws = [crc_unit("arm", p, r, e)
                 for p in range(3) for r in range(5) for e in range(4)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [crc_unit("arm", p, r, e)
                         for p in range(3) for r in range(5)
                         for e in range(4)]

    def test_distinct_keys_draw_differently(self):
        assert crc_unit("arm", 0, 0, 0) != crc_unit("arm", 0, 0, 1)
        assert crc_unit("arm", 0, 1, 0) != crc_unit("explore", 0, 1, 0)


class TestOnlineLogit:
    def test_untrained_score_is_half(self):
        assert OnlineLogit().score([0.0] * FEATURES) == pytest.approx(0.5)

    def test_updates_move_score_toward_label(self):
        model = OnlineLogit()
        fv = [1.0] + [0.0] * (FEATURES - 1)
        for _ in range(50):
            model.update(fv, 1.0)
        assert model.score(fv) > 0.9
        assert model.updates == 50
        for _ in range(100):
            model.update(fv, 0.0)
        assert model.score(fv) < 0.1

    def test_sample_weight_is_capped(self):
        heavy, capped = OnlineLogit(), OnlineLogit()
        fv = [1.0] * FEATURES
        heavy.update(fv, 1.0, weight=1e9)
        capped.update(fv, 1.0, weight=MAX_SAMPLE_WEIGHT)
        assert heavy.weights == capped.weights
        assert heavy.bias == capped.bias

    def test_saturated_scores_clamp(self):
        model = OnlineLogit(bias=100.0)
        assert model.score([0.0] * FEATURES) == 1.0
        model.bias = -100.0
        assert model.score([0.0] * FEATURES) == 0.0


# ---------------------------------------------------------------------------
# Learned streaming detector: the cost-sensitive veto
# ---------------------------------------------------------------------------

class TestLearnedStreamingDetector:
    def _det(self) -> LearnedStreamingDetector:
        return LearnedStreamingDetector(DetectorConfig(), OnlineLogit())

    def _churn(self, det, n, start_chunk=0, stall=200.0):
        """Feed n costly STREAM->RANDOM mispredict verdicts, one fresh
        chunk each (per-chunk history stays thin, the global context
        learns)."""
        for i in range(n):
            det.observe_verdict(
                float(i), _verdict(chunk=start_chunk + i), stall)

    def test_cold_start_is_the_paper_detector(self):
        det = self._det()
        self._churn(det, MIN_MODEL_UPDATES - 1)
        assert det.model.updates < MIN_MODEL_UPDATES
        assert not det._veto_default
        assert det.predict(999) is Pattern.STREAM  # all-ones bit vector

    def test_costly_churn_installs_the_global_veto(self):
        det = self._det()
        self._churn(det, 3 * MIN_MODEL_UPDATES)
        assert det._veto_default
        assert det.vetoes > 0
        # A never-seen chunk is vetoed at predict time — before its
        # first misprediction is paid.
        assert det.predict(10_000) is Pattern.RANDOM

    def test_free_mispredictions_never_veto(self):
        # stall == 0: nothing was measured, so nothing to win back.
        det = self._det()
        self._churn(det, 3 * MIN_MODEL_UPDATES, stall=0.0)
        assert not det._veto_default
        assert det.predict(10_000) is Pattern.STREAM

    def test_veto_is_one_sided(self):
        # Even a (forced) STREAM override must not flip a RANDOM bit:
        # the learned layer only ever vetoes toward RANDOM.
        det = self._det()
        det.preset(4, Pattern.RANDOM)
        det._override[4] = Pattern.STREAM
        assert det.predict(4) is Pattern.RANDOM

    def test_streamy_chunk_earns_exemption_from_global_veto(self):
        det = self._det()
        self._churn(det, 3 * MIN_MODEL_UPDATES)
        assert det._veto_default
        # One chunk keeps delivering confirmed streams: dense mask, no
        # remediation cost.  Its own history should exempt it (the
        # model needs ~15 clean verdicts to outweigh the churn prior).
        for i in range(40):
            det.observe_verdict(
                1000.0 + i,
                _verdict(chunk=77, pattern=Pattern.STREAM,
                         predicted=Pattern.STREAM, touched_mask=FULL_MASK),
                0.0)
        assert det._override.get(77) is Pattern.STREAM
        assert det.predict(77) is Pattern.STREAM

    def test_observe_verdict_returns_model_score(self):
        det = self._det()
        first = det.observe_verdict(0.0, _verdict(chunk=1), 10.0)
        assert first == -1.0  # no history anywhere yet
        later = det.observe_verdict(1.0, _verdict(chunk=2), 10.0)
        assert 0.0 <= later <= 1.0


class TestLearnedReadOnlyDetector:
    def _det(self) -> LearnedReadOnlyDetector:
        return LearnedReadOnlyDetector(DetectorConfig(), OnlineLogit())

    def test_promotion_overrides_bit_vector(self):
        det = self._det()
        assert not det.predict(5)
        det.promote(5)
        assert det.predict(5) and det.is_promoted(5)
        assert det.promotions == 1

    def test_store_demotes_and_reports_transition(self):
        det = self._det()
        det.promote(5)
        # The store must report a transition (propagation runs) even
        # though the host bit vector never marked the region.
        assert det.on_store(5)
        assert det.demotions == 1
        assert not det.predict(5)
        # A second store is a no-op: no repeated propagation.
        assert not det.on_store(5)

    def test_host_marking_still_works(self):
        det = self._det()
        det.mark_read_only([3])
        assert det.predict(3) and not det.is_promoted(3)
        assert det.on_store(3)

    def test_mark_written_demotes(self):
        det = self._det()
        det.promote(7)
        det.mark_written([7])
        assert not det.predict(7)
        assert det.demotions == 1


# ---------------------------------------------------------------------------
# Bandit arm selection
# ---------------------------------------------------------------------------

class TestBanditArmSelector:
    def test_cold_start_is_the_paper_arm(self):
        sel = BanditArmSelector(0)
        assert sel.arm(42) == ARMS[0] == ("shared", "dual")

    def test_epoch_boundary_settles_and_reports(self):
        sel = BanditArmSelector(0, epsilon=0.0, epoch_accesses=4)
        sel.save(1, 8.0)
        assert sel.on_access(1) is None
        assert sel.on_access(1) is None
        assert sel.on_access(1) is None
        label, reward = sel.on_access(1)
        assert label == "/".join(ARMS[0])
        assert reward == pytest.approx(8.0 / 4)
        assert sel.pulls == 1

    def test_costly_arm_is_abandoned(self):
        sel = BanditArmSelector(0, epsilon=0.0, epoch_accesses=2)
        sel.charge(1, 100.0)
        sel.on_access(1)
        label, reward = sel.on_access(1)
        assert reward == pytest.approx(-50.0)
        # Greedy now prefers any zero-reward arm over the charged one.
        assert sel.arm(1) != ARMS[0]
        assert label != "/".join(ARMS[0])

    def test_exploration_is_deterministic(self):
        def drive():
            sel = BanditArmSelector(3, epsilon=0.5, epoch_accesses=1)
            arms = []
            for region in range(4):
                for _ in range(32):
                    sel.on_access(region)
                    arms.append(sel.arm(region))
            return arms, sel.explores

        first, second = drive(), drive()
        assert first == second
        assert first[1] > 0  # epsilon=0.5 over 128 pulls must explore


# ---------------------------------------------------------------------------
# Composition and registration
# ---------------------------------------------------------------------------

def _mee_for(name):
    from repro.common.address import AddressMapper
    from repro.core.mee import MemoryEncryptionEngine
    from repro.metadata.counters import SharedCounter

    config = SimConfig().with_scheme(name)
    mapper = AddressMapper(config.gpu.num_partitions,
                           config.gpu.interleave_bytes)
    return MemoryEncryptionEngine(0, config, mapper, SharedCounter())


class TestComposition:
    def test_learned_schemes_are_registered(self):
        assert {"pssm_learned", "shm_bandit"} <= set(available_schemes())
        logit = build_scheme_config("pssm_learned")
        assert logit.learned_policy == "logit"
        assert logit.readonly_optimization and logit.dual_granularity_mac
        assert build_scheme_config("shm_bandit").learned_policy == "bandit"

    def test_logit_stack_replaces_detectors(self):
        from repro.core.policies.learned import (
            LearnedReadonlyCounterPolicy, LearnedStreamingMACPolicy)

        mee = _mee_for("pssm_learned")
        assert isinstance(mee.counter_policy, LearnedReadonlyCounterPolicy)
        assert isinstance(mee.mac_policy, LearnedStreamingMACPolicy)
        assert isinstance(mee.streaming, LearnedStreamingDetector)
        assert isinstance(mee.readonly, LearnedReadOnlyDetector)
        assert mee.mac_policy.detector is mee.streaming

    def test_bandit_stack_shares_one_selector(self):
        from repro.core.policies.learned import (
            BanditCounterPolicy, BanditMACPolicy)

        mee = _mee_for("shm_bandit")
        assert isinstance(mee.counter_policy, BanditCounterPolicy)
        assert isinstance(mee.mac_policy, BanditMACPolicy)
        assert mee.counter_policy.selector is mee.mac_policy.selector

    def test_learned_layer_requires_adaptive_machinery(self):
        from repro.core.policies.registry import register_scheme

        register_scheme("bare_learned_test", base=Scheme.PSSM,
                        learned_policy="logit")
        with pytest.raises(ValueError, match="readonly_optimization"):
            _mee_for("bare_learned_test")

    def test_unknown_learned_kind_is_rejected(self):
        from repro.core.policies.registry import register_scheme

        register_scheme("weird_learned_test", base=Scheme.SHM,
                        learned_policy="deep_rl")
        with pytest.raises(ValueError, match="deep_rl"):
            _mee_for("weird_learned_test")

    def test_build_learned_policies_rejects_plain_scheme(self):
        with pytest.raises(ValueError):
            build_learned_policies(_mee_for("pssm"))


# ---------------------------------------------------------------------------
# End to end: Runner + ledger provenance
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_pssm_learned_runs_and_ledgers_validate(self, tmp_path):
        ledger = DecisionLedger()
        runner = Runner(scale=0.05, ledger=ledger)
        result = runner.run("atax", "pssm_learned")
        assert result.cycles > 0
        summary = ledger.summary()
        assert "learned" in summary["by_detector"]
        assert summary["by_type"]["learned_verdict"]["count"] > 0
        report = validate_decisions(ledger.write_jsonl(tmp_path / "l.jsonl"))
        assert report["rows"] == len(ledger.rows)
        assert set(report["types"]) <= set(DECISION_TYPES)

    def test_shm_bandit_runs_and_selects_arms(self, tmp_path):
        # backprop hammers few enough regions that epochs actually
        # close at this scale (atax spreads accesses too thin).
        ledger = DecisionLedger()
        runner = Runner(scale=0.05, ledger=ledger)
        result = runner.run("backprop", "shm_bandit")
        assert result.cycles > 0
        summary = ledger.summary()
        assert summary["by_type"]["arm_select"]["count"] > 0
        report = validate_decisions(ledger.write_jsonl(tmp_path / "b.jsonl"))
        assert report["rows"] == len(ledger.rows)

    def test_acceptance_learned_beats_heuristic_under_churn(self):
        """The PR's headline claim: at full phase churn the learned
        design recovers >= 10 % of SHM's charged misprediction cost
        (measured ~36 % at this scale; the bar leaves slack)."""
        from repro.workloads.compose import build_workload
        from repro.workloads.multitenant import phase_churn_spec

        costs = {}
        for scheme in ("shm", "pssm_learned"):
            ledger = DecisionLedger()
            runner = Runner(scale=0.05, ledger=ledger)
            wl = build_workload(phase_churn_spec(1.0), scale=0.05)
            runner.add_workload(wl)
            ledger.begin_run(f"{wl.name}/{scheme}")
            runner.run(wl.name, scheme)
            costs[scheme] = sum(
                block["stall_cycles"]
                for block in ledger.summary()["by_detector"].values())
        assert costs["shm"] > 0
        reduction = 1.0 - costs["pssm_learned"] / costs["shm"]
        assert reduction >= 0.10


# ---------------------------------------------------------------------------
# The registered experiment
# ---------------------------------------------------------------------------

class TestExperiment:
    def test_spec_is_registered(self):
        from repro.eval.experiments import EXPERIMENTS

        spec = EXPERIMENTS["ablation_learned_policies"]
        assert "learned" in spec.title
        jobs = spec.jobs(["atax"], SimConfig(), 0.05)
        schemes = {job.scheme for job in jobs}
        assert {"pssm", "shm", "pssm_learned", "shm_bandit"} <= schemes
        assert all(job.collect_decisions for job in jobs)
        # Standard cell + churn sweep + contention cell per scheme.
        workloads = {job.workload for job in jobs}
        assert "atax" in workloads
        assert any("churn" in name for name in workloads)

    def test_aggregate_tolerates_missing_decisions(self):
        from repro.eval.campaign import CellRecord, JobSpec
        from repro.eval.experiments import _learned_aggregate

        class _FakeResult:
            def normalized_ipc(self, baseline):
                return 0.9

        def rec(scheme, decisions):
            job = JobSpec(experiment="ablation_learned_policies",
                          workload="atax", scheme=scheme, series=scheme,
                          scale=0.05, config=SimConfig())
            return CellRecord(job=job, result=_FakeResult(),
                              decisions=decisions)

        summary = {"by_detector": {"streaming": {"stall_cycles": 12.5},
                                   "learned": {"stall_cycles": 2.5}}}
        result = _learned_aggregate([
            rec("pssm_learned", summary),
            rec("shm", None),  # e.g. a store-cached cell
        ])
        assert result.series["pssm_learned"]["atax"] == pytest.approx(0.9)
        assert result.series["pssm_learned:cost"]["atax"] == \
            pytest.approx(15.0)
        assert result.series["shm"]["atax"] == pytest.approx(0.9)
        assert "shm:cost" not in result.series
