"""Streaming detector: predictor bit vector + MATs (Section IV-C)."""

import random

import pytest

from repro.common.config import DetectorConfig
from repro.common.types import Pattern
from repro.core.streaming import AccessTracker, StreamingDetector


class FullScanDetector(StreamingDetector):
    """Reference detector: timeout expiry by full scan instead of the
    production prefix scan, for the ordering property test."""

    def _expire_timeouts(self, cycle):
        timeout = self.config.timeout_cycles
        expired = [t for t in self._trackers.values()
                   if cycle - t.start_cycle > timeout]
        if not expired:
            return self._NO_VERDICTS
        return [self._deliver(t, timed_out=True) for t in expired]


@pytest.fixture
def det():
    return StreamingDetector(DetectorConfig())


def feed_stream(det, chunk_id, cycle=0, n=32, is_write=False):
    """Feed a perfect stream (blocks 0..n-1) into the detector."""
    verdicts = []
    for block in range(n):
        _, new = det.on_access(cycle + block, chunk_id, block, is_write)
        verdicts += new
    return verdicts


class TestPrediction:
    def test_initialized_all_streaming(self, det):
        # GPU workloads stream by default: the vector starts all ones.
        assert det.predict(0) is Pattern.STREAM
        assert det.predict(99999) is Pattern.STREAM

    def test_stream_verdict_after_full_coverage(self, det):
        verdicts = feed_stream(det, chunk_id=5)
        assert len(verdicts) == 1
        v = verdicts[0]
        assert v.pattern is Pattern.STREAM
        assert v.chunk_id == 5
        assert not v.timed_out
        assert det.predict(5) is Pattern.STREAM

    def test_random_verdict_when_blocks_missed(self, det):
        # 32 accesses that keep hitting the same two blocks.
        verdicts = []
        for i in range(32):
            _, new = det.on_access(i, 3, i % 2, False)
            verdicts += new
        assert verdicts[0].pattern is Pattern.RANDOM
        assert det.predict(3) is Pattern.RANDOM

    def test_write_flag_recorded(self, det):
        verdicts = feed_stream(det, 1, is_write=True)
        assert verdicts[0].had_write

    def test_verdict_carries_prior_prediction(self, det):
        verdicts = []
        for i in range(32):
            _, new = det.on_access(i, 3, 0, False)
            verdicts += new
        assert verdicts[0].predicted is Pattern.STREAM  # the initial bit


class TestTimeout:
    def test_stuck_tracker_times_out(self, det):
        det.on_access(0, 7, 0, False)  # one access, then silence
        # A later access to another chunk expires the stuck tracker.
        _, verdicts = det.on_access(10_000, 8, 0, False)
        timed = [v for v in verdicts if v.chunk_id == 7]
        assert len(timed) == 1
        assert timed[0].timed_out
        assert timed[0].pattern is Pattern.RANDOM
        assert det.timeouts == 1

    def test_no_timeout_within_window(self, det):
        det.on_access(0, 7, 0, False)
        _, verdicts = det.on_access(100, 8, 0, False)
        assert not [v for v in verdicts if v.chunk_id == 7]


class TestTrackerFile:
    def test_limited_trackers(self):
        det = StreamingDetector(DetectorConfig(num_trackers=2))
        det.on_access(0, 1, 0, False)
        det.on_access(0, 2, 0, False)
        det.on_access(0, 3, 0, False)  # no MAT free: not monitored
        assert len(det._trackers) == 2
        assert 3 not in det._trackers

    def test_unlimited_trackers(self):
        det = StreamingDetector(DetectorConfig(unlimited=True, num_trackers=2))
        for chunk in range(10):
            det.on_access(0, chunk, 0, False)
        assert len(det._trackers) == 10

    def test_tracker_freed_after_verdict(self, det):
        feed_stream(det, 1)
        assert 1 not in det._trackers


class TestPreset:
    def test_oracle_preset(self):
        det = StreamingDetector(DetectorConfig(unlimited=True))
        det.preset(4, Pattern.RANDOM)
        assert det.predict(4) is Pattern.RANDOM
        assert det.predict(5) is Pattern.STREAM  # untouched default


class TestAttribution:
    def test_correct(self, det):
        assert det.attribute(0, Pattern.STREAM, Pattern.STREAM, False) == "correct"

    def test_init(self, det):
        # Entry never written by a verdict: initialisation artefact.
        assert det.attribute(0, Pattern.STREAM, Pattern.RANDOM, False) == "mp_init"

    def test_runtime_change(self, det):
        feed_stream(det, 2)  # verdict STREAM written by chunk 2 itself
        assert det.attribute(2, Pattern.STREAM, Pattern.RANDOM, False) == \
            "mp_runtime_non_read_only"
        assert det.attribute(2, Pattern.STREAM, Pattern.RANDOM, True) == \
            "mp_runtime_read_only"

    def test_aliasing(self, det):
        n = DetectorConfig().stream_entries
        feed_stream(det, 2)  # entry 2 last written by chunk 2
        assert det.attribute(2 + n, Pattern.STREAM, Pattern.RANDOM, False) == \
            "mp_aliasing"


class TestAccessTracker:
    def test_verdict_pattern(self):
        t = AccessTracker(0, 0)
        for b in range(32):
            t.record(b, False)
        assert t.verdict_pattern(32) is Pattern.STREAM

    def test_partial_coverage_random(self):
        t = AccessTracker(0, 0)
        for b in range(31):
            t.record(b, False)
        t.record(0, False)  # duplicate instead of block 31
        assert t.verdict_pattern(32) is Pattern.RANDOM


class TestStorage:
    def test_table9_storage(self, det):
        # 2048-entry vector + 8 x 71-bit MATs.
        assert det.storage_bits == 2048 + 8 * 71


class TestTimeoutOrderInvariant:
    """The timeout prefix scan assumes the trackers dict stays
    start-cycle ordered.  The invariant holds because a chunk's
    tracker is *deleted* at delivery and re-tracking inserts a fresh
    tracker at the dict's tail with the (non-decreasing) current
    cycle; these tests lock both the invariant and its consequences
    under randomized re-tracking after delivery."""

    def _drive(self, det, seed, accesses=4000, chunks=24):
        rng = random.Random(seed)
        cfg = det.config
        cycle = 0.0
        out = []
        for _ in range(accesses):
            # Non-decreasing cycles with occasional long idle gaps so
            # timeouts actually fire between accesses.
            cycle += rng.choice((0.0, 1.0, 3.0, cfg.timeout_cycles / 3.0))
            chunk = rng.randrange(chunks)  # re-tracks delivered chunks
            block = rng.randrange(cfg.blocks_per_chunk)
            tracked, verdicts = det.on_access(
                cycle, chunk, block, rng.random() < 0.25)
            out.extend((v.chunk_id, v.pattern, v.predicted, v.timed_out,
                        v.accesses, v.touched_mask, v.evicted)
                       for v in verdicts)
        return out

    @pytest.mark.parametrize("seed", [1, 7, 23, 91])
    def test_prefix_scan_matches_full_scan_reference(self, seed):
        fast = self._drive(StreamingDetector(DetectorConfig()), seed)
        slow = self._drive(FullScanDetector(DetectorConfig()), seed)
        assert fast == slow
        assert fast  # the property is vacuous without verdicts

    @pytest.mark.parametrize("seed", [3, 17])
    def test_retracked_chunks_keep_dict_start_cycle_ordered(self, seed):
        # The __debug__ assert in _expire_timeouts checks the scanned
        # prefix; this checks the whole dict after every access.
        det = StreamingDetector(DetectorConfig(num_trackers=4))
        rng = random.Random(seed)
        cycle = 0.0
        for _ in range(2000):
            cycle += rng.choice((0.0, 2.0, 2500.0))
            det.on_access(cycle, rng.randrange(12), rng.randrange(32),
                          rng.random() < 0.5)
            starts = [t.start_cycle for t in det._trackers.values()]
            assert starts == sorted(starts)

    def test_no_expiries_missed_after_delivery_rescues_slot(self):
        # Deliver chunk 0 early (32 accesses), re-track it later, then
        # idle past the timeout: both the re-tracked chunk 0 and the
        # older still-pending chunk 1 must expire, in start order.
        det = StreamingDetector(DetectorConfig())
        feed_stream(det, 0, cycle=0)               # delivered at ~31
        det.on_access(50.0, 1, 0, False)           # pending, start 50
        det.on_access(100.0, 0, 1, False)          # re-track, start 100
        timeout = det.config.timeout_cycles
        _, verdicts = det.on_access(100.0 + timeout + 1, 2, 0, False)
        assert [(v.chunk_id, v.timed_out) for v in verdicts] == \
            [(1, True), (0, True)]
