"""Streaming detector: predictor bit vector + MATs (Section IV-C)."""

import pytest

from repro.common.config import DetectorConfig
from repro.common.types import Pattern
from repro.core.streaming import AccessTracker, StreamingDetector


@pytest.fixture
def det():
    return StreamingDetector(DetectorConfig())


def feed_stream(det, chunk_id, cycle=0, n=32, is_write=False):
    """Feed a perfect stream (blocks 0..n-1) into the detector."""
    verdicts = []
    for block in range(n):
        _, new = det.on_access(cycle + block, chunk_id, block, is_write)
        verdicts += new
    return verdicts


class TestPrediction:
    def test_initialized_all_streaming(self, det):
        # GPU workloads stream by default: the vector starts all ones.
        assert det.predict(0) is Pattern.STREAM
        assert det.predict(99999) is Pattern.STREAM

    def test_stream_verdict_after_full_coverage(self, det):
        verdicts = feed_stream(det, chunk_id=5)
        assert len(verdicts) == 1
        v = verdicts[0]
        assert v.pattern is Pattern.STREAM
        assert v.chunk_id == 5
        assert not v.timed_out
        assert det.predict(5) is Pattern.STREAM

    def test_random_verdict_when_blocks_missed(self, det):
        # 32 accesses that keep hitting the same two blocks.
        verdicts = []
        for i in range(32):
            _, new = det.on_access(i, 3, i % 2, False)
            verdicts += new
        assert verdicts[0].pattern is Pattern.RANDOM
        assert det.predict(3) is Pattern.RANDOM

    def test_write_flag_recorded(self, det):
        verdicts = feed_stream(det, 1, is_write=True)
        assert verdicts[0].had_write

    def test_verdict_carries_prior_prediction(self, det):
        verdicts = []
        for i in range(32):
            _, new = det.on_access(i, 3, 0, False)
            verdicts += new
        assert verdicts[0].predicted is Pattern.STREAM  # the initial bit


class TestTimeout:
    def test_stuck_tracker_times_out(self, det):
        det.on_access(0, 7, 0, False)  # one access, then silence
        # A later access to another chunk expires the stuck tracker.
        _, verdicts = det.on_access(10_000, 8, 0, False)
        timed = [v for v in verdicts if v.chunk_id == 7]
        assert len(timed) == 1
        assert timed[0].timed_out
        assert timed[0].pattern is Pattern.RANDOM
        assert det.timeouts == 1

    def test_no_timeout_within_window(self, det):
        det.on_access(0, 7, 0, False)
        _, verdicts = det.on_access(100, 8, 0, False)
        assert not [v for v in verdicts if v.chunk_id == 7]


class TestTrackerFile:
    def test_limited_trackers(self):
        det = StreamingDetector(DetectorConfig(num_trackers=2))
        det.on_access(0, 1, 0, False)
        det.on_access(0, 2, 0, False)
        det.on_access(0, 3, 0, False)  # no MAT free: not monitored
        assert len(det._trackers) == 2
        assert 3 not in det._trackers

    def test_unlimited_trackers(self):
        det = StreamingDetector(DetectorConfig(unlimited=True, num_trackers=2))
        for chunk in range(10):
            det.on_access(0, chunk, 0, False)
        assert len(det._trackers) == 10

    def test_tracker_freed_after_verdict(self, det):
        feed_stream(det, 1)
        assert 1 not in det._trackers


class TestPreset:
    def test_oracle_preset(self):
        det = StreamingDetector(DetectorConfig(unlimited=True))
        det.preset(4, Pattern.RANDOM)
        assert det.predict(4) is Pattern.RANDOM
        assert det.predict(5) is Pattern.STREAM  # untouched default


class TestAttribution:
    def test_correct(self, det):
        assert det.attribute(0, Pattern.STREAM, Pattern.STREAM, False) == "correct"

    def test_init(self, det):
        # Entry never written by a verdict: initialisation artefact.
        assert det.attribute(0, Pattern.STREAM, Pattern.RANDOM, False) == "mp_init"

    def test_runtime_change(self, det):
        feed_stream(det, 2)  # verdict STREAM written by chunk 2 itself
        assert det.attribute(2, Pattern.STREAM, Pattern.RANDOM, False) == \
            "mp_runtime_non_read_only"
        assert det.attribute(2, Pattern.STREAM, Pattern.RANDOM, True) == \
            "mp_runtime_read_only"

    def test_aliasing(self, det):
        n = DetectorConfig().stream_entries
        feed_stream(det, 2)  # entry 2 last written by chunk 2
        assert det.attribute(2 + n, Pattern.STREAM, Pattern.RANDOM, False) == \
            "mp_aliasing"


class TestAccessTracker:
    def test_verdict_pattern(self):
        t = AccessTracker(0, 0)
        for b in range(32):
            t.record(b, False)
        assert t.verdict_pattern(32) is Pattern.STREAM

    def test_partial_coverage_random(self):
        t = AccessTracker(0, 0)
        for b in range(31):
            t.record(b, False)
        t.record(0, False)  # duplicate instead of block 31
        assert t.verdict_pattern(32) is Pattern.RANDOM


class TestStorage:
    def test_table9_storage(self, det):
        # 2048-entry vector + 8 x 71-bit MATs.
        assert det.storage_bits == 2048 + 8 * 71
