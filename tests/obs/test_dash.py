"""The dashboard: event folding, text rendering, HTML export."""

from repro.obs.dash import (
    DashboardState,
    render_html,
    render_text,
    sparkline,
    write_html,
)


def _healthy_run():
    """A 3-cell campaign: one cached, two executed on two workers."""
    return [
        {"seq": 0, "ts": 100.0, "type": "campaign_started",
         "campaign": "c", "experiments": ["fig5"], "cells": 3,
         "scale": 0.1, "code_version": "v", "workers": 2},
        {"seq": 1, "ts": 100.1, "type": "cell_cached", "campaign": "c",
         "cell": "k0", "workload": "atax", "scheme": "shm"},
        {"seq": 2, "ts": 101.0, "type": "cell_started", "campaign": "c",
         "cell": "k1", "worker": 11},
        {"seq": 3, "ts": 101.0, "type": "cell_started", "campaign": "c",
         "cell": "k2", "worker": 22},
        {"seq": 4, "ts": 103.0, "type": "cell_completed", "campaign": "c",
         "cell": "k1", "workload": "atax", "scheme": "shm",
         "attempts": 1, "runtime": 2.0},
        {"seq": 5, "ts": 104.0, "type": "cell_completed", "campaign": "c",
         "cell": "k2", "workload": "mvt", "scheme": "shm",
         "attempts": 1, "runtime": 3.0},
        {"seq": 6, "ts": 104.0, "type": "campaign_finished",
         "campaign": "c", "totals": {"cells": 3, "failed": 0},
         "elapsed_seconds": 4.0},
    ]


class TestFolding:
    def test_counts(self):
        state = DashboardState.from_events(_healthy_run())
        assert state.campaign == "c"
        assert state.total_cells == 3
        assert state.done == 3
        assert state.completed == 2
        assert state.cached == 1
        assert state.failed == 0
        assert state.running == 0
        assert state.finished
        assert state.runtimes == [2.0, 3.0]
        assert {w.worker for w in state.workers.values()} == {"11", "22"}

    def test_fold_tolerates_merged_spool_order(self):
        """Pool logs land cell_started rows *after* the terminal rows
        (spools merge when the pool drains); the fold must not care."""
        rows = _healthy_run()
        reordered = [rows[0], rows[1], rows[4], rows[5], rows[2],
                     rows[3], rows[6]]
        a = DashboardState.from_events(rows)
        b = DashboardState.from_events(reordered)
        assert (a.done, a.running, a.completed) == (
            b.done, b.running, b.completed)

    def test_resumed_campaign_supersedes_prior_run(self):
        """Two runs appended to one log (campaign resume): the fold
        shows the latest run's state, not a sum across both."""
        first = _healthy_run()
        resumed = [
            {"seq": 7, "ts": 200.0, "type": "campaign_started",
             "campaign": "c", "experiments": ["fig5"], "cells": 3,
             "scale": 0.05, "code_version": "deadbeef", "workers": 2},
            {"seq": 8, "ts": 201.0, "type": "cell_cached", "campaign": "c",
             "cell": "k0", "workload": "atax", "scheme": "shm"},
            {"seq": 9, "ts": 201.0, "type": "cell_cached", "campaign": "c",
             "cell": "k1", "workload": "mvt", "scheme": "shm"},
            {"seq": 10, "ts": 201.0, "type": "cell_cached", "campaign": "c",
             "cell": "k2", "workload": "bfs", "scheme": "shm"},
            {"seq": 11, "ts": 202.0, "type": "campaign_finished",
             "campaign": "c", "totals": {}},
        ]
        state = DashboardState.from_events(first + resumed)
        assert (state.done, state.cached, state.completed) == (3, 3, 0)
        assert state.total_cells == 3
        assert state.finished
        assert state.workers == {}

    def test_mid_run_progress_and_eta(self):
        rows = _healthy_run()[:5]  # k2 still in flight, not finished
        state = DashboardState.from_events(rows)
        assert not state.finished
        assert state.running == 1
        assert state.done == 2
        # Pinned clock: 1 executed cell in 10s => 0.1 cells/s; 1 cell
        # remains => 10s ETA.
        now = 110.0
        assert state.throughput(now) == 0.1
        assert state.eta_seconds(now) == 100.0 / 10.0

    def test_faults_counted(self):
        rows = _healthy_run()[:4] + [
            {"seq": 90, "ts": 102.0, "type": "worker_died",
             "campaign": "c", "cell": "k1", "attempt": 1},
            {"seq": 91, "ts": 102.1, "type": "cell_retry",
             "campaign": "c", "cell": "k1", "attempt": 1,
             "reason": "worker_died"},
            {"seq": 92, "ts": 102.5, "type": "cell_timeout",
             "campaign": "c", "cell": "k2", "attempt": 1},
        ]
        state = DashboardState.from_events(rows)
        assert state.deaths == 1
        assert state.retries == 1
        assert state.timeouts == 1


class TestSparkline:
    def test_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        ramp = sparkline([1.0, 2.0, 3.0, 4.0])
        assert ramp[0] == "▁" and ramp[-1] == "█"

    def test_downsampled_to_width(self):
        assert len(sparkline(list(range(1000)), width=24)) == 24


class TestTextRender:
    def test_finished_frame(self):
        state = DashboardState.from_events(_healthy_run())
        frame = render_text(state, now=110.0)
        assert "campaign c" in frame
        assert "3/3" in frame and "finished" in frame
        assert "ok 2" in frame and "cached 1" in frame
        assert "retries 0" in frame
        assert "worker" in frame  # the per-worker health table

    def test_empty_state_renders(self):
        frame = render_text(DashboardState(), now=0.0)
        assert "0/0" in frame


class TestHtmlRender:
    def test_self_contained(self, tmp_path):
        state = DashboardState.from_events(_healthy_run())
        html = render_html(state, now=110.0)
        # No external assets: a CI artifact must render offline.
        assert "http://" not in html and "https://" not in html
        assert "<svg" in html  # runtime sparkline present
        assert "prefers-color-scheme: dark" in html
        assert "campaign c" in html.lower()
        out = write_html(state, tmp_path / "dash.html", now=110.0)
        assert out.read_text(encoding="utf-8") == html

    def test_failed_verdict_wears_icon_not_just_color(self):
        rows = _healthy_run()
        rows[4] = dict(rows[4], type="cell_failed", reason="exception")
        del rows[4]["runtime"]
        html = render_html(DashboardState.from_events(rows), now=110.0)
        assert "&#10007;" in html and "failed" in html

    def test_store_sections(self, tmp_path):
        from tests.obs.test_store import bench_doc, cell, manifest_with

        from repro.obs.store import TelemetryStore

        store = TelemetryStore(tmp_path / "t.db")
        store.record_bench(bench_doc({"m": 100.0}), created_ts=1.0)
        store.record_bench(bench_doc({"m": 110.0}), created_ts=2.0)
        store.record_campaign(manifest_with([cell("k1")]), "c1")
        html = render_html(DashboardState.from_events(_healthy_run()),
                           store=store, now=110.0)
        assert "Bench trend" in html
        assert "Stored campaign history" in html
        assert html.count("<svg") >= 2  # runtimes + the bench trend

    def test_untrusted_strings_escaped(self):
        state = DashboardState()
        state.campaign = "<script>alert(1)</script>"
        html = render_html(state, now=0.0)
        assert "<script>alert" not in html


def _decision_event(seq, cell, flips=2, timeouts=1):
    return {"seq": seq, "ts": 103.5, "type": "cell_decisions",
            "campaign": "c", "cell": cell, "workload": "atax",
            "scheme": "shm", "summary": {
                "decisions_format": 1, "total": 104, "dropped": 0,
                "regions": 9,
                "by_type": {"stream_verdict": {
                    "count": 100, "cost_bytes": 4096.0,
                    "stall_cycles": 160.0}},
                "by_detector": {
                    "streaming": {"decisions": 100, "flips": flips,
                                  "timeouts": timeouts,
                                  "cost_bytes": 4096.0,
                                  "stall_cycles": 160.0},
                    "readonly": {"decisions": 4, "flips": 0,
                                 "timeouts": 0, "cost_bytes": 0.0,
                                 "stall_cycles": 0.0}}}}


class TestDecisionPanel:
    def test_fold_accumulates_across_cells(self):
        rows = _healthy_run() + [_decision_event(7, "k1"),
                                 _decision_event(8, "k2", flips=8)]
        state = DashboardState.from_events(rows)
        assert state.decision_cells == 2
        streaming = state.decisions["streaming"]
        assert streaming["decisions"] == 200
        assert streaming["flips"] == 10
        assert streaming["timeouts"] == 2
        assert state.decisions["readonly"]["decisions"] == 8

    def test_fold_tolerates_decisions_before_terminals(self):
        """Pool spools merge out of order: the decision events can
        land before their cells' terminal rows."""
        rows = _healthy_run()
        reordered = ([rows[0], _decision_event(7, "k1"),
                      _decision_event(8, "k2", flips=8)] + rows[1:])
        a = DashboardState.from_events(
            rows + [_decision_event(7, "k1"),
                    _decision_event(8, "k2", flips=8)])
        b = DashboardState.from_events(reordered)
        assert a.decisions == b.decisions
        assert a.decision_cells == b.decision_cells

    def test_campaign_restart_resets_the_panel(self):
        rows = (_healthy_run() + [_decision_event(7, "k1")]
                + [{"seq": 8, "ts": 200.0, "type": "campaign_started",
                    "campaign": "c", "experiments": ["fig5"], "cells": 1,
                    "scale": 0.1, "code_version": "v", "workers": 1}])
        state = DashboardState.from_events(rows)
        assert state.decisions == {} and state.decision_cells == 0

    def test_text_and_html_render_the_panel(self):
        state = DashboardState.from_events(
            _healthy_run() + [_decision_event(7, "k1")])
        text = render_text(state, now=110.0)
        assert "streaming" in text and "98.0%" in text  # 1 - 2/100
        html = render_html(state, now=110.0)
        assert "Decision provenance" in html
        assert "98.0%" in html

    def test_panel_absent_without_ledger_cells(self):
        html = render_html(DashboardState.from_events(_healthy_run()),
                           now=110.0)
        assert "Decision provenance" not in html
