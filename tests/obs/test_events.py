"""The structured event log: taxonomy, spools, canonical export."""

import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    EventLog,
    EventSchemaError,
    canonical_events,
    encode_event,
    merge_spool,
    read_events,
    spool_event,
    write_canonical,
)


class TestTaxonomy:
    def test_unknown_type_rejected(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        with pytest.raises(EventSchemaError, match="unknown event type"):
            log.emit("cell_exploded", cell="c1")

    def test_missing_required_field_rejected(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        with pytest.raises(EventSchemaError, match="missing required"):
            log.emit("cell_completed", cell="c1", workload="atax")

    def test_cell_scoped_events_require_cell(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        with pytest.raises(EventSchemaError, match="correlation"):
            log.emit("cell_completed", workload="atax", scheme="shm",
                     attempts=1)

    def test_every_type_is_emittable(self, tmp_path):
        """The taxonomy table and the emit validator agree: a row built
        from exactly the required fields passes for every type."""
        log = EventLog(tmp_path / "e.jsonl", campaign="c")
        for event_type, required in EVENT_TYPES.items():
            log.emit(event_type, cell="cell-0",
                     **{name: 1 for name in required})
        assert len(read_events(log.path)) == len(EVENT_TYPES)


class TestEventLog:
    def test_emit_stamps_envelope(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl", campaign="abc",
                       clock=lambda: 42.0)
        row = log.emit("cell_started", cell="c1", worker=7)
        assert row == {"seq": 0, "ts": 42.0, "type": "cell_started",
                       "campaign": "abc", "cell": "c1", "worker": 7}
        row2 = log.emit("cell_cached", cell="c2", workload="atax",
                        scheme="shm")
        assert row2["seq"] == 1

    def test_lines_are_flushed_and_readable_immediately(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl", campaign="c") as log:
            log.emit("cell_started", cell="c1")
            # Not closed yet: the line must already be on disk
            # (live-tailability is what repro dash relies on).
            assert read_events(log.path)[0]["cell"] == "c1"

    def test_append_row_restamps_seq(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl", campaign="c")
        log.emit("cell_started", cell="c1")
        log.append_row({"seq": 999, "ts": 1.0, "type": "cell_started",
                        "cell": "c2", "worker": 4})
        rows = read_events(log.path)
        assert [r["seq"] for r in rows] == [0, 1]
        assert rows[1]["campaign"] == "c"  # inherited at append

    def test_reopened_log_resumes_sequence(self, tmp_path):
        """A resumed campaign reusing its --telemetry dir appends to
        the existing log; seq must continue, not restart at 0 (the
        validator enforces file-wide monotonicity)."""
        path = tmp_path / "e.jsonl"
        with EventLog(path, campaign="c") as log:
            log.emit("cell_started", cell="c1")
            log.emit("cell_completed", cell="c1", workload="atax",
                     scheme="shm", attempts=1)
        with EventLog(path, campaign="c") as log:
            log.emit("cell_cached", cell="c1", workload="atax",
                     scheme="shm")
        assert [r["seq"] for r in read_events(path)] == [0, 1, 2]

    def test_strict_read_raises_on_torn_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"seq": 0, "type": "cell_started"}\n{"seq": 1, "ty')
        with pytest.raises(EventSchemaError, match="bad JSON"):
            read_events(path)
        assert len(read_events(path, strict=False)) == 1


class TestSpools:
    def test_spool_and_merge(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl", campaign="c")
        log.emit("campaign_started", experiments=["e"], cells=1,
                 scale=0.1, code_version="v")
        spool_event(log.spool_dir, "cell_started", cell="c1")
        spool_event(log.spool_dir, "cell_started", cell="c2")
        merged = merge_spool(log)
        assert merged == 2
        rows = read_events(log.path)
        assert [r["seq"] for r in rows] == [0, 1, 2]
        assert {r["cell"] for r in rows[1:]} == {"c1", "c2"}
        assert all("worker" in r for r in rows[1:])
        # The spool directory is consumed.
        assert not log.spool_dir.exists()

    def test_merge_survives_torn_spool_line(self, tmp_path):
        """A worker killed mid-write leaves a truncated final line;
        the merge must keep everything before it and never raise."""
        log = EventLog(tmp_path / "e.jsonl", campaign="c")
        spool_event(log.spool_dir, "cell_started", cell="c1")
        part = next(log.spool_dir.glob("worker-*.jsonl"))
        with open(part, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 1.0, "type": "cell_sta')  # torn
        assert merge_spool(log) == 1
        assert read_events(log.path)[0]["cell"] == "c1"

    def test_merge_without_spool_dir_is_noop(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        assert merge_spool(log) == 0


class TestCanonicalExport:
    def _rows(self, shuffle):
        rows = [
            {"seq": 0, "ts": 10.0, "type": "campaign_started",
             "campaign": "c", "experiments": ["e"], "cells": 2,
             "scale": 0.1, "code_version": "v", "workers": 4},
            {"seq": 1, "ts": 11.0, "type": "cell_started",
             "campaign": "c", "cell": "k1", "worker": 111},
            {"seq": 2, "ts": 11.5, "type": "cell_started",
             "campaign": "c", "cell": "k2", "worker": 222},
            {"seq": 3, "ts": 12.0, "type": "cell_completed",
             "campaign": "c", "cell": "k2", "workload": "b",
             "scheme": "shm", "attempts": 1, "runtime": 0.7},
            {"seq": 4, "ts": 13.0, "type": "cell_completed",
             "campaign": "c", "cell": "k1", "workload": "a",
             "scheme": "shm", "attempts": 1, "runtime": 1.9},
            {"seq": 5, "ts": 14.0, "type": "campaign_finished",
             "campaign": "c", "totals": {"cells": 2},
             "elapsed_seconds": 4.0},
        ]
        if shuffle:  # a different completion order, different hosts
            rows = [rows[0], rows[2], rows[1], rows[4], rows[3], rows[5]]
            rows = [dict(r) for r in rows]
            for i, row in enumerate(rows):
                row["seq"] = i
                row["ts"] = 100.0 + i        # different wall clock
                if "worker" in row:
                    row["worker"] = 900 + i  # different pids
                if "runtime" in row:
                    row["runtime"] += 0.333  # different host speed
        return rows

    def test_volatile_fields_stripped_and_order_restored(self):
        canon = canonical_events(self._rows(shuffle=False))
        assert [r["seq"] for r in canon] == list(range(len(canon)))
        for row in canon:
            for volatile in ("ts", "worker", "runtime", "workers",
                             "elapsed_seconds"):
                assert volatile not in row

    def test_two_executions_export_byte_identically(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_canonical(self._rows(shuffle=False), a)
        write_canonical(self._rows(shuffle=True), b)
        assert a.read_bytes() == b.read_bytes()

    def test_encode_event_is_key_order_independent(self):
        assert (encode_event({"b": 1, "a": 2})
                == encode_event(json.loads('{"a": 2, "b": 1}')))
