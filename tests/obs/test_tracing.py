"""Chrome trace-event collection and export."""

import json

import pytest

from repro.obs.tracing import ChromeTracer


class TestTracks:
    def test_pid_assigned_once_with_metadata(self):
        t = ChromeTracer()
        pid = t.pid("atax/shm")
        assert t.pid("atax/shm") == pid
        names = [e for e in t.events if e["name"] == "process_name"]
        assert len(names) == 1
        assert names[0]["args"]["name"] == "atax/shm"

    def test_distinct_processes_distinct_pids(self):
        t = ChromeTracer()
        assert t.pid("a") != t.pid("b")

    def test_thread_named_once(self):
        t = ChromeTracer()
        t.name_thread("a", 0, "partition 0")
        t.name_thread("a", 0, "partition 0")
        names = [e for e in t.events if e["name"] == "thread_name"]
        assert len(names) == 1


class TestEvents:
    def test_complete_event_shape(self):
        t = ChromeTracer()
        t.complete("a", 3, "mac_verify", ts=100.0, dur=40.0, cat="mee",
                   args={"critical": True})
        ev = t.events[-1]
        assert ev["ph"] == "X"
        assert ev["tid"] == 3
        assert ev["ts"] == 100.0
        assert ev["dur"] == 40.0
        assert ev["cat"] == "mee"
        assert ev["args"] == {"critical": True}

    def test_negative_duration_clamped(self):
        t = ChromeTracer()
        t.complete("a", 0, "x", ts=10.0, dur=-5.0)
        assert t.events[-1]["dur"] == 0.0

    def test_instant_event_shape(self):
        t = ChromeTracer()
        t.instant("a", 1, "victim_hit", ts=7.0, cat="mee")
        ev = t.events[-1]
        assert ev["ph"] == "i"
        assert ev["s"] == "t"

    def test_counter_event_shape(self):
        t = ChromeTracer()
        t.counter("a", "traffic", ts=1.0, values={"data": 3.0, "meta": 1.0})
        ev = t.events[-1]
        assert ev["ph"] == "C"
        assert ev["args"] == {"data": 3.0, "meta": 1.0}


class TestCapAndExport:
    def test_event_cap_drops_and_counts(self):
        t = ChromeTracer(max_events=3)
        t.pid("a")  # one metadata event
        t.complete("a", 0, "x", 0.0, 1.0)
        t.complete("a", 0, "y", 1.0, 1.0)
        t.complete("a", 0, "z", 2.0, 1.0)  # over the cap
        t.instant("a", 0, "i", 3.0)        # over the cap
        assert len(t.events) == 3
        assert t.dropped == 2
        assert t.to_dict()["otherData"]["dropped_events"] == 2

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ChromeTracer(max_events=0)

    def test_write_round_trips_as_json(self, tmp_path):
        t = ChromeTracer()
        t.name_thread("run", 0, "partition 0")
        t.complete("run", 0, "counter_fetch", 5.0, 12.0, cat="mee")
        path = tmp_path / "trace.json"
        t.write(path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        phases = {e["ph"] for e in data["traceEvents"]}
        assert phases == {"M", "X"}
        assert all("pid" in e for e in data["traceEvents"])


class TestSpans:
    def test_begin_end_pair(self):
        t = ChromeTracer()
        t.begin("run", 1, "kernel", ts=10.0, cat="sim",
                args={"idx": 0})
        t.end("run", 1, ts=25.0)
        b, e = t.events[-2], t.events[-1]
        assert b["ph"] == "B" and b["name"] == "kernel" and b["ts"] == 10.0
        assert e["ph"] == "E" and e["ts"] == 25.0
        assert b["pid"] == e["pid"] and b["tid"] == e["tid"] == 1

    def test_spans_nest_as_a_stack(self):
        t = ChromeTracer()
        t.begin("run", 0, "outer", ts=0.0)
        t.begin("run", 0, "inner", ts=5.0)
        t.end("run", 0, ts=8.0)
        t.end("run", 0, ts=20.0)
        phases = [e["ph"] for e in t.events if e["ph"] in "BE"]
        assert phases == ["B", "B", "E", "E"]
        assert not t.to_dict()["traceEvents"][-1]["ts"] == 0.0

    def test_unmatched_end_is_ignored(self):
        t = ChromeTracer()
        t.end("run", 0, ts=5.0)
        assert [e for e in t.events if e["ph"] == "E"] == []


class TestExportEdgeCases:
    def test_empty_trace_exports_and_loads(self, tmp_path):
        t = ChromeTracer()
        doc = t.to_dict()
        assert doc["traceEvents"] == []
        assert doc["otherData"]["dropped_events"] == 0
        path = tmp_path / "empty.json"
        t.write(path)
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_unclosed_span_auto_closed_at_flush(self):
        t = ChromeTracer()
        t.begin("run", 0, "outer", ts=0.0)
        t.begin("run", 0, "inner", ts=5.0)
        t.complete("run", 1, "later", ts=50.0, dur=1.0)
        events = t.to_dict()["traceEvents"]
        ends = [e for e in events if e["ph"] == "E"]
        # Both spans closed, at the latest timestamp the tracer saw
        # (the end of the "later" complete event).
        assert len(ends) == 2
        assert all(e["ts"] == 51.0 for e in ends)
        # Flush is non-destructive: the live event list is untouched.
        assert [e for e in t.events if e["ph"] == "E"] == []

    def test_flush_with_no_open_spans_adds_nothing(self):
        t = ChromeTracer()
        t.begin("run", 0, "span", ts=0.0)
        t.end("run", 0, ts=9.0)
        events = t.to_dict()["traceEvents"]
        assert len([e for e in events if e["ph"] == "E"]) == 1

    def test_out_of_order_complete_events_export_verbatim(self, tmp_path):
        """Trace-event 'X' events need no ts ordering; the tracer must
        pass them through untouched rather than sorting or dropping."""
        t = ChromeTracer()
        t.complete("run", 0, "late", ts=100.0, dur=5.0)
        t.complete("run", 0, "early", ts=10.0, dur=5.0)
        t.complete("run", 0, "zero", ts=0.0, dur=0.0)
        xs = [e for e in t.to_dict()["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["late", "early", "zero"]
        path = tmp_path / "ooo.json"
        t.write(path)
        assert len(json.loads(path.read_text())["traceEvents"]) == 4

    def test_write_is_byte_deterministic(self, tmp_path):
        def build():
            t = ChromeTracer()
            t.complete("run", 0, "x", ts=1.0, dur=2.0, args={"b": 1, "a": 2})
            t.instant("run", 0, "i", ts=3.0)
            return t
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        build().write(a)
        build().write(b)
        assert a.read_bytes() == b.read_bytes()
