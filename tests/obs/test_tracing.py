"""Chrome trace-event collection and export."""

import json

import pytest

from repro.obs.tracing import ChromeTracer


class TestTracks:
    def test_pid_assigned_once_with_metadata(self):
        t = ChromeTracer()
        pid = t.pid("atax/shm")
        assert t.pid("atax/shm") == pid
        names = [e for e in t.events if e["name"] == "process_name"]
        assert len(names) == 1
        assert names[0]["args"]["name"] == "atax/shm"

    def test_distinct_processes_distinct_pids(self):
        t = ChromeTracer()
        assert t.pid("a") != t.pid("b")

    def test_thread_named_once(self):
        t = ChromeTracer()
        t.name_thread("a", 0, "partition 0")
        t.name_thread("a", 0, "partition 0")
        names = [e for e in t.events if e["name"] == "thread_name"]
        assert len(names) == 1


class TestEvents:
    def test_complete_event_shape(self):
        t = ChromeTracer()
        t.complete("a", 3, "mac_verify", ts=100.0, dur=40.0, cat="mee",
                   args={"critical": True})
        ev = t.events[-1]
        assert ev["ph"] == "X"
        assert ev["tid"] == 3
        assert ev["ts"] == 100.0
        assert ev["dur"] == 40.0
        assert ev["cat"] == "mee"
        assert ev["args"] == {"critical": True}

    def test_negative_duration_clamped(self):
        t = ChromeTracer()
        t.complete("a", 0, "x", ts=10.0, dur=-5.0)
        assert t.events[-1]["dur"] == 0.0

    def test_instant_event_shape(self):
        t = ChromeTracer()
        t.instant("a", 1, "victim_hit", ts=7.0, cat="mee")
        ev = t.events[-1]
        assert ev["ph"] == "i"
        assert ev["s"] == "t"

    def test_counter_event_shape(self):
        t = ChromeTracer()
        t.counter("a", "traffic", ts=1.0, values={"data": 3.0, "meta": 1.0})
        ev = t.events[-1]
        assert ev["ph"] == "C"
        assert ev["args"] == {"data": 3.0, "meta": 1.0}


class TestCapAndExport:
    def test_event_cap_drops_and_counts(self):
        t = ChromeTracer(max_events=3)
        t.pid("a")  # one metadata event
        t.complete("a", 0, "x", 0.0, 1.0)
        t.complete("a", 0, "y", 1.0, 1.0)
        t.complete("a", 0, "z", 2.0, 1.0)  # over the cap
        t.instant("a", 0, "i", 3.0)        # over the cap
        assert len(t.events) == 3
        assert t.dropped == 2
        assert t.to_dict()["otherData"]["dropped_events"] == 2

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ChromeTracer(max_events=0)

    def test_write_round_trips_as_json(self, tmp_path):
        t = ChromeTracer()
        t.name_thread("run", 0, "partition 0")
        t.complete("run", 0, "counter_fetch", 5.0, 12.0, cat="mee")
        path = tmp_path / "trace.json"
        t.write(path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        phases = {e["ph"] for e in data["traceEvents"]}
        assert phases == {"M", "X"}
        assert all("pid" in e for e in data["traceEvents"])
