"""The decision ledger: taxonomy, feature vectors, exports, validation.

Unit tests pin the provenance row schema (the learned-policy work
consumes it as training input) and the analytic cost attribution;
integration tests drive the pssm counter family end to end with a
set-conflict workload that actually overflows minor counters.
"""

from __future__ import annotations

import pytest

from repro.common.types import Pattern
from repro.core.streaming import Verdict
from repro.obs.decisions import (
    DECISION_TYPES,
    MAX_ROWS,
    NULL_LEDGER,
    DecisionLedger,
    NullDecisionLedger,
    ROW_FIELDS,
    _mask_features,
)
from repro.obs.validate import ValidationError, validate_decisions


def _ledger(**kwargs) -> DecisionLedger:
    led = DecisionLedger(**kwargs)
    # 8-cycle request overhead, 32 B/cycle channel, 32-block chunks.
    led.configure(request_overhead=8.0, bytes_per_cycle=32.0,
                  blocks_per_chunk=32)
    led.begin_run("wl/scheme")
    return led


def _verdict(chunk=7, pattern=Pattern.STREAM, predicted=Pattern.STREAM,
             **kwargs) -> Verdict:
    defaults = dict(had_write=False, timed_out=False, accesses=32,
                    touched_mask=(1 << 32) - 1, evicted=-1)
    defaults.update(kwargs)
    return Verdict(chunk_id=chunk, pattern=pattern, predicted=predicted,
                   **defaults)


class TestTaxonomy:
    def test_every_type_maps_to_a_detector_family(self):
        assert set(DECISION_TYPES.values()) == {
            "readonly", "streaming", "counter", "mac", "learned"}

    def test_learned_family_types(self):
        learned = {t for t, fam in DECISION_TYPES.items()
                   if fam == "learned"}
        assert learned == {"learned_promote", "learned_demote",
                           "learned_verdict", "arm_select"}

    def test_row_schema_is_stable(self):
        # Documented in docs/observability.md; downstream consumers
        # (validate, reporting, the dashboard fold) key off these.
        assert ROW_FIELDS == (
            "seq", "run", "cycle", "kernel", "partition", "type",
            "detector", "region", "cause", "cost_bytes",
            "cost_transfers", "stall_cycles", "fv")


class TestMaskFeatures:
    def test_empty_mask(self):
        assert _mask_features(0) == (0.0, 0)

    def test_contiguous_run_is_fully_regular(self):
        assert _mask_features(0b111) == (1.0, 3)
        assert _mask_features(0b111000) == (1.0, 3)  # offset irrelevant

    def test_gappy_mask_scores_popcount_over_span(self):
        # bits {0, 4}: popcount 2 over a span of 5.
        stride, popcount = _mask_features(0b10001)
        assert popcount == 2
        assert stride == pytest.approx(2 / 5)

    def test_single_block_is_not_a_stride(self):
        # One touched block carries no stride evidence: regularity is
        # 0.0, not the 1.0 the ungated contiguity check used to give —
        # a lone block and a full streaming run must not look alike to
        # the learned features.
        assert _mask_features(0b1) == (0.0, 1)
        assert _mask_features(0b1000) == (0.0, 1)  # offset irrelevant
        # Two adjacent blocks are the smallest fully regular run.
        assert _mask_features(0b11) == (1.0, 2)


class TestNullLedger:
    def test_disabled_and_inert(self):
        assert NullDecisionLedger.enabled is False
        assert NULL_LEDGER.ro_mark(0.0, 0, 0, 1, "x") is None
        assert NULL_LEDGER.begin_run("anything") is None

    def test_dunders_still_raise(self):
        with pytest.raises(AttributeError):
            NULL_LEDGER.__getstate_nonsense__  # noqa: B018


class TestAppendPath:
    def test_stall_model(self):
        led = _ledger()
        # 2 transfers * 8 + 64 B / 32 B-per-cycle = 18 cycles.
        assert led.stall_cycles(64.0, 2) == pytest.approx(18.0)

    def test_row_contents_and_cost_attribution(self):
        led = _ledger()
        led.ctr_overflow(100.0, partition=3, kernel=1, block=42,
                         line=5, cost_bytes=64.0, cost_transfers=2)
        (row,) = led.rows
        assert all(field in row for field in ROW_FIELDS)
        assert (row["type"], row["detector"]) == ("ctr_overflow", "counter")
        assert (row["region"], row["block"]) == (5, 42)
        assert row["stall_cycles"] == pytest.approx(18.0)
        assert len(row["fv"]) == 11

    def test_feature_vector_tracks_region_history(self):
        led = _ledger()
        led.stream_verdict(100.0, 0, 0, _verdict(), 0.0, 0)
        # Second decision 5 cycles later: gap 5 lands in bucket 1
        # ([4, 16)); a write flips the read ratio to 0.5.
        led.stream_verdict(105.0, 0, 0,
                           _verdict(had_write=True, touched_mask=0b10001),
                           0.0, 0)
        first, second = led.rows
        assert first["fv"][0] == 1.0        # all-read so far
        assert second["fv"][0] == 0.5       # one write in two decisions
        assert second["fv"][2] == pytest.approx(
            (32 / 32 + 2 / 32) / 2)          # mean touch density
        assert second["fv"][3 + 1] == 1.0   # the single gap, bucket 1

    def test_regions_are_independent(self):
        led = _ledger()
        led.ro_mark(10.0, 0, 0, 1, "host_copy")
        led.ro_mark(20.0, 1, 0, 1, "host_copy")  # other partition
        a, b = led.rows
        # No cross-region gap: each region saw its first decision.
        assert a["fv"][3:] == [0.0] * 8
        assert b["fv"][3:] == [0.0] * 8

    def test_begin_run_resets_features_not_rows(self):
        led = _ledger()
        led.ro_mark(10.0, 0, 0, 1, "host_copy")
        led.begin_run("wl/other")
        led.ro_mark(5.0, 0, 0, 1, "host_copy")
        assert [r["seq"] for r in led.rows] == [0, 1]
        # The second run's row sees a fresh region (no gap histogram).
        assert led.rows[1]["fv"][3:] == [0.0] * 8

    def test_overflow_degrades_to_counted_drop(self):
        led = _ledger(max_rows=1)
        led.ro_mark(1.0, 0, 0, 1, "host_copy")
        led.ro_mark(2.0, 0, 0, 2, "host_copy")
        assert len(led.rows) == 1
        assert led.dropped == 1
        assert led.summary()["dropped"] == 1
        with pytest.raises(ValueError):
            DecisionLedger(max_rows=0)
        assert MAX_ROWS >= 100_000

    def test_reset(self):
        led = _ledger()
        led.ro_mark(1.0, 0, 0, 1, "host_copy")
        led.reset()
        assert not led.rows and led.dropped == 0
        led.ro_mark(1.0, 0, 0, 1, "host_copy")
        assert led.rows[0]["seq"] == 0


class TestSummary:
    def _two_run_ledger(self) -> DecisionLedger:
        led = _ledger()
        led.begin_run("wl/a")
        led.stream_verdict(10.0, 0, 0,
                           _verdict(pattern=Pattern.RANDOM,
                                    predicted=Pattern.STREAM,
                                    timed_out=True),
                           64.0, 1)
        led.begin_run("wl/b")
        led.ctr_overflow(10.0, 0, 0, block=1, line=2,
                         cost_bytes=128.0, cost_transfers=2)
        return led

    def test_run_filter(self):
        led = self._two_run_ledger()
        assert led.summary()["total"] == 2
        a = led.summary(run="wl/a")
        assert a["total"] == 1 and a["regions"] == 1
        assert set(a["by_type"]) == {"stream_verdict"}
        assert set(led.summary(run="wl/b")["by_type"]) == {"ctr_overflow"}

    def test_flips_and_timeouts_counted(self):
        led = self._two_run_ledger()
        streaming = led.summary()["by_detector"]["streaming"]
        assert streaming["flips"] == 1
        assert streaming["timeouts"] == 1


class TestExports:
    def test_jsonl_round_trip_validates(self, tmp_path):
        led = self._populated()
        path = led.write_jsonl(tmp_path / "d.jsonl")
        report = validate_decisions(path)
        assert report["rows"] == len(led.rows)
        assert report["dropped"] == 0
        assert path.read_text(encoding="utf-8") == led.export_text()

    def test_validator_rejects_unknown_type(self, tmp_path):
        led = self._populated()
        led.rows[0]["type"] = "coin_flip"
        path = led.write_jsonl(tmp_path / "bad.jsonl")
        with pytest.raises(ValidationError, match="coin_flip"):
            validate_decisions(path)

    def test_trace_export_spans_and_instants(self):
        led = self._populated()
        calls = []

        class Tracer:
            def complete(self, *args, **kwargs):
                calls.append(("complete", args, kwargs))

            def instant(self, *args, **kwargs):
                calls.append(("instant", args, kwargs))

        led.export_trace(Tracer())
        kinds = [kind for kind, _, _ in calls]
        # Charged decisions become spans, free ones become instants.
        assert "complete" in kinds and "instant" in kinds
        assert len(calls) == len(led.rows)

    @staticmethod
    def _populated() -> DecisionLedger:
        led = _ledger()
        led.ro_mark(1.0, 0, 0, 1, "host_copy")
        led.stream_verdict(20.0, 0, 0, _verdict(), 0.0, 0)
        led.ctr_overflow(30.0, 1, 0, block=9, line=3,
                         cost_bytes=64.0, cost_transfers=1)
        return led


class TestEndToEnd:
    def test_ctr_hammer_overflows_pssm_family_counters(self):
        """The acceptance grid: a set-conflict workload must produce
        counter-family decisions (ctr_overflow) under pssm, and the
        richer shm stack adds readonly + streaming decisions."""
        from repro.cli import CTR_HAMMER_SPEC
        from repro.sim.runner import Runner
        from repro.workloads.compose import build_workload

        ledger = DecisionLedger()
        runner = Runner(scale=0.1, ledger=ledger)
        runner.add_workload(build_workload(CTR_HAMMER_SPEC, scale=1.0))
        for scheme in ("pssm", "shm"):
            runner.run("ctr-hammer", scheme)

        pssm = ledger.summary(run="ctr-hammer/pssm")
        assert pssm["by_type"].get("ctr_overflow", {}).get("count", 0) > 0
        assert pssm["by_detector"]["counter"]["stall_cycles"] > 0

        shm = ledger.summary(run="ctr-hammer/shm")
        assert {"counter", "readonly", "streaming"} <= set(
            shm["by_detector"])

    def test_suite_run_decisions_validate(self, tmp_path):
        from repro.sim.runner import Runner

        ledger = DecisionLedger()
        Runner(scale=0.05, ledger=ledger).run("atax", "shm")
        report = validate_decisions(ledger.write_jsonl(tmp_path / "a.jsonl"))
        assert report["rows"] > 0
        assert set(report["types"]) <= set(DECISION_TYPES)
