"""Observer integration: read-only observation, exact reconstruction,
trace coverage and the export/validate round trip."""

import json
import pickle

import pytest

from repro.common.config import GPUConfig
from repro.common.types import Scheme
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.obs.tracing import ChromeTracer
from repro.obs.validate import (
    ValidationError,
    validate_metrics,
    validate_trace,
)
from repro.sim.runner import Runner
from tests.conftest import build_tiny_streaming


class TestNullObserver:
    def test_disabled(self):
        assert NULL_OBSERVER.enabled is False

    def test_any_hook_is_a_noop(self):
        assert NULL_OBSERVER.traffic(0.0, 0, "data", 64, False) is None
        assert NULL_OBSERVER.some_future_hook(1, 2, 3, key="x") is None

    def test_dunder_lookup_still_raises(self):
        # Missing dunders must raise (protocol probes like pickle's
        # __reduce_ex__ machinery rely on AttributeError, not a noop).
        with pytest.raises(AttributeError):
            getattr(NULL_OBSERVER, "__wrapped__")

    def test_picklable(self):
        # sim.parallel ships runners (holding NULL_OBSERVER) to workers.
        clone = pickle.loads(pickle.dumps(NullObserver()))
        assert clone.enabled is False


@pytest.fixture(scope="module")
def observed_run():
    """One tiny SHM run, observed; plus the same run unobserved."""
    workload = build_tiny_streaming()
    plain = Runner()
    plain.add_workload(workload)
    bare = plain.run(workload.name, Scheme.SHM)

    observer = Observer(tracer=ChromeTracer(), window_cycles=1000.0)
    runner = Runner(observer=observer)
    runner.add_workload(workload)
    result = runner.run(workload.name, Scheme.SHM)
    return observer, result, bare


class TestReadOnlyObservation:
    def test_observation_does_not_change_the_simulation(self, observed_run):
        observer, result, bare = observed_run
        assert result.cycles == bare.cycles
        assert result.instructions == bare.instructions
        assert result.traffic.data_bytes == bare.traffic.data_bytes
        assert result.traffic.counter_bytes == bare.traffic.counter_bytes
        assert result.traffic.mac_bytes == bare.traffic.mac_bytes
        assert result.traffic.bmt_bytes == bare.traffic.bmt_bytes
        assert result.l2.misses == bare.l2.misses


class TestCustomSchemeRunLabels:
    def test_custom_scheme_keeps_its_own_run_label(self):
        # A custom registry scheme observed alongside its base design
        # must land under its registry name: base-enum labels used to
        # collide the two runs, doubling every window sum and failing
        # metrics validation.
        from repro.core.policies import register_scheme

        register_scheme("shm_label_test", base=Scheme.SHM)
        workload = build_tiny_streaming()
        observer = Observer(window_cycles=1000.0)
        runner = Runner(observer=observer)
        runner.add_workload(workload)
        runner.run(workload.name, "shm_label_test")
        runner.run(workload.name, Scheme.SHM)
        assert f"{workload.name}/shm_label_test" in observer.series
        assert f"{workload.name}/shm" in observer.series


class TestExactReconstruction:
    def test_window_totals_match_aggregate_traffic(self, observed_run):
        observer, result, _ = observed_run
        run = f"{result.workload}/{result.scheme.value}"
        totals = observer.series[run].totals()
        assert totals["data_bytes"] == result.traffic.data_bytes
        assert totals["ctr_bytes"] == result.traffic.counter_bytes
        assert totals["mac_bytes"] == result.traffic.mac_bytes
        assert totals["bmt_bytes"] == result.traffic.bmt_bytes
        assert totals["mispred_bytes"] == result.traffic.misprediction_bytes

    def test_registry_counters_match_aggregate_traffic(self, observed_run):
        observer, result, _ = observed_run
        snap = observer.metrics.snapshot()["counters"]
        assert snap["traffic.data_bytes"] == result.traffic.data_bytes
        assert snap["traffic.ctr_bytes"] == result.traffic.counter_bytes

    def test_latency_histogram_matches_result(self, observed_run):
        observer, result, _ = observed_run
        hist = observer.metrics.histogram("sim.demand_read_latency")
        assert hist.count == result.latency.count
        assert hist.total == pytest.approx(result.latency.total_cycles)
        assert hist.percentile(95) == result.latency.p95


class TestTraceCoverage:
    def test_mee_events_on_every_partition(self, observed_run):
        observer, _, _ = observed_run
        partitions = GPUConfig().num_partitions
        mee_tids = {e["tid"] for e in observer.tracer.events
                    if e.get("cat") == "mee" and e["ph"] in ("X", "i")}
        assert set(range(partitions)) <= mee_tids

    def test_calibration_rounds_traced(self, observed_run):
        observer, _, _ = observed_run
        rounds = [e for e in observer.tracer.events
                  if e.get("cat") == "runner" and e["ph"] == "X"]
        assert rounds
        assert observer.metrics.counter("runner.calibration_rounds").value \
            == len(rounds)

    def test_frontend_stall_spans_present(self, observed_run):
        observer, _, _ = observed_run
        stalls = [e for e in observer.tracer.events
                  if e.get("name") == "frontend_stall"]
        assert stalls
        assert all(e["dur"] >= 0 for e in stalls)


class TestCacheBypass:
    def test_observer_disables_result_caching(self):
        workload = build_tiny_streaming()
        observer = Observer(timeseries=False)
        runner = Runner(observer=observer)
        runner.add_workload(workload)
        runner.run(workload.name, Scheme.PSSM)
        assert (workload.name, Scheme.PSSM) not in runner._results


class TestExportRoundTrip:
    def test_written_files_pass_validation(self, observed_run, tmp_path):
        observer, _, _ = observed_run
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        observer.write_trace(trace)
        rows = observer.write_metrics(metrics)
        assert rows >= 4  # meta + windows + summary + registry

        partitions = GPUConfig().num_partitions
        info = validate_trace(trace, expect_partitions=partitions)
        assert info["events"] > 0
        info = validate_metrics(metrics)
        assert info["runs"]

    def test_metrics_rows_structure(self, observed_run):
        observer, result, _ = observed_run
        rows = observer.metrics_rows()
        assert rows[0]["type"] == "meta"
        assert rows[-1]["type"] == "metrics"
        types = {r["type"] for r in rows}
        assert types == {"meta", "window", "summary", "metrics"}
        run = f"{result.workload}/{result.scheme.value}"
        assert run in rows[0]["runs"]

    def test_write_trace_without_tracer_raises(self, tmp_path):
        with pytest.raises(ValueError):
            Observer().write_trace(tmp_path / "x.json")


class TestValidatorFailures:
    def test_trace_not_json(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text("not json")
        with pytest.raises(ValidationError):
            validate_trace(p)

    def test_trace_empty_events(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValidationError):
            validate_trace(p)

    def test_trace_missing_partition(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 0, "cat": "mee",
             "name": "counter_fetch", "ts": 0, "dur": 1},
        ]}))
        with pytest.raises(ValidationError):
            validate_trace(p, expect_partitions=2)

    def test_metrics_missing_meta_row(self, tmp_path):
        p = tmp_path / "m.jsonl"
        p.write_text(json.dumps({"type": "summary", "run": "a"}) + "\n")
        with pytest.raises(ValidationError):
            validate_metrics(p)

    def test_metrics_sum_mismatch(self, tmp_path):
        window = {"type": "window", "run": "a", "data_bytes": 100,
                  "ctr_bytes": 0, "mac_bytes": 0, "bmt_bytes": 0,
                  "mispred_bytes": 0}
        summary = {"type": "summary", "run": "a", "traffic": {
            "data": 999, "ctr": 0, "mac": 0, "bmt": 0, "mispred": 0}}
        p = tmp_path / "m.jsonl"
        p.write_text("\n".join(json.dumps(r) for r in (
            {"type": "meta"}, window, summary)) + "\n")
        with pytest.raises(ValidationError):
            validate_metrics(p)
