"""Metrics primitives: counters, gauges, log-histogram percentiles."""

import math
import random

import pytest

from repro.obs.metrics import (
    HIST_BASE,
    HIST_BUCKETS,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge_last_value_wins(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestBucketing:
    def test_small_values_in_bucket_zero(self):
        assert LogHistogram.bucket_index(0.0) == 0
        assert LogHistogram.bucket_index(0.5) == 0
        assert LogHistogram.bucket_index(1.0) == 0

    def test_buckets_are_monotone(self):
        values = [1.5, 2.0, 10.0, 100.0, 1e6, 1e12]
        indices = [LogHistogram.bucket_index(v) for v in values]
        assert indices == sorted(indices)
        assert all(0 < i < HIST_BUCKETS for i in indices)

    def test_bucket_upper_bound_contains_value(self):
        for v in (1.3, 7.0, 523.0, 9e5):
            idx = LogHistogram.bucket_index(v)
            assert HIST_BASE ** (idx - 1) < v <= HIST_BASE ** idx + 1e-9

    def test_huge_value_clamps_to_last_bucket(self):
        assert LogHistogram.bucket_index(1e300) == HIST_BUCKETS - 1

    def test_negative_value_rejected(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.record(-1.0)


class TestPercentiles:
    def test_empty_histogram(self):
        h = LogHistogram()
        assert h.percentile(50) == 0.0
        assert h.average == 0.0
        assert h.count == 0

    def test_single_value(self):
        h = LogHistogram()
        h.record(100.0)
        # Clamped to observed min/max: a one-sample histogram is exact.
        assert h.percentile(0) == 100.0
        assert h.percentile(50) == 100.0
        assert h.percentile(100) == 100.0

    def test_percentile_within_bucket_resolution(self):
        # Against the true order statistic of a log-uniform sample.
        rng = random.Random(42)
        samples = sorted(math.exp(rng.uniform(0, 10)) for _ in range(5000))
        h = LogHistogram()
        for s in samples:
            h.record(s)
        for p in (50, 95, 99):
            true = samples[min(len(samples) - 1,
                               math.ceil(len(samples) * p / 100) - 1)]
            est = h.percentile(p)
            # One log-bucket (~19 %) of tolerance either side.
            assert true / HIST_BASE <= est <= true * HIST_BASE

    def test_percentiles_monotone(self):
        rng = random.Random(7)
        h = LogHistogram()
        for _ in range(1000):
            h.record(rng.uniform(1, 1e6))
        ps = [h.percentile(p) for p in (1, 25, 50, 75, 95, 99, 100)]
        assert ps == sorted(ps)

    def test_out_of_range_percentile(self):
        h = LogHistogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_merge(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (1.0, 10.0, 100.0):
            a.record(v)
        for v in (5.0, 50.0):
            b.record(v)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(166.0)
        assert a.min_value == 1.0
        assert a.max_value == 100.0

    def test_snapshot_keys(self):
        h = LogHistogram("lat")
        h.record(8.0)
        h.record(32.0)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "avg", "min", "max",
                             "p50", "p95", "p99"}
        assert snap["count"] == 2
        assert snap["sum"] == 40.0
        assert snap["min"] == 8.0
        assert snap["max"] == 32.0


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("depth").set(7.0)
        reg.histogram("lat").record(16.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_names(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        assert sorted(reg.names()) == ["c", "g", "h"]


class TestMerge:
    def test_histogram_merge(self):
        a, b = LogHistogram("a"), LogHistogram("b")
        for v in (2.0, 8.0):
            a.record(v)
        for v in (32.0, 0.5):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.min_value == 0.5
        assert a.max_value == 32.0
        assert a.total == 42.5

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(3)
        b.counter("hits").inc(4)
        b.counter("misses").inc(1)
        a.gauge("depth").set(2.0)
        b.gauge("depth").set(9.0)
        a.histogram("lat").record(8.0)
        b.histogram("lat").record(16.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"] == {"hits": 7, "misses": 1}
        assert snap["gauges"] == {"depth": 9.0}  # last value wins
        assert snap["histograms"]["lat"]["count"] == 2

    def test_state_round_trip(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        src.gauge("g").set(1.5)
        for v in (1.0, 100.0, 4096.0):
            src.histogram("h").record(v)
        dst = MetricsRegistry()
        dst.merge_state(src.state())
        assert dst.snapshot() == src.snapshot()
        # State is JSON-safe (no inf, no non-string keys).
        import json
        json.dumps(src.state())

    def test_empty_histogram_state_round_trip(self):
        src = MetricsRegistry()
        src.histogram("h")  # registered, never recorded
        state = src.state()
        assert state["histograms"]["h"]["min"] is None
        dst = MetricsRegistry()
        dst.merge_state(state)
        assert dst.histogram("h").count == 0
        assert dst.histogram("h").min_value == math.inf

    def test_merge_state_accumulates(self):
        src = MetricsRegistry()
        src.histogram("h").record(7.0)
        dst = MetricsRegistry()
        dst.merge_state(src.state())
        dst.merge_state(src.state())
        assert dst.histogram("h").count == 2
        assert dst.histogram("h").total == 14.0


class TestDeterministicOrdering:
    def test_names_sorted_regardless_of_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        reg.gauge("m")
        reg.histogram("b")
        assert list(reg.names()) == ["a", "z", "m", "b"]

    def test_snapshot_insertion_order_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()["counters"]) == ["a", "z"]
        assert list(reg.state()["counters"]) == ["a", "z"]
