"""The persistent telemetry store: atomic rows, history, rolling
baselines, deterministic export."""

import sqlite3

import pytest

from repro.obs.store import STORE_FORMAT, TelemetryStore


def manifest_with(cells, campaign="cafe00000001", code="v1",
                  experiments=("exp-a",)):
    """A minimal campaign manifest the store can record."""
    return {
        "campaign_format": 1,
        "campaign": campaign,
        "code_version": code,
        "scale": 0.05,
        "experiments": {
            name: {"cells": list(cells)} for name in experiments
        },
        "totals": {"cells": len(cells), "failed": 0},
        "elapsed_seconds": 1.5,
    }


def cell(key, status="ok", cached=False, attempts=1):
    return {"key": key, "workload": "atax", "scheme": "shm",
            "kind": "run", "series": "shm", "status": status,
            "cached": cached, "attempts": attempts, "runtime_s": 0.5}


def bench_doc(medians, git="deadbeef"):
    return {
        "bench_format": 1,
        "environment": {"git_sha": git, "python": "3"},
        "config": {"smoke": True},
        "benchmarks": {
            name: {"kind": "micro", "unit": "ns/op",
                   "stats": {"median": m, "min": m, "mad": 0.0,
                             "mean": m, "max": m}}
            for name, m in medians.items()
        },
    }


class TestCampaignRows:
    def test_record_and_history(self, tmp_path):
        store = TelemetryStore(tmp_path / "t.db")
        store.record_campaign(manifest_with([cell("k1"), cell("k2")]),
                              "cafe00000001", created_ts=100.0)
        assert store.cell_count() == 2
        (run,) = store.campaign_history()
        assert run["campaign"] == "cafe00000001"
        assert run["experiments"] == ["exp-a"]
        assert run["totals"]["cells"] == 2

    def test_cell_history_newest_first(self, tmp_path):
        store = TelemetryStore(tmp_path / "t.db")
        store.record_campaign(manifest_with([cell("k1")], code="v1"),
                              "c1", created_ts=100.0)
        store.record_campaign(manifest_with([cell("k1", cached=True)],
                                            code="v2"),
                              "c1", created_ts=200.0)
        history = store.cell_history("k1")
        assert [h["code_version"] for h in history] == ["v2", "v1"]
        assert history[0]["cached"] == 1

    def test_record_is_all_or_nothing(self, tmp_path):
        """A record that dies mid-transaction leaves zero rows — the
        "no partial row" guarantee the worker-crash telemetry test
        relies on."""
        store = TelemetryStore(tmp_path / "t.db")
        bad = manifest_with([cell("k1"), {"broken": True}])
        with pytest.raises(KeyError):
            store.record_campaign(bad, "c1")
        assert store.cell_count() == 0
        assert store.campaign_history() == []

    def test_format_version_guard(self, tmp_path):
        path = tmp_path / "t.db"
        TelemetryStore(path).record_campaign(
            manifest_with([cell("k1")]), "c1")
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version={STORE_FORMAT + 7}")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="telemetry store format"):
            TelemetryStore(path).cell_count()


class TestBenchRows:
    def test_history_newest_first(self, tmp_path):
        store = TelemetryStore(tmp_path / "t.db")
        store.record_bench(bench_doc({"a": 100.0}, git="r1"),
                           created_ts=1.0)
        store.record_bench(bench_doc({"a": 120.0}, git="r2"),
                           created_ts=2.0)
        assert store.bench_names() == ["a"]
        history = store.bench_history("a")
        assert [h["git_rev"] for h in history] == ["r2", "r1"]

    def test_rolling_median_absorbs_one_noisy_run(self, tmp_path):
        store = TelemetryStore(tmp_path / "t.db")
        for i, median in enumerate([100.0, 101.0, 250.0]):
            store.record_bench(bench_doc({"a": median}),
                               created_ts=float(i))
        assert store.rolling_median("a") == 101.0
        assert store.rolling_median("missing") is None

    def test_rolling_baseline_is_comparable(self, tmp_path):
        from repro.perf.compare import STATUS_REGRESSION, compare_docs

        store = TelemetryStore(tmp_path / "t.db")
        store.record_bench(bench_doc({"a": 100.0}), created_ts=1.0)
        baseline = store.rolling_baseline()
        (row,) = compare_docs(baseline, bench_doc({"a": 300.0}))
        assert row.status == STATUS_REGRESSION

    def test_window_bounds_the_rolling_median(self, tmp_path):
        store = TelemetryStore(tmp_path / "t.db")
        for i, median in enumerate([10.0, 10.0, 10.0, 100.0, 100.0,
                                    100.0]):
            store.record_bench(bench_doc({"a": median}),
                               created_ts=float(i))
        # window 3 sees only the newest three (all 100s).
        assert store.rolling_median("a", window=3) == 100.0


class TestExport:
    def test_export_excludes_volatile_columns(self, tmp_path):
        store = TelemetryStore(tmp_path / "t.db")
        store.record_campaign(manifest_with([cell("k1")]), "c1",
                              created_ts=123.0)
        doc = store.export()
        assert doc["store_format"] == STORE_FORMAT
        for row in doc["campaigns"] + doc["cells"] + doc["bench"]:
            assert "created_ts" not in row
            assert "id" not in row
            assert "runtime_s" not in row
            assert "elapsed_s" not in row

    def test_identical_content_exports_byte_identically(self, tmp_path):
        """Two stores recording the same campaign at different times
        (different timestamps, different row interleavings) export the
        same bytes — the determinism contract."""
        a = TelemetryStore(tmp_path / "a.db")
        b = TelemetryStore(tmp_path / "b.db")
        cells = [cell("k1"), cell("k2")]
        a.record_campaign(manifest_with(cells), "c1", created_ts=1.0)
        b.record_campaign(manifest_with(list(reversed(cells))), "c1",
                          created_ts=999.0)
        assert a.export_text() == b.export_text()

    def test_write_export(self, tmp_path):
        store = TelemetryStore(tmp_path / "t.db")
        store.record_campaign(manifest_with([cell("k1")]), "c1")
        out = store.write_export(tmp_path / "export.json")
        assert out.read_text() == store.export_text()
