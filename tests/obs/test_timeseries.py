"""Cycle-window samplers: bucketing, derived rates, exact totals."""

import pytest

from repro.obs.timeseries import KIND_COLUMNS, WindowedSeries


def make(window=100.0, partitions=2, run="w/s"):
    return WindowedSeries(window, partitions, run=run)


class TestConstruction:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedSeries(0.0, 1)

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            WindowedSeries(100.0, 0)


class TestBucketing:
    def test_events_land_in_their_window(self):
        s = make()
        s.traffic(10.0, "data", 128)
        s.traffic(150.0, "data", 64)
        rows = s.finalize()
        assert [r["window"] for r in rows] == [0, 1]
        assert rows[0]["data_bytes"] == 128
        assert rows[1]["data_bytes"] == 64
        assert rows[0]["start_cycle"] == 0.0
        assert rows[0]["end_cycle"] == 100.0

    def test_window_boundary_goes_to_upper_window(self):
        s = make()
        s.traffic(100.0, "data", 1)
        assert s.finalize()[0]["window"] == 1

    def test_out_of_order_events(self):
        # Completions overtake issues in the simulator; rows must come
        # out sorted regardless of arrival order.
        s = make()
        s.traffic(950.0, "ctr", 64)
        s.traffic(50.0, "data", 128)
        s.traffic(450.0, "mac", 8)
        assert [r["window"] for r in s.finalize()] == [0, 4, 9]

    def test_negative_cycle_clamps_to_window_zero(self):
        s = make()
        s.traffic(-5.0, "data", 32)
        assert s.finalize()[0]["window"] == 0

    def test_all_kinds_have_columns(self):
        s = make()
        for kind in KIND_COLUMNS:
            s.traffic(0.0, kind, 10)
        row = s.finalize()[0]
        for column in KIND_COLUMNS.values():
            assert row[column] == 10

    def test_unknown_kind_counts_as_data(self):
        s = make()
        s.traffic(0.0, "mystery", 7)
        assert s.finalize()[0]["data_bytes"] == 7


class TestDerivedRates:
    def test_l2_miss_rate(self):
        s = make()
        s.l2_access(0.0, miss=True)
        s.l2_access(0.0, miss=False)
        s.l2_access(0.0, miss=False)
        s.l2_access(0.0, miss=True)
        row = s.finalize()[0]
        assert row["l2_accesses"] == 4
        assert row["l2_misses"] == 2
        assert row["l2_miss_rate"] == pytest.approx(0.5)

    def test_mdc_hit_rate(self):
        s = make()
        s.mdc_access(0.0, hit=True)
        s.mdc_access(0.0, hit=True)
        s.mdc_access(0.0, hit=False)
        s.mdc_access(0.0, hit=True)
        assert s.finalize()[0]["mdc_hit_rate"] == pytest.approx(0.75)

    def test_victim_probes(self):
        s = make()
        s.victim_probe(0.0, hit=True)
        s.victim_probe(0.0, hit=False)
        row = s.finalize()[0]
        assert row["victim_probes"] == 2
        assert row["victim_hits"] == 1

    def test_avg_read_latency(self):
        s = make()
        s.read_latency(0.0, 100.0)
        s.read_latency(0.0, 300.0)
        assert s.finalize()[0]["avg_read_latency"] == pytest.approx(200.0)

    def test_stall_attributed_to_start_window(self):
        s = make()
        s.stall(90.0, 140.0)
        rows = s.finalize()
        assert len(rows) == 1
        assert rows[0]["window"] == 0
        assert rows[0]["stall_cycles"] == pytest.approx(50.0)

    def test_dram_utilization(self):
        s = make(window=100.0, partitions=2)
        # Partition 0 busy half the window, partition 1 idle.
        s.dram(0, arrival=0.0, start=10.0, busy_until=60.0)
        row = s.finalize()[0]
        assert row["dram_utilization"][0] == pytest.approx(0.5)
        assert row["dram_utilization"][1] == 0.0
        assert row["dram_utilization_mean"] == pytest.approx(0.25)
        assert row["dram_wait"][0] == pytest.approx(10.0)
        assert row["dram_requests"] == [1, 0]

    def test_utilization_capped_at_one(self):
        s = make(window=100.0, partitions=1)
        s.dram(0, arrival=0.0, start=0.0, busy_until=250.0)
        assert s.finalize()[0]["dram_utilization"] == [1.0]

    def test_empty_window_defaults(self):
        s = make()
        s.l2_access(0.0, miss=False)  # touch one row, rates with 0 denominators
        row = s.finalize()[0]
        assert row["mdc_hit_rate"] == 0.0
        assert row["avg_read_latency"] == 0.0


class TestKernelAttribution:
    def test_kernel_tagged_at_row_creation(self):
        s = make()
        s.traffic(0.0, "data", 1)
        s.set_kernel(1)
        s.traffic(150.0, "data", 1)
        rows = s.finalize()
        assert rows[0]["kernel"] == 0
        assert rows[1]["kernel"] == 1


class TestTotals:
    def test_totals_sum_across_windows(self):
        s = make()
        s.traffic(10.0, "data", 100)
        s.traffic(250.0, "data", 50)
        s.traffic(510.0, "ctr", 64)
        totals = s.totals()
        assert totals["data_bytes"] == 150
        assert totals["ctr_bytes"] == 64
        assert totals["mac_bytes"] == 0

    def test_columns_pivot(self):
        s = make()
        s.traffic(10.0, "data", 100)
        s.traffic(250.0, "data", 50)
        cols = s.columns()
        assert cols["data_bytes"] == [100, 50]
        assert cols["window"] == [0, 2]

    def test_empty_series(self):
        s = make()
        assert s.finalize() == []
        assert s.columns() == {}
        assert s.totals() == {c: 0 for c in KIND_COLUMNS.values()}
