"""Shared fixtures: tiny workloads, a session-scoped runner, and
registry hygiene."""

import pytest

from repro.common.types import MemorySpace
from repro.core.policies.registry import SCHEME_REGISTRY
from repro.sim.runner import Runner
from repro.workloads import patterns as pat
from repro.workloads.base import WorkloadBuilder


@pytest.fixture(autouse=True)
def _scheme_registry_hygiene():
    """Snapshot/restore the scheme registry around every test.

    A test that registers a scheme and fails (or simply forgets to
    unregister) used to leak the entry into every later test in the
    process — and a ``replace=True`` shadow of a built-in followed by
    ``unregister_scheme`` once deleted the built-in outright.  The
    snapshot makes such leaks impossible to propagate.
    """
    snapshot = dict(SCHEME_REGISTRY)
    yield
    SCHEME_REGISTRY.clear()
    SCHEME_REGISTRY.update(snapshot)

KB = 1024
MB = 1024 * 1024


def build_tiny_streaming(name="tiny-stream", utilization=0.6):
    """A small streaming workload: read-only input, streamed output."""
    b = WorkloadBuilder(name, bandwidth_utilization=utilization, seed=7)
    data = b.alloc("input", 768 * KB)
    out = b.alloc("output", 192 * KB, host_init=False)
    trace = pat.interleave(b.rng, [
        pat.stream_read(data.address, data.size),
        pat.stream_write(out.address, 96 * KB),
    ])
    b.kernel("k0", trace)
    return b.build()


def build_tiny_random(name="tiny-random", utilization=0.4):
    """A small random read/write workload."""
    b = WorkloadBuilder(name, bandwidth_utilization=utilization, seed=11)
    data = b.alloc("table", 1536 * KB)
    scratch = b.alloc("scratch", 768 * KB, host_init=False)
    trace = pat.interleave(b.rng, [
        pat.random_read(b.rng, data.address, data.size, 4000),
        pat.random_write(b.rng, scratch.address, scratch.size, 2000),
    ])
    b.kernel("k0", trace)
    return b.build()


def build_tiny_multikernel(name="tiny-multi", utilization=0.5):
    """Two kernels; the input region is re-copied before kernel 1."""
    b = WorkloadBuilder(name, bandwidth_utilization=utilization, seed=13)
    data = b.alloc("input", 384 * KB)
    out = b.alloc("out", 192 * KB, host_init=False)
    k0 = pat.interleave(b.rng, [
        pat.stream_read(data.address, data.size),
        pat.stream_write(out.address, 48 * KB),
    ])
    b.kernel("k0", k0)
    k1 = pat.interleave(b.rng, [
        pat.stream_read(data.address, data.size),
        pat.stream_write(out.address, 48 * KB),
    ])
    b.kernel("k1", k1, copies=[data])
    return b.build()


@pytest.fixture(scope="session")
def tiny_streaming():
    return build_tiny_streaming()


@pytest.fixture(scope="session")
def tiny_random():
    return build_tiny_random()


@pytest.fixture(scope="session")
def tiny_multikernel():
    return build_tiny_multikernel()


@pytest.fixture(scope="session")
def tiny_runner(tiny_streaming, tiny_random, tiny_multikernel):
    """A runner with the tiny workloads registered (cached per session)."""
    runner = Runner()
    runner.add_workload(tiny_streaming)
    runner.add_workload(tiny_random)
    runner.add_workload(tiny_multikernel)
    return runner


@pytest.fixture(scope="session")
def suite_runner():
    """A down-scaled suite runner for integration tests."""
    return Runner(scale=0.1)
