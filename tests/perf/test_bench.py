"""The ``repro bench`` harness: matrix construction, execution,
statistics, document validation and the emitted-file CLI path."""

import json

import pytest

from repro.cli import main
from repro.perf import bench
from repro.perf.schema import BenchSchemaError, validate_bench, validate_file


class TestMatrix:
    def test_full_matrix_is_pinned(self):
        names = [c.name for c in bench.build_cases()]
        assert "micro.hist.record" in names
        assert "micro.mdc.lookup" in names
        for scheme in bench.POLICY_SCHEMES:
            assert f"micro.policy.{scheme}" in names
        assert "micro.policy.pssm_ctree" in names
        for sched in ("fifo", "critical_first", "banked"):
            assert f"micro.sched.{sched}" in names
        assert len([n for n in names if n.startswith("macro.")]) == \
            len(bench.MACRO_WORKLOADS) * len(bench.MACRO_SCHEMES)

    def test_smoke_keeps_micro_trims_macro(self):
        names = [c.name for c in bench.build_cases(smoke=True)]
        assert [n for n in names if n.startswith("macro.")] == \
            ["macro.atax.shm"]
        assert "micro.policy.shm" in names

    def test_pattern_filter(self):
        names = [c.name for c in bench.build_cases(pattern="sched")]
        assert names and all("sched" in n for n in names)

    def test_unmatched_filter_raises(self):
        with pytest.raises(ValueError):
            bench.run_bench(pattern="no-such-benchmark")


class TestStats:
    def test_robust_stats(self):
        stats = bench.robust_stats([3.0, 1.0, 2.0, 100.0])
        assert stats["min"] == 1.0
        assert stats["max"] == 100.0
        assert stats["median"] == 2.5
        # MAD shrugs off the outlier; the mean does not.
        assert stats["mad"] == 1.0
        assert stats["mean"] == 26.5

    def test_single_sample(self):
        stats = bench.robust_stats([4.0])
        assert stats["min"] == stats["median"] == stats["max"] == 4.0
        assert stats["mad"] == 0.0


class TestExecution:
    def test_micro_case_runs_and_validates(self):
        doc = bench.run_bench(pattern="micro.hist", repeats=2, warmup=0)
        assert validate_bench(doc) is doc
        entry = doc["benchmarks"]["micro.hist.record"]
        assert entry["kind"] == "micro"
        assert entry["unit"] == "ns/op"
        assert len(entry["samples"]) == 2
        assert all(s > 0 for s in entry["samples"])

    def test_policy_and_sched_micros_execute(self):
        doc = bench.run_bench(pattern="micro.sched.fifo",
                              repeats=2, warmup=0)
        assert "micro.sched.fifo" in doc["benchmarks"]
        validate_bench(doc)

    def test_environment_fingerprint(self):
        env = bench.environment_fingerprint()
        assert set(env) == {"git_sha", "python", "platform", "cpu_count"}
        assert env["cpu_count"] >= 1

    def test_default_output_name(self):
        assert bench.default_output_name(
            {"environment": {"git_sha": "0123abcd4567"}}
        ) == "BENCH_0123abcd.json"
        assert bench.default_output_name(
            {"environment": {"git_sha": "not-a-sha!"}}
        ) == "BENCH_local.json"
        assert bench.default_output_name({}) == "BENCH_local.json"


class TestCliBench:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "micro.hist.record" in out and "macro." in out

    def test_emits_schema_valid_json(self, tmp_path, capsys):
        """ISSUE acceptance: ``repro bench --smoke`` emits a
        schema-valid ``BENCH_*.json`` (micro slice kept small here;
        CI runs the full smoke matrix)."""
        out_path = tmp_path / "BENCH_test.json"
        assert main(["bench", "--smoke", "--filter", "hist",
                     "--output", str(out_path)]) == 0
        doc = validate_file(out_path)
        assert doc["config"]["smoke"] is True
        assert "micro.hist.record" in doc["benchmarks"]
        # Byte-stable emission: sorted keys, so identical docs diff clean.
        assert out_path.read_text() == \
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        assert "repro bench" in capsys.readouterr().out

    def test_rejects_corrupt_baseline(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{\"bench_format\": 99}")
        with pytest.raises(BenchSchemaError):
            validate_file(bad)
        with pytest.raises(SystemExit):
            main(["bench", "--compare", str(bad),
                  "--against", str(bad)])
