"""BENCH document schema validation: accepted shapes and rejections."""

import copy

import pytest

from repro.perf.schema import BenchSchemaError, main, validate_bench


def make_doc():
    return {
        "bench_format": 1,
        "environment": {"git_sha": "abc123", "python": "3.11.0",
                        "platform": "test", "cpu_count": 4},
        "config": {"smoke": True, "repeats": 2, "warmup": 0,
                   "rounds": 1, "macro_scale": 0.05},
        "benchmarks": {
            "micro.x": {
                "kind": "micro", "unit": "ns/op", "units_per_op": 512,
                "rounds": 1, "samples": [10.0, 12.0],
                "stats": {"min": 10.0, "max": 12.0, "median": 11.0,
                          "mad": 1.0, "mean": 11.0},
            },
        },
    }


class TestAccept:
    def test_valid_doc(self):
        doc = make_doc()
        assert validate_bench(doc) is doc


class TestReject:
    def check_rejected(self, mutate, fragment):
        doc = make_doc()
        mutate(doc)
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(doc)

    def test_wrong_format(self):
        self.check_rejected(
            lambda d: d.update(bench_format=2), "bench_format")

    def test_not_an_object(self):
        with pytest.raises(BenchSchemaError):
            validate_bench([1, 2])

    def test_missing_environment_key(self):
        self.check_rejected(
            lambda d: d["environment"].pop("git_sha"), "git_sha")

    def test_bool_is_not_an_int(self):
        self.check_rejected(
            lambda d: d["environment"].update(cpu_count=True), "cpu_count")

    def test_bad_repeats(self):
        self.check_rejected(
            lambda d: d["config"].update(repeats=0), "repeats")

    def test_empty_benchmarks(self):
        self.check_rejected(
            lambda d: d.update(benchmarks={}), "benchmarks")

    def test_bad_kind(self):
        self.check_rejected(
            lambda d: d["benchmarks"]["micro.x"].update(kind="nano"),
            "kind")

    def test_sample_count_must_match_repeats(self):
        self.check_rejected(
            lambda d: d["benchmarks"]["micro.x"].update(samples=[1.0]),
            "samples")

    def test_negative_sample(self):
        self.check_rejected(
            lambda d: d["benchmarks"]["micro.x"].update(
                samples=[-1.0, 2.0]),
            "positive")

    def test_stats_ordering(self):
        def mutate(d):
            d["benchmarks"]["micro.x"]["stats"]["median"] = 99.0
        self.check_rejected(mutate, "min <= median <= max")

    def test_stats_min_must_match_samples(self):
        def mutate(d):
            stats = d["benchmarks"]["micro.x"]["stats"]
            stats["min"] = 5.0
            stats["median"] = 10.0
        self.check_rejected(mutate, "does not match")

    def test_truncated_doc(self):
        doc = make_doc()
        del doc["config"]
        with pytest.raises(BenchSchemaError):
            validate_bench(doc)


class TestCli:
    def test_main_ok(self, tmp_path, capsys):
        import json
        path = tmp_path / "BENCH_ok.json"
        path.write_text(json.dumps(make_doc()))
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_main_fail(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{}")
        assert main([str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_main_usage(self, capsys):
        assert main([]) == 2

    def test_validate_does_not_mutate(self):
        doc = make_doc()
        before = copy.deepcopy(doc)
        validate_bench(doc)
        assert doc == before
