"""Baseline comparison and the regression gate, including the ISSUE
acceptance check: a synthetic 2x slowdown must be flagged by
``repro bench --compare`` with a nonzero exit."""

import json

import pytest

from repro.cli import main
from repro.perf import bench
from repro.perf.compare import (
    STATUS_ADDED,
    STATUS_IMPROVED,
    STATUS_INCOMPARABLE,
    STATUS_OK,
    STATUS_REGRESSION,
    STATUS_REMOVED,
    compare_docs,
    regressions,
)


def doc_with(medians, unit="ns/op"):
    """A minimal-but-schema-valid document with the given medians."""
    benchmarks = {}
    for name, median in medians.items():
        u = unit if isinstance(unit, str) else unit[name]
        benchmarks[name] = {
            "kind": "micro", "unit": u, "units_per_op": 1, "rounds": 1,
            "samples": [median, median],
            "stats": {"min": median, "max": median, "median": median,
                      "mad": 0.0, "mean": median},
        }
    return {
        "bench_format": 1,
        "environment": {"git_sha": "abc", "python": "3", "platform": "t",
                        "cpu_count": 1},
        "config": {"smoke": True, "repeats": 2, "warmup": 0, "rounds": 1,
                   "macro_scale": 0.05},
        "benchmarks": benchmarks,
    }


class TestCompareDocs:
    def test_statuses(self):
        old = doc_with({"a": 100.0, "b": 100.0, "c": 100.0, "gone": 1.0})
        new = doc_with({"a": 110.0, "b": 250.0, "c": 50.0, "fresh": 1.0})
        rows = {r.name: r for r in compare_docs(old, new)}
        assert rows["a"].status == STATUS_OK
        assert rows["b"].status == STATUS_REGRESSION
        assert rows["b"].ratio == pytest.approx(2.5)
        assert rows["c"].status == STATUS_IMPROVED
        assert rows["gone"].status == STATUS_REMOVED
        assert rows["fresh"].status == STATUS_ADDED

    def test_threshold_is_exclusive(self):
        old = doc_with({"a": 100.0})
        new = doc_with({"a": 115.0})  # exactly +15%: not a regression
        assert compare_docs(old, new, 0.15)[0].status == STATUS_OK

    def test_unit_mismatch_is_incomparable(self):
        old = doc_with({"a": 100.0}, unit="ns/op")
        new = doc_with({"a": 100.0}, unit="ms/run")
        assert compare_docs(old, new)[0].status == STATUS_INCOMPARABLE

    def test_regressions_filter(self):
        old = doc_with({"a": 100.0, "b": 100.0})
        new = doc_with({"a": 500.0, "b": 100.0})
        assert [r.name for r in regressions(compare_docs(old, new))] == ["a"]

    def test_rows_sorted_by_name(self):
        old = doc_with({"z": 1.0, "a": 1.0, "m": 1.0})
        rows = compare_docs(old, old)
        assert [r.name for r in rows] == ["a", "m", "z"]


class TestRegressionGateEndToEnd:
    """ISSUE acceptance: inject a synthetic 2x slowdown into one
    benchmark of a real emitted document and watch the CLI gate trip."""

    @pytest.fixture
    def baseline(self, tmp_path):
        doc = bench.run_bench(pattern="micro.hist", repeats=2, warmup=0)
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps(doc, sort_keys=True))
        return path, doc

    def test_synthetic_2x_slowdown_trips_gate(self, baseline, tmp_path,
                                              capsys):
        path, doc = baseline
        slowed = json.loads(json.dumps(doc))
        entry = slowed["benchmarks"]["micro.hist.record"]
        entry["samples"] = [s * 2 for s in entry["samples"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        slow_path = tmp_path / "BENCH_new.json"
        slow_path.write_text(json.dumps(slowed, sort_keys=True))

        assert main(["bench", "--compare", str(path),
                     "--against", str(slow_path)]) == 3
        out = capsys.readouterr().out
        assert "regression" in out
        assert "micro.hist.record" in out

    def test_identical_docs_pass_gate(self, baseline, capsys):
        path, _ = baseline
        assert main(["bench", "--compare", str(path),
                     "--against", str(path)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_loose_threshold_passes_2x(self, baseline, tmp_path):
        path, doc = baseline
        slowed = json.loads(json.dumps(doc))
        entry = slowed["benchmarks"]["micro.hist.record"]
        entry["samples"] = [s * 2 for s in entry["samples"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        slow_path = tmp_path / "BENCH_new.json"
        slow_path.write_text(json.dumps(slowed, sort_keys=True))
        assert main(["bench", "--compare", str(path),
                     "--against", str(slow_path),
                     "--threshold", "1.5"]) == 0


class TestPerCellVerdict:
    """The ISSUE bugfix: the gate must say *which* cells regressed and
    by how much, in the CLI output and the report artifact."""

    def test_delta_property(self):
        rows = compare_docs(doc_with({"a": 100.0}), doc_with({"a": 123.0}))
        assert rows[0].delta == pytest.approx(0.23)
        removed = compare_docs(doc_with({"a": 1.0}), doc_with({}))
        assert removed[0].delta is None

    def test_compare_report_shape(self):
        from repro.perf.compare import compare_report

        rows = compare_docs(doc_with({"a": 100.0, "b": 100.0}),
                            doc_with({"a": 250.0, "b": 101.0}))
        report = compare_report(rows, 0.15, baseline="BENCH_x.json")
        assert report["compare_format"] == 1
        assert report["baseline"] == "BENCH_x.json"
        assert report["regressed"] == ["a"]
        cells = {c["name"]: c for c in report["cells"]}
        assert cells["a"]["status"] == STATUS_REGRESSION
        assert cells["a"]["delta_pct"] == pytest.approx(150.0)
        assert cells["b"]["status"] == STATUS_OK
        assert cells["b"]["old_median"] == 100.0
        json.dumps(report)  # it is the CI artifact

    def test_cli_output_itemizes_regressed_cells(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc_with({"a": 100.0, "b": 100.0})))
        new.write_text(json.dumps(doc_with({"a": 250.0, "b": 101.0})))
        assert main(["bench", "--compare", str(old),
                     "--against", str(new)]) == 3
        out = capsys.readouterr().out
        assert "1 regression(s) beyond the 15% median gate" in out
        assert "a: 100.0 -> 250.0 ns/op (+150.0%)" in out

    def test_report_artifact_written(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc_with({"a": 100.0})))
        new.write_text(json.dumps(doc_with({"a": 300.0})))
        report_path = tmp_path / "compare.json"
        assert main(["bench", "--compare", str(old),
                     "--against", str(new),
                     "--report", str(report_path)]) == 3
        report = json.loads(report_path.read_text())
        assert report["bench_report_format"] == 1
        (one,) = report["reports"]
        assert one["regressed"] == ["a"]
        assert one["cells"][0]["delta_pct"] == pytest.approx(200.0)


class TestStoreBaseline:
    """--against-store: the telemetry store's rolling median as the
    regression baseline."""

    def test_empty_store_is_an_explicit_error(self, tmp_path):
        from repro.perf.compare import against_store

        with pytest.raises(ValueError, match="no bench history"):
            against_store(doc_with({"a": 1.0}), tmp_path / "empty.db")

    def test_store_reproduces_committed_baseline_verdict(self, tmp_path,
                                                         capsys):
        """ISSUE acceptance: record the committed baseline into the
        store once, and --against-store must reach the same per-cell
        verdict as --compare against the committed file."""
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc_with({"a": 100.0, "b": 100.0})))
        new.write_text(json.dumps(doc_with({"a": 250.0, "b": 101.0})))
        db = tmp_path / "telemetry.db"

        assert main(["bench", "--against", str(old),
                     "--record-store", str(db)]) == 0
        file_exit = main(["bench", "--compare", str(old),
                          "--against", str(new)])
        file_out = capsys.readouterr().out
        store_exit = main(["bench", "--against", str(new),
                           "--against-store", str(db)])
        store_out = capsys.readouterr().out
        assert file_exit == store_exit == 3
        # Identical per-cell verdicts from both baseline sources.
        assert "a: 100.0 -> 250.0 ns/op (+150.0%)" in file_out
        assert "a: 100.0 -> 250.0 ns/op (+150.0%)" in store_out

    def test_rolling_window_absorbs_one_noisy_recording(self, tmp_path):
        from repro.obs.store import TelemetryStore
        from repro.perf.compare import STATUS_OK, against_store

        store = TelemetryStore(tmp_path / "t.db")
        for i, median in enumerate([100.0, 102.0, 9000.0]):
            store.record_bench(doc_with({"a": median}),
                               created_ts=float(i))
        # Baseline = rolling median (102), not the noisy 9000.
        (row,) = against_store(doc_with({"a": 105.0}), store)
        assert row.status == STATUS_OK
        assert row.old_median == 102.0

    def test_recording_emits_bench_event(self, tmp_path):
        from repro.obs.events import read_events

        doc_path = tmp_path / "doc.json"
        doc_path.write_text(json.dumps(doc_with({"a": 100.0})))
        events = tmp_path / "events.jsonl"
        assert main(["bench", "--against", str(doc_path),
                     "--record-store", str(tmp_path / "t.db"),
                     "--events", str(events)]) == 0
        (row,) = read_events(events)
        assert row["type"] == "bench_recorded"
        assert row["benchmarks"] == {"a": 100.0}

    def test_gate_trip_emits_regression_event(self, tmp_path):
        from repro.obs.events import read_events

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(doc_with({"a": 100.0})))
        new.write_text(json.dumps(doc_with({"a": 300.0})))
        events = tmp_path / "events.jsonl"
        assert main(["bench", "--compare", str(old),
                     "--against", str(new),
                     "--events", str(events)]) == 3
        (row,) = read_events(events)
        assert row["type"] == "regression_flagged"
        assert row["benchmark"] == "a"
        assert row["ratio"] == pytest.approx(3.0)
