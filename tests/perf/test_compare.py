"""Baseline comparison and the regression gate, including the ISSUE
acceptance check: a synthetic 2x slowdown must be flagged by
``repro bench --compare`` with a nonzero exit."""

import json

import pytest

from repro.cli import main
from repro.perf import bench
from repro.perf.compare import (
    STATUS_ADDED,
    STATUS_IMPROVED,
    STATUS_INCOMPARABLE,
    STATUS_OK,
    STATUS_REGRESSION,
    STATUS_REMOVED,
    compare_docs,
    regressions,
)


def doc_with(medians, unit="ns/op"):
    """A minimal-but-schema-valid document with the given medians."""
    benchmarks = {}
    for name, median in medians.items():
        u = unit if isinstance(unit, str) else unit[name]
        benchmarks[name] = {
            "kind": "micro", "unit": u, "units_per_op": 1, "rounds": 1,
            "samples": [median, median],
            "stats": {"min": median, "max": median, "median": median,
                      "mad": 0.0, "mean": median},
        }
    return {
        "bench_format": 1,
        "environment": {"git_sha": "abc", "python": "3", "platform": "t",
                        "cpu_count": 1},
        "config": {"smoke": True, "repeats": 2, "warmup": 0, "rounds": 1,
                   "macro_scale": 0.05},
        "benchmarks": benchmarks,
    }


class TestCompareDocs:
    def test_statuses(self):
        old = doc_with({"a": 100.0, "b": 100.0, "c": 100.0, "gone": 1.0})
        new = doc_with({"a": 110.0, "b": 250.0, "c": 50.0, "fresh": 1.0})
        rows = {r.name: r for r in compare_docs(old, new)}
        assert rows["a"].status == STATUS_OK
        assert rows["b"].status == STATUS_REGRESSION
        assert rows["b"].ratio == pytest.approx(2.5)
        assert rows["c"].status == STATUS_IMPROVED
        assert rows["gone"].status == STATUS_REMOVED
        assert rows["fresh"].status == STATUS_ADDED

    def test_threshold_is_exclusive(self):
        old = doc_with({"a": 100.0})
        new = doc_with({"a": 115.0})  # exactly +15%: not a regression
        assert compare_docs(old, new, 0.15)[0].status == STATUS_OK

    def test_unit_mismatch_is_incomparable(self):
        old = doc_with({"a": 100.0}, unit="ns/op")
        new = doc_with({"a": 100.0}, unit="ms/run")
        assert compare_docs(old, new)[0].status == STATUS_INCOMPARABLE

    def test_regressions_filter(self):
        old = doc_with({"a": 100.0, "b": 100.0})
        new = doc_with({"a": 500.0, "b": 100.0})
        assert [r.name for r in regressions(compare_docs(old, new))] == ["a"]

    def test_rows_sorted_by_name(self):
        old = doc_with({"z": 1.0, "a": 1.0, "m": 1.0})
        rows = compare_docs(old, old)
        assert [r.name for r in rows] == ["a", "m", "z"]


class TestRegressionGateEndToEnd:
    """ISSUE acceptance: inject a synthetic 2x slowdown into one
    benchmark of a real emitted document and watch the CLI gate trip."""

    @pytest.fixture
    def baseline(self, tmp_path):
        doc = bench.run_bench(pattern="micro.hist", repeats=2, warmup=0)
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps(doc, sort_keys=True))
        return path, doc

    def test_synthetic_2x_slowdown_trips_gate(self, baseline, tmp_path,
                                              capsys):
        path, doc = baseline
        slowed = json.loads(json.dumps(doc))
        entry = slowed["benchmarks"]["micro.hist.record"]
        entry["samples"] = [s * 2 for s in entry["samples"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        slow_path = tmp_path / "BENCH_new.json"
        slow_path.write_text(json.dumps(slowed, sort_keys=True))

        assert main(["bench", "--compare", str(path),
                     "--against", str(slow_path)]) == 3
        out = capsys.readouterr().out
        assert "regression" in out
        assert "micro.hist.record" in out

    def test_identical_docs_pass_gate(self, baseline, capsys):
        path, _ = baseline
        assert main(["bench", "--compare", str(path),
                     "--against", str(path)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_loose_threshold_passes_2x(self, baseline, tmp_path):
        path, doc = baseline
        slowed = json.loads(json.dumps(doc))
        entry = slowed["benchmarks"]["micro.hist.record"]
        entry["samples"] = [s * 2 for s in entry["samples"]]
        entry["stats"] = {k: v * 2 for k, v in entry["stats"].items()}
        slow_path = tmp_path / "BENCH_new.json"
        slow_path.write_text(json.dumps(slowed, sort_keys=True))
        assert main(["bench", "--compare", str(path),
                     "--against", str(slow_path),
                     "--threshold", "1.5"]) == 0
