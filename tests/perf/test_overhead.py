"""The zero-overhead guard for disabled observability (ISSUE
satellite): the NULL observer/profiler path must not add measurable
host time.

Two layers of defence:

* **counting proxies** — disabled-path runs must never sample the
  profiler clock nor execute any hook body (the hot path is one local
  boolean branch), which is what makes the <5 % bound hold by
  construction;
* a **min-of-N timing ratio** between interleaved default-constructed
  and explicit-NULL runs (< 1.05), pinning the two spellings of "off"
  to the same cost.
"""

from time import perf_counter

from repro.common.types import Scheme
from repro.obs.observer import NULL_OBSERVER
from repro.perf.hostprof import NULL_PROFILER, NullHostProfiler
from repro.sim.gpu import GPUSimulator
from repro.sim.runner import Runner
from tests.conftest import build_tiny_streaming


class CountingNull(NullHostProfiler):
    """A disabled profiler that counts every touch it receives."""

    def __init__(self) -> None:
        super().__init__()
        self.clock_samples = 0
        self.calls = 0

    def now(self) -> float:  # type: ignore[override]
        self.clock_samples += 1
        return perf_counter()

    def mark(self, stage: str) -> None:
        self.calls += 1

    def add(self, stage: str, dt: float) -> None:
        self.calls += 1

    def add_component(self, component: str, dt: float) -> None:
        self.calls += 1


class TestCountingProxies:
    def test_disabled_profiler_is_never_touched(self):
        counting = CountingNull()
        runner = Runner(profiler=counting)
        runner.add_workload(build_tiny_streaming())
        runner.run("tiny-stream", Scheme.SHM)
        assert counting.clock_samples == 0
        assert counting.calls == 0

    def test_default_construction_uses_shared_nulls(self):
        sim = GPUSimulator(Runner().config.with_scheme(Scheme.SHM))
        assert sim.profiler is NULL_PROFILER
        assert sim.obs is NULL_OBSERVER
        assert sim._profile is False

    def test_disabled_run_leaves_null_profiler_empty(self):
        runner = Runner(profiler=NULL_PROFILER)
        runner.add_workload(build_tiny_streaming())
        runner.run("tiny-stream", Scheme.PSSM)
        assert NULL_PROFILER.runs == []
        assert NULL_PROFILER.snapshot()["runs"] == {}


class TestTimingRatio:
    def test_null_path_within_5_percent_of_hookless(self):
        """Interleaved min-of-N: the run with NULL observer+profiler
        passed explicitly vs the default (hook-free spelling) run.
        Both must hit the identical branch-only hot path, so the
        min-of-N ratio stays within the 5 % bound of the ISSUE.

        Whichever runner is constructed *second* measures consistently
        slower (10-20 % on this hot loop) purely from allocation-order
        locality — the effect reproduces with the variants swapped, so
        it is not hook overhead.  The test therefore measures both
        construction orders and takes the geometric mean of the two
        min-of-N ratios: the order bias multiplies one ratio and
        divides the other and so cancels, while a genuine null-path
        slowdown would survive in both and trip the bound."""
        workload = build_tiny_streaming()

        def make_runner(explicit_nulls: bool) -> Runner:
            runner = (Runner(observer=NULL_OBSERVER, profiler=NULL_PROFILER)
                      if explicit_nulls else Runner())
            runner.add_workload(workload)
            runner.calibration(workload.name)  # outside the timed region
            return runner

        def sample(runner: Runner) -> float:
            runner.clear_results()
            start = perf_counter()
            runner.run(workload.name, Scheme.PSSM)
            return perf_counter() - start

        def min_ratio(null_constructed_first: bool,
                      base: list, nulls: list) -> float:
            if null_constructed_first:
                null_runner = make_runner(True)
                base_runner = make_runner(False)
            else:
                base_runner = make_runner(False)
                null_runner = make_runner(True)
            sample(base_runner)  # discard one warmup per variant
            sample(null_runner)
            for _ in range(5):
                base.append(sample(base_runner))
                nulls.append(sample(null_runner))
            return min(nulls) / min(base)

        # Samples accumulate across rounds, so a noisy round tightens
        # rather than resets the estimate: both variants run the
        # identical hot path, so with enough samples each min
        # approaches the true floor and the geomean the true ~1.0 —
        # one unlucky batch on a loaded machine must not fail a bound
        # it would meet a second later.
        base_bf, nulls_bf, base_nf, nulls_nf = [], [], [], []
        for _ in range(4):
            ratio = (min_ratio(False, base_bf, nulls_bf)
                     * min_ratio(True, base_nf, nulls_nf)) ** 0.5
            if ratio < 1.05:
                break
        assert ratio < 1.05


class TestCampaignTelemetryNullPath:
    """Campaign telemetry disabled (the default) must execute none of
    the event/store machinery — same counting-proxy defence as the
    observer: if the code is never called, the overhead is zero by
    construction."""

    def _run(self, counts, monkeypatch, **kwargs):
        import repro.obs.events as events_mod
        import repro.obs.store as store_mod
        from repro.common.types import Scheme as _Scheme
        from repro.eval.campaign import (ExperimentResult, ExperimentSpec,
                                         JobSpec, run_campaign)

        def count(name):
            def hook(*args, **kw):
                counts[name] += 1
            return hook

        monkeypatch.setattr(events_mod.EventLog, "emit", count("emit"))
        monkeypatch.setattr(events_mod, "spool_event", count("spool"))
        monkeypatch.setattr(store_mod.TelemetryStore, "record_campaign",
                            count("record"))

        def jobs(_workloads, config, scale):
            return [JobSpec(experiment="null", workload="atax",
                            kind="profile", scheme=_Scheme.SHM.value,
                            scale=scale, config=config)]

        def aggregate(records):
            return ExperimentResult("null")

        run_campaign(["null"], scale=0.05,
                     specs={"null": ExperimentSpec(
                         name="null", title="t", provenance="t",
                         jobs=jobs, aggregate=aggregate)},
                     **kwargs)

    def test_serial_campaign_never_touches_telemetry(self, monkeypatch):
        counts = {"emit": 0, "spool": 0, "record": 0}
        self._run(counts, monkeypatch, serial=True)
        assert counts == {"emit": 0, "spool": 0, "record": 0}

    def test_in_process_pool_path_never_spools(self, monkeypatch):
        """jobs=1 drives ``parallel._call`` in-process — the same code
        pool workers run — so this also proves the worker-side
        ``event_spool is None`` guard short-circuits."""
        counts = {"emit": 0, "spool": 0, "record": 0}
        self._run(counts, monkeypatch, jobs=1)
        assert counts == {"emit": 0, "spool": 0, "record": 0}
