"""The zero-overhead guard for disabled observability (ISSUE
satellite): the NULL observer/profiler path must not add measurable
host time.

Two layers of defence:

* **counting proxies** — disabled-path runs must never sample the
  profiler clock nor execute any hook body (the hot path is one local
  boolean branch), which is what makes the <5 % bound hold by
  construction;
* a **min-of-N timing ratio** between interleaved default-constructed
  and explicit-NULL runs (< 1.05), pinning the two spellings of "off"
  to the same cost.
"""

from time import perf_counter

from repro.common.types import Scheme
from repro.obs.observer import NULL_OBSERVER
from repro.perf.hostprof import NULL_PROFILER, NullHostProfiler
from repro.sim.gpu import GPUSimulator
from repro.sim.runner import Runner
from tests.conftest import build_tiny_streaming


class CountingNull(NullHostProfiler):
    """A disabled profiler that counts every touch it receives."""

    def __init__(self) -> None:
        super().__init__()
        self.clock_samples = 0
        self.calls = 0

    def now(self) -> float:  # type: ignore[override]
        self.clock_samples += 1
        return perf_counter()

    def mark(self, stage: str) -> None:
        self.calls += 1

    def add(self, stage: str, dt: float) -> None:
        self.calls += 1

    def add_component(self, component: str, dt: float) -> None:
        self.calls += 1


class TestCountingProxies:
    def test_disabled_profiler_is_never_touched(self):
        counting = CountingNull()
        runner = Runner(profiler=counting)
        runner.add_workload(build_tiny_streaming())
        runner.run("tiny-stream", Scheme.SHM)
        assert counting.clock_samples == 0
        assert counting.calls == 0

    def test_default_construction_uses_shared_nulls(self):
        sim = GPUSimulator(Runner().config.with_scheme(Scheme.SHM))
        assert sim.profiler is NULL_PROFILER
        assert sim.obs is NULL_OBSERVER
        assert sim._profile is False

    def test_disabled_run_leaves_null_profiler_empty(self):
        runner = Runner(profiler=NULL_PROFILER)
        runner.add_workload(build_tiny_streaming())
        runner.run("tiny-stream", Scheme.PSSM)
        assert NULL_PROFILER.runs == []
        assert NULL_PROFILER.snapshot()["runs"] == {}


class TestTimingRatio:
    def test_null_path_within_5_percent_of_hookless(self):
        """Interleaved min-of-N: the run with NULL observer+profiler
        passed explicitly vs the default (hook-free spelling) run.
        Both must hit the identical branch-only hot path, so the
        min-of-N ratio stays within the 5 % bound of the ISSUE.

        Structure chosen for timer stability: one calibrated runner
        per variant, samples interleaved, result cache cleared before
        every timed run so each sample is a real simulation."""
        workload = build_tiny_streaming()

        def make_runner(explicit_nulls: bool) -> Runner:
            runner = (Runner(observer=NULL_OBSERVER, profiler=NULL_PROFILER)
                      if explicit_nulls else Runner())
            runner.add_workload(workload)
            runner.calibration(workload.name)  # outside the timed region
            return runner

        def sample(runner: Runner) -> float:
            runner.clear_results()
            start = perf_counter()
            runner.run(workload.name, Scheme.PSSM)
            return perf_counter() - start

        base_runner = make_runner(False)
        null_runner = make_runner(True)
        sample(base_runner)  # discard one warmup per variant
        sample(null_runner)
        base, nulls = [], []
        for _ in range(5):
            base.append(sample(base_runner))
            nulls.append(sample(null_runner))
        assert min(nulls) < min(base) * 1.05
