"""Host wall-time stage profiler: ledger semantics, snapshots, and
end-to-end stage attribution through a real simulation."""

import pytest

from repro.common.types import Scheme
from repro.perf.hostprof import (
    COMPONENTS,
    HOST_PROFILE_FORMAT,
    NULL_PROFILER,
    STAGES,
    HostProfiler,
    NullHostProfiler,
)
from repro.sim.runner import Runner
from tests.conftest import build_tiny_streaming


class FakeClock:
    """A controllable clock substituted for ``HostProfiler.now``."""

    def __init__(self) -> None:
        self.t = 0.0

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def prof():
    profiler = HostProfiler()
    clock = FakeClock()
    profiler.now = clock  # instance attribute shadows the class clock
    profiler.clock = clock
    return profiler


class TestLedger:
    def test_marks_tile_the_run(self, prof):
        prof.begin_run("w/s")
        prof.clock.advance(1.0)
        prof.mark("issued")
        prof.clock.advance(2.0)
        prof.mark("l2")
        prof.clock.advance(0.5)
        prof.mark("dram")
        prof.end_run()
        run = prof.snapshot()["runs"]["w/s"]
        assert run["stages_s"]["issued"] == pytest.approx(1.0)
        assert run["stages_s"]["l2"] == pytest.approx(2.0)
        assert run["stages_s"]["dram"] == pytest.approx(0.5)
        assert run["wall_s"] == pytest.approx(3.5)
        assert run["coverage"] == pytest.approx(1.0)

    def test_consecutive_marks_never_double_count(self, prof):
        prof.begin_run("w/s")
        prof.clock.advance(1.0)
        prof.mark("l2")
        prof.mark("l2")  # zero elapsed: ledger already advanced
        prof.end_run()
        run = prof.snapshot()["runs"]["w/s"]
        assert run["stages_s"]["l2"] == pytest.approx(1.0)

    def test_add_and_components(self, prof):
        prof.begin_run("w/s")
        prof.add("metadata", 0.25)
        prof.add_component("metadata_caches", 0.1)
        prof.add_component("metadata_caches", 0.05)
        prof.end_run()
        run = prof.snapshot()["runs"]["w/s"]
        assert run["stages_s"]["metadata"] == pytest.approx(0.25)
        assert run["components_s"]["metadata_caches"] == pytest.approx(0.15)
        # policy_stacks is the METADATA remainder.
        assert run["components_s"]["policy_stacks"] == pytest.approx(0.10)

    def test_mark_outside_run_lands_unattributed(self, prof):
        prof.clock.advance(1.0)
        prof.mark("l2")
        assert "(unattributed)" in prof.snapshot()["runs"]

    def test_repeated_labels_are_suffixed(self, prof):
        for _ in range(3):
            prof.begin_run("w/s")
            prof.clock.advance(1.0)
            prof.mark("l2")
            prof.end_run()
        assert set(prof.snapshot()["runs"]) == {"w/s", "w/s#2", "w/s#3"}

    def test_open_run_reported_live(self, prof):
        prof.begin_run("w/s")
        prof.clock.advance(2.0)
        prof.mark("dram")
        snap = prof.snapshot()  # no end_run yet
        assert snap["runs"]["w/s"]["wall_s"] == pytest.approx(2.0)


class TestSnapshotShape:
    def test_schema_fields(self, prof):
        prof.begin_run("w/s")
        prof.clock.advance(1.0)
        prof.mark("issued")
        prof.end_run()
        snap = prof.snapshot()
        assert snap["host_profile_format"] == HOST_PROFILE_FORMAT
        run = snap["runs"]["w/s"]
        assert set(run["stages_s"]) == set(STAGES)
        assert set(run["components_s"]) == set(COMPONENTS)
        assert set(snap["total"]["stages_s"]) == set(STAGES)

    def test_null_profiler_snapshot_is_zeroed(self):
        snap = NULL_PROFILER.snapshot()
        assert snap["runs"] == {}
        assert snap["total"]["wall_s"] == 0.0
        assert set(snap["total"]["stages_s"]) == set(STAGES)

    def test_null_profiler_is_disabled_subclass(self):
        assert isinstance(NULL_PROFILER, HostProfiler)
        assert NullHostProfiler.enabled is False
        NULL_PROFILER.begin_run("x")
        NULL_PROFILER.mark("l2")
        NULL_PROFILER.end_run()
        assert NULL_PROFILER.snapshot()["runs"] == {}


class TestEndToEnd:
    """The ISSUE acceptance bar: >= 95 % of measured host wall time
    attributed across the five pipeline stages on a real run."""

    @pytest.fixture(scope="class")
    def profiled_runner(self):
        profiler = HostProfiler()
        runner = Runner(profiler=profiler)
        runner.add_workload(build_tiny_streaming())
        runner.run("tiny-stream", Scheme.PSSM)
        runner.run("tiny-stream", Scheme.SHM)
        return runner, profiler

    def test_coverage_at_least_95_percent(self, profiled_runner):
        _, profiler = profiled_runner
        snap = profiler.snapshot()
        assert snap["total"]["coverage"] >= 0.95
        for run in snap["runs"].values():
            assert run["coverage"] >= 0.95

    def test_all_five_stages_observed(self, profiled_runner):
        _, profiler = profiled_runner
        for run in profiler.snapshot()["runs"].values():
            for stage in STAGES:
                assert run["stages_s"][stage] > 0.0, stage

    def test_runs_labelled_workload_slash_scheme(self, profiled_runner):
        _, profiler = profiled_runner
        assert set(profiler.snapshot()["runs"]) == {
            "tiny-stream/pssm", "tiny-stream/shm",
        }

    def test_component_breakdown_observed(self, profiled_runner):
        _, profiler = profiled_runner
        total = profiler.snapshot()["total"]["components_s"]
        for component in ("metadata_caches", "dram_sched", "policy_stacks"):
            assert total[component] > 0.0, component

    def test_profiling_does_not_change_simulation(self, profiled_runner):
        runner, _ = profiled_runner
        plain = Runner()
        plain.add_workload(build_tiny_streaming())
        assert (plain.run("tiny-stream", Scheme.PSSM).cycles
                == runner.run("tiny-stream", Scheme.PSSM).cycles)

    def test_profiled_runs_are_not_cached(self, profiled_runner):
        runner, _ = profiled_runner
        assert runner._results == {}
