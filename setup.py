"""Setup shim so `pip install -e .` works offline (no wheel package
available for PEP-517 editable builds in this environment)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Adaptive security support for heterogeneous memory on GPUs "
        "(HPCA 2022) - trace-driven reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
