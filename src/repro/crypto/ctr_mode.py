"""Counter-mode encryption with split counters (Section II-B, Fig. 1/3).

A 128 B cache line is encrypted by XORing it with a one-time pad (OTP).
The pad is built from eight AES encryptions, one per 16 B chunk, of a
*seed* combining:

* the block's major counter (64-bit, shared by the 64 blocks of a
  counter block / page) — temporal uniqueness, coarse;
* the block's minor counter (7-bit, per block) — temporal uniqueness,
  fine;
* the block address — spatial uniqueness across blocks;
* the chunk id (CID, 0..7) — spatial uniqueness within a block.

For read-only regions the paper replaces the major counter with the
on-chip *shared counter* and zero-pads the minor counter (Fig. 3b), so
no per-block counter needs to be fetched from memory at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import constants
from repro.crypto.aes import AES128, BLOCK_BYTES


@dataclass(frozen=True)
class Seed:
    """The inputs to pad generation for one cache line."""

    major: int
    minor: int
    address: int
    #: True when `major` is the on-chip shared counter (read-only data);
    #: folded into the seed so pads from the two modes never collide.
    shared: bool = False

    def chunk_seed(self, cid: int) -> bytes:
        """16-byte AES input for chunk ``cid``.

        A 128 B line uses cids 0-7; longer buffers (multi-line
        encrypts) may use up to 255, the width of the seed's cid field.
        """
        if not 0 <= cid < 256:
            raise ValueError(f"cid out of range: {cid}")
        # Layout: 6B address | 5B major | 1B minor | 1B mode | 1B cid | 2B pad
        return (
            (self.address & (2**48 - 1)).to_bytes(6, "little")
            + (self.major & (2**40 - 1)).to_bytes(5, "little")
            + (self.minor & 0xFF).to_bytes(1, "little")
            + (1 if self.shared else 0).to_bytes(1, "little")
            + cid.to_bytes(1, "little")
            + b"\x00\x00"
        )


class CounterModeEngine:
    """Generates pads and encrypts/decrypts 128 B lines."""

    def __init__(self, encryption_key: bytes) -> None:
        self._aes = AES128(encryption_key)

    def one_time_pad(self, seed: Seed, length: int = constants.BLOCK_SIZE) -> bytes:
        """Concatenate AES(seed, cid) for as many chunks as needed."""
        if length <= 0 or length % BLOCK_BYTES:
            raise ValueError("pad length must be a positive multiple of 16")
        chunks = [
            self._aes.encrypt_block(seed.chunk_seed(cid))
            for cid in range(length // BLOCK_BYTES)
        ]
        return b"".join(chunks)

    def encrypt(self, plaintext: bytes, seed: Seed) -> bytes:
        """XOR the line with its pad.  Symmetric with :meth:`decrypt`."""
        pad = self.one_time_pad(seed, _padded_length(len(plaintext)))
        return bytes(p ^ k for p, k in zip(plaintext, pad))

    def decrypt(self, ciphertext: bytes, seed: Seed) -> bytes:
        return self.encrypt(ciphertext, seed)


def _padded_length(n: int) -> int:
    if n == 0:
        raise ValueError("cannot encrypt an empty buffer")
    return ((n + BLOCK_BYTES - 1) // BLOCK_BYTES) * BLOCK_BYTES
