"""Bonsai Merkle Tree (BMT) over encryption counters (Section II-B, Fig. 2).

A BMT guarantees *freshness*: it covers only the encryption counters
(data freshness follows transitively because counters are folded into
the stateful MACs).  The root lives in an on-chip register, out of the
attacker's reach.

This is the functional model used by the attack demos and tests.  It
supports sparse construction (counter blocks default to a known initial
value), path verification on reads, path update on writes, and the
paper's read-only exclusion: counter blocks belonging to read-only
regions are simply never traversed, because those regions are encrypted
with the on-chip shared counter.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Dict, List

from repro.common import constants
from repro.common.types import ReplayAttackError

HASH_SIZE = 8  # bytes per tree-node hash entry


class BonsaiMerkleTree:
    """Arity-``BMT_ARITY`` hash tree over a sparse array of leaves.

    Leaves are counter-block digests indexed by counter-block id.  The
    tree is kept fully materialised per *touched* path only; untouched
    subtrees collapse to precomputed "all default" digests, which makes
    a tree over a 4 GB memory cheap to instantiate.
    """

    def __init__(self, tree_key: bytes, num_leaves: int) -> None:
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        self._key = bytes(tree_key)
        self.arity = constants.BMT_ARITY
        self.num_leaves = num_leaves
        self.num_levels = self._levels_for(num_leaves)
        # _nodes[level][index] -> digest; level 0 = leaves.
        self._nodes: List[Dict[int, bytes]] = [dict() for _ in range(self.num_levels + 1)]
        self._default_at_level = self._compute_default_digests()
        self._root = self._hash_children(self.num_levels - 1, 0)

    # -- Construction helpers -------------------------------------------------

    def _levels_for(self, num_leaves: int) -> int:
        levels = 0
        span = 1
        while span < num_leaves:
            span *= self.arity
            levels += 1
        return max(1, levels)

    def _hash(self, payload: bytes) -> bytes:
        return _hmac.new(self._key, payload, hashlib.sha256).digest()[:HASH_SIZE]

    def _compute_default_digests(self) -> List[bytes]:
        """Digest of an all-default subtree, per level."""
        defaults = [self._hash(b"leaf-default")]
        for _ in range(self.num_levels):
            defaults.append(self._hash(b"node" + defaults[-1] * self.arity))
        return defaults

    def _node(self, level: int, index: int) -> bytes:
        return self._nodes[level].get(index, self._default_at_level[level])

    def _hash_children(self, level: int, index: int) -> bytes:
        """Digest of node (level+1, index) from its ``arity`` children."""
        children = [
            self._node(level, index * self.arity + k) for k in range(self.arity)
        ]
        return self._hash(b"node" + b"".join(children))

    # -- Public API ------------------------------------------------------------

    @property
    def root(self) -> bytes:
        """The on-chip root register value."""
        return self._root

    def leaf_digest(self, counter_block: bytes) -> bytes:
        return self._hash(b"leaf" + counter_block)

    def update_leaf(self, leaf_index: int, counter_block: bytes) -> None:
        """Write path: update the leaf and re-hash up to the root."""
        self._check_index(leaf_index)
        self._nodes[0][leaf_index] = self.leaf_digest(counter_block)
        index = leaf_index
        for level in range(self.num_levels):
            index //= self.arity
            self._nodes[level + 1][index] = self._hash_children(level, index)
        self._root = self._nodes[self.num_levels][0]

    def verify_leaf(self, leaf_index: int, counter_block: bytes) -> None:
        """Read path: recompute the path and compare against the root.

        Raises :class:`ReplayAttackError` when the counter block does
        not hash to the trusted root, i.e. the attacker replayed a
        stale counter.
        """
        self._check_index(leaf_index)
        digest = self.leaf_digest(counter_block)
        stored = self._node(0, leaf_index)
        if digest != stored:
            raise ReplayAttackError(
                f"counter block {leaf_index} does not match integrity tree"
            )
        # Walk the path recomputing parents from stored siblings, ending
        # at the on-chip root.
        index = leaf_index
        for level in range(self.num_levels):
            index //= self.arity
            recomputed = self._hash_children(level, index)
            if recomputed != self._node(level + 1, index):
                raise ReplayAttackError(
                    f"integrity-tree node at level {level + 1} is inconsistent"
                )
        if self._node(self.num_levels, 0) != self._root:
            raise ReplayAttackError("integrity-tree root mismatch")

    def tamper_leaf(self, leaf_index: int, counter_block: bytes) -> None:
        """Attack injection: overwrite a leaf *without* updating parents.

        Models an attacker replaying a stale counter block in off-chip
        memory.  A subsequent :meth:`verify_leaf` must detect it.
        """
        self._check_index(leaf_index)
        self._nodes[0][leaf_index] = self.leaf_digest(counter_block)

    def path_node_ids(self, leaf_index: int) -> List[int]:
        """Unique node ids touched by one leaf's path, excluding the root.

        Used by the traffic model: these are the tree nodes that must be
        fetched (on a metadata-cache miss) to verify/update one counter
        block.  Ids are globally unique across levels.
        """
        self._check_index(leaf_index)
        ids = []
        index = leaf_index
        base = 0
        span = self._level_span(0)
        for level in range(self.num_levels - 1):
            index //= self.arity
            base += span
            span = self._level_span(level + 1)
            ids.append(base + index)
        return ids

    def _level_span(self, level: int) -> int:
        span = self.num_leaves
        for _ in range(level):
            span = (span + self.arity - 1) // self.arity
        return span

    def _check_index(self, leaf_index: int) -> None:
        if not 0 <= leaf_index < self.num_leaves:
            raise IndexError(
                f"leaf index {leaf_index} out of range [0, {self.num_leaves})"
            )
