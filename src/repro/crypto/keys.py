"""Per-context key generation.

When a GPU context is initialised, the command processor's key
generator produces a key tuple (K1, K2, K3) for memory encryption,
memory integrity (MACs) and the integrity tree respectively
(Section IV-A).  The derivation is deterministic from a context seed so
simulations are reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class KeyTuple:
    """The three 16-byte keys of one GPU context."""

    encryption: bytes  # K1: counter-mode pad generation
    integrity: bytes  # K2: MAC computation
    tree: bytes  # K3: integrity-tree hashing

    def __post_init__(self) -> None:
        for name in ("encryption", "integrity", "tree"):
            key = getattr(self, name)
            if len(key) != 16:
                raise ValueError(f"{name} key must be 16 bytes, got {len(key)}")


class KeyGenerator:
    """Derives context key tuples from a device master secret."""

    def __init__(self, master_secret: bytes = b"repro-device-master-secret") -> None:
        if not master_secret:
            raise ValueError("master secret must be non-empty")
        self._master = bytes(master_secret)

    def _derive(self, context_id: int, label: bytes) -> bytes:
        material = hashlib.sha256(
            self._master + context_id.to_bytes(8, "little") + label
        ).digest()
        return material[:16]

    def context_keys(self, context_id: int) -> KeyTuple:
        """Generate (K1, K2, K3) for a GPU context."""
        if context_id < 0:
            raise ValueError("context_id must be non-negative")
        return KeyTuple(
            encryption=self._derive(context_id, b"enc"),
            integrity=self._derive(context_id, b"mac"),
            tree=self._derive(context_id, b"bmt"),
        )
