"""Stateful MACs at block and chunk granularity (Sections II-B, IV-A).

*Block-level* MACs authenticate one 128 B ciphertext line together with
its encryption counters (the counters act as state, making the MAC
"stateful": replaying an old (ciphertext, MAC) pair fails because the
counter has moved on).

*Chunk-level* MACs — this paper's coarse granularity — authenticate a
4 KB chunk by hashing the 32 block-level MACs of the chunk, so a single
8 B fetch verifies a whole streaming chunk.

The functional model uses SHA-256 truncated to the configured MAC size.
The paper's birthday-bound argument for why MACs cannot be truncated
below ~50 bits is exposed as :func:`collision_resistance_updates`.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import math

from repro.common import constants


def collision_resistance_updates(mac_bits: int) -> float:
    """Expected memory updates before a birthday collision (Section III-C).

    With an ``n``-bit MAC, a collision is expected after ~2^(n/2)
    updates.  For a 4 GB memory of 128 B blocks there are 2^25 blocks,
    so ``n`` must be at least 50 bits for collision resistance.
    """
    if mac_bits <= 0:
        raise ValueError("mac_bits must be positive")
    return math.sqrt(2.0**mac_bits)


def minimum_mac_bits(memory_bytes: int = constants.PROTECTED_MEMORY_BYTES) -> int:
    """Smallest MAC size (bits) that resists a write-every-block attack."""
    blocks = memory_bytes // constants.BLOCK_SIZE
    # Need 2^(n/2) >= blocks, i.e. n >= 2*log2(blocks).
    return 2 * math.ceil(math.log2(blocks))


class MACEngine:
    """Keyed MAC generation for lines and chunks."""

    def __init__(self, integrity_key: bytes, mac_size: int = constants.MAC_SIZE) -> None:
        if not 1 <= mac_size <= 32:
            raise ValueError("mac_size must be between 1 and 32 bytes")
        self._key = bytes(integrity_key)
        self.mac_size = mac_size

    def block_mac(self, ciphertext: bytes, address: int, major: int, minor: int) -> bytes:
        """Stateful MAC over one ciphertext line and its counter state."""
        message = (
            ciphertext
            + address.to_bytes(8, "little")
            + major.to_bytes(8, "little")
            + minor.to_bytes(2, "little")
        )
        return _hmac.new(self._key, message, hashlib.sha256).digest()[: self.mac_size]

    def chunk_mac(self, block_macs: list) -> bytes:
        """Coarse MAC over the ordered block MACs of one 4 KB chunk."""
        if not block_macs:
            raise ValueError("chunk must contain at least one block MAC")
        return _hmac.new(
            self._key, b"chunk" + b"".join(block_macs), hashlib.sha256
        ).digest()[: self.mac_size]

    def verify_block(
        self, ciphertext: bytes, address: int, major: int, minor: int, expected: bytes
    ) -> bool:
        return _hmac.compare_digest(
            self.block_mac(ciphertext, address, major, minor), expected
        )

    def verify_chunk(self, block_macs: list, expected: bytes) -> bool:
        return _hmac.compare_digest(self.chunk_mac(block_macs), expected)
