"""SGX-style counter tree — an alternative integrity tree (Fig. 2c).

The paper evaluates with a Bonsai Merkle Tree but notes its schemes
are *independent of the integrity-tree implementation*.  This module
provides the other mainstream option so that claim can be exercised:
an Intel-SGX-style counter tree, where each node packs per-child
version counters plus an embedded MAC computed over the node's
counters and keyed by the *parent's* counter for this child — so a
replayed node fails against its parent, recursively up to an on-chip
root counter.

Structural differences from the BMT that matter for traffic:

* arity 8 (56-bit counters; 8 counters + a 64-bit MAC per 64 B node)
  instead of the BMT's arity 16 — a deeper tree;
* writes *increment* counters up the whole path (eager), whereas the
  BMT re-hashes lazily from cached nodes.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.types import ReplayAttackError

#: Children per node (SGX uses 8-ary version trees).
CTREE_ARITY = 8
MAC_SIZE = 8


@dataclass
class _Node:
    """One tree node: per-child version counters + an embedded MAC."""

    counters: List[int] = field(default_factory=lambda: [0] * CTREE_ARITY)
    mac: bytes = b"\x00" * MAC_SIZE


class CounterTree:
    """A functional SGX-style counter tree over ``num_leaves`` slots.

    Leaves are opaque payloads (e.g. serialized counter blocks); each
    leaf is authenticated by a MAC keyed with its parent's version
    counter, and every interior node likewise — the root's counter
    lives on chip.
    """

    def __init__(self, tree_key: bytes, num_leaves: int) -> None:
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        self._key = bytes(tree_key)
        self.num_leaves = num_leaves
        self.arity = CTREE_ARITY
        self.num_levels = self._levels_for(num_leaves)
        # _nodes[level][index]; level 0 holds the leaves' parents.
        self._nodes: List[Dict[int, _Node]] = [
            dict() for _ in range(self.num_levels)
        ]
        #: On-chip root version counter (attacker-unreachable).
        self._root_counter = 0
        self._leaf_macs: Dict[int, bytes] = {}
        self._leaf_payloads: Dict[int, bytes] = {}

    def _levels_for(self, num_leaves: int) -> int:
        levels = 1
        span = self.arity
        while span < num_leaves:
            span *= self.arity
            levels += 1
        return levels

    # -- MAC helpers -----------------------------------------------------------

    def _leaf_mac(self, leaf: int, payload: bytes, parent_version: int) -> bytes:
        msg = (b"leaf" + leaf.to_bytes(8, "little")
               + parent_version.to_bytes(8, "little") + payload)
        return _hmac.new(self._key, msg, hashlib.sha256).digest()[:MAC_SIZE]

    def _node_mac(self, level: int, index: int, node: _Node,
                  parent_version: int) -> bytes:
        msg = (b"node" + level.to_bytes(2, "little")
               + index.to_bytes(8, "little")
               + parent_version.to_bytes(8, "little")
               + b"".join(c.to_bytes(8, "little") for c in node.counters))
        return _hmac.new(self._key, msg, hashlib.sha256).digest()[:MAC_SIZE]

    def _node(self, level: int, index: int) -> _Node:
        return self._nodes[level].setdefault(index, _Node())

    def _path(self, leaf: int) -> List[Tuple[int, int, int]]:
        """(level, node index, child slot) from the leaf's parent up."""
        path = []
        index = leaf
        for level in range(self.num_levels):
            child = index % self.arity
            index //= self.arity
            path.append((level, index, child))
        return path

    def _parent_version(self, level: int, index: int) -> int:
        """Version counter authenticating node (level, index)."""
        if level + 1 >= self.num_levels:
            return self._root_counter
        parent = self._node(level + 1, index // self.arity)
        return parent.counters[index % self.arity]

    # -- Public API --------------------------------------------------------------

    @property
    def root_counter(self) -> int:
        return self._root_counter

    def update_leaf(self, leaf: int, payload: bytes) -> None:
        """Write path: bump every version counter from leaf to root and
        re-MAC the affected nodes (the eager SGX update)."""
        self._check(leaf)
        path = self._path(leaf)
        # Bump versions bottom-up; the root counter is on chip.
        for level, index, child in path:
            node = self._node(level, index)
            node.counters[child] += 1
        self._root_counter += 1
        # Re-MAC top-down so each MAC uses its parent's new version.
        for level, index, child in reversed(path):
            node = self._node(level, index)
            node.mac = self._node_mac(level, index, node,
                                      self._parent_version(level, index))
        parent_level, parent_index, child = path[0]
        parent = self._node(parent_level, parent_index)
        self._leaf_payloads[leaf] = bytes(payload)
        self._leaf_macs[leaf] = self._leaf_mac(leaf, payload,
                                               parent.counters[child])

    def verify_leaf(self, leaf: int, payload: bytes) -> None:
        """Read path: check the leaf MAC against its parent's version,
        then every node MAC up to the on-chip root counter."""
        self._check(leaf)
        path = self._path(leaf)
        parent_level, parent_index, child = path[0]
        parent = self._node(parent_level, parent_index)
        expected = self._leaf_mac(leaf, payload, parent.counters[child])
        if self._leaf_macs.get(leaf) != expected:
            raise ReplayAttackError(
                f"counter-tree leaf {leaf} fails against its version counter"
            )
        for level, index, _child in path:
            node = self._node(level, index)
            mac = self._node_mac(level, index, node,
                                 self._parent_version(level, index))
            if node.mac != mac:
                raise ReplayAttackError(
                    f"counter-tree node at level {level} is inconsistent"
                )

    # -- Attack surface -------------------------------------------------------------

    def snapshot_leaf(self, leaf: int) -> Tuple[bytes, bytes]:
        """Attacker: copy a leaf's (payload, MAC) from off-chip memory."""
        return self._leaf_payloads[leaf], self._leaf_macs[leaf]

    def replay_leaf(self, leaf: int, payload: bytes, mac: bytes) -> None:
        """Attacker: restore a stale leaf (cannot touch on-chip root)."""
        self._check(leaf)
        self._leaf_payloads[leaf] = bytes(payload)
        self._leaf_macs[leaf] = bytes(mac)

    def _check(self, leaf: int) -> None:
        if not 0 <= leaf < self.num_leaves:
            raise IndexError(f"leaf {leaf} out of range [0, {self.num_leaves})")
