"""Cryptographic substrate: AES, counter-mode encryption, MACs, BMT."""

from repro.crypto.aes import AES128
from repro.crypto.ctr_mode import CounterModeEngine, Seed
from repro.crypto.keys import KeyGenerator, KeyTuple
from repro.crypto.mac import (
    MACEngine,
    collision_resistance_updates,
    minimum_mac_bits,
)
from repro.crypto.merkle import BonsaiMerkleTree

__all__ = [
    "AES128",
    "CounterModeEngine",
    "Seed",
    "KeyGenerator",
    "KeyTuple",
    "MACEngine",
    "collision_resistance_updates",
    "minimum_mac_bits",
    "BonsaiMerkleTree",
]
