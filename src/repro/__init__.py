"""repro — Adaptive Security Support for Heterogeneous Memory on GPUs.

A trace-driven Python reproduction of the HPCA 2022 paper: a secure
GPU memory stack (counter-mode encryption, stateful MACs, Bonsai Merkle
Tree), the paper's adaptive mechanisms (read-only shared counter,
dual-granularity MACs, hardware detectors, L2 victim cache for
metadata), every baseline scheme it compares against, a synthetic
benchmark suite, and a harness regenerating each table and figure of
the evaluation.

Quick start::

    from repro import Runner, Scheme

    runner = Runner(scale=0.25)
    ipc = runner.normalized_ipc("fdtd2d", Scheme.SHM)
"""

from repro.common import (
    AddressMapper,
    DetectorConfig,
    GPUConfig,
    MDCConfig,
    Mechanism,
    MemorySpace,
    Scheme,
    SchemeConfig,
    SimConfig,
    required_mechanisms,
    scheme_config,
)
from repro.core import (
    MemoryEncryptionEngine,
    ReadOnlyDetector,
    SecureGPUContext,
    SecureMemoryDevice,
    StreamingDetector,
    VictimController,
)
from repro.eval import EnergyModel
from repro.sim import GPUSimulator, Runner, RunResult, TraceProfile, shared_runner
from repro.workloads import BENCHMARK_NAMES, Workload, WorkloadBuilder, build_suite

__version__ = "1.0.0"

__all__ = [
    "AddressMapper",
    "DetectorConfig",
    "GPUConfig",
    "MDCConfig",
    "Mechanism",
    "MemorySpace",
    "Scheme",
    "SchemeConfig",
    "SimConfig",
    "required_mechanisms",
    "scheme_config",
    "MemoryEncryptionEngine",
    "ReadOnlyDetector",
    "SecureGPUContext",
    "SecureMemoryDevice",
    "StreamingDetector",
    "VictimController",
    "EnergyModel",
    "GPUSimulator",
    "Runner",
    "RunResult",
    "TraceProfile",
    "shared_runner",
    "BENCHMARK_NAMES",
    "Workload",
    "WorkloadBuilder",
    "build_suite",
    "__version__",
]
