"""The pinned micro+macro benchmark matrix behind ``repro bench``.

Micro benchmarks time the simulator's hot primitives in isolation —
histogram recording, MDC lookups, each scheme's policy stack through a
bare :class:`~repro.core.mee.MemoryEncryptionEngine`, and each
registered DRAM scheduler through a bare
:class:`~repro.memory.dram.DRAMChannel`.  Macro benchmarks are short
full simulator runs (calibration excluded: it happens once in setup)
for a pinned schemes x workloads grid at a pinned scale, so numbers
stay comparable across baselines.

Methodology: per benchmark, ``warmup`` untimed operations, then
``repeats`` timed samples (each ``rounds`` operations) on
``time.perf_counter``; reported statistics are the *robust* set —
min / median / MAD (median absolute deviation) — plus mean and max.
Min and median are the stable estimators for "how fast can this go";
MAD bounds run-to-run noise without assuming normality.

The emitted document (``BENCH_<shortsha>.json``) is validated by
:mod:`repro.perf.schema` and compared against baselines by
:mod:`repro.perf.compare`.
"""

from __future__ import annotations

import os
import platform
import statistics
import sys
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.perf.schema import BENCH_FORMAT

#: The pinned macro grid (schemes x workloads, Table VIII subset):
#: the paper's headline designs over three short, distinct-access-mix
#: workloads.  Changing these renames the benchmarks, which breaks
#: baseline comparison — treat as append-only.
MACRO_SCHEMES = ("naive", "pssm", "shm", "shm_cctr")
MACRO_WORKLOADS = ("atax", "mvt", "bfs")
#: Workload scale of every macro cell (kept tiny so the full matrix
#: stays in CI territory; identical across baselines by construction).
MACRO_SCALE = 0.05
#: Scheme policy stacks pinned into the micro matrix.
POLICY_SCHEMES = ("naive", "common_ctr", "pssm", "shm", "shm_cctr")

#: Primitive operations per micro op() call.
_BATCH = 512


class BenchCase:
    """One named benchmark: ``setup()`` returns ``(op, units)`` where
    one ``op()`` call performs ``units`` primitive operations."""

    def __init__(self, name: str, kind: str, unit: str,
                 setup: Callable[[], Tuple[Callable[[], Any], int]],
                 value_scale: float) -> None:
        self.name = name
        self.kind = kind
        self.unit = unit
        self.setup = setup
        #: seconds-per-primitive-op -> reported unit (1e9 for ns/op).
        self.value_scale = value_scale


# ----------------------------------------------------------------------
# Micro benchmark setups
# ----------------------------------------------------------------------

def _setup_hist() -> Tuple[Callable[[], Any], int]:
    from repro.obs.metrics import LogHistogram

    hist = LogHistogram("bench")
    values = [float((i * 37) % 4096) + 0.5 for i in range(_BATCH)]

    def op() -> None:
        record = hist.record
        for value in values:
            record(value)

    return op, len(values)


def _setup_mdc_lookup() -> Tuple[Callable[[], Any], int]:
    from repro.common.config import MDCConfig
    from repro.metadata.caches import KIND_CTR, MetadataCaches

    caches = MetadataCaches(MDCConfig(), partition_id=0)
    keys = [i % 8 for i in range(_BATCH)]  # resident working set
    for key in set(keys):
        caches.access(KIND_CTR, key, 0)

    def op() -> None:
        access = caches.access
        for key in keys:
            access(KIND_CTR, key, 0)

    return op, len(keys)


def _setup_policy(scheme: str, **overrides: Any) -> Callable[[], Tuple[Callable[[], Any], int]]:
    def setup() -> Tuple[Callable[[], Any], int]:
        from repro.common import constants
        from repro.common.address import AddressMapper
        from repro.common.config import SimConfig
        from repro.core.mee import MemoryEncryptionEngine
        from repro.metadata.counters import SharedCounter

        config = SimConfig().with_scheme(scheme, **overrides)
        gpu = config.gpu
        mapper = AddressMapper(gpu.num_partitions, gpu.interleave_bytes)
        mee = MemoryEncryptionEngine(0, config, mapper, SharedCounter())
        # A partition-0 address stream mixing reads with write-backs.
        accesses: List[Tuple[int, int, bool]] = []
        addr = 0
        while len(accesses) < _BATCH:
            local = mapper.to_local(addr)
            if local.partition == 0:
                accesses.append(
                    (addr, local.offset, len(accesses) % 4 == 3)
                )
            addr += constants.BLOCK_SIZE

        def op() -> None:
            on_read_miss = mee.on_read_miss
            on_writeback = mee.on_writeback
            for physical, offset, is_write in accesses:
                if is_write:
                    on_writeback(0.0, physical, offset)
                else:
                    on_read_miss(0.0, physical, offset)

        return op, len(accesses)

    return setup


def _setup_sched(name: str) -> Callable[[], Tuple[Callable[[], Any], int]]:
    def setup() -> Tuple[Callable[[], Any], int]:
        from dataclasses import replace

        from repro.common.config import GPUConfig
        from repro.memory.dram import DRAMChannel
        from repro.memory.sched import SCHEDULERS

        gpu = replace(GPUConfig(), dram_scheduler=name)
        channel = DRAMChannel(gpu.dram_bytes_per_cycle, gpu.dram_latency,
                              gpu.dram_request_overhead, gpu.dram_turnaround,
                              partition=0, scheduler=SCHEDULERS[name](gpu))
        kinds = ("data", "ctr", "mac", "bmt")
        requests = [
            (float(i * 4), 32 if i % 3 else 128, i % 5 == 4,
             (i * 416) % (1 << 20), kinds[i % 4], i % 4 == 1)
            for i in range(_BATCH)
        ]

        def op() -> None:
            service = channel.service
            for arrival, size, is_write, address, kind, critical in requests:
                service(arrival, size, is_write, address=address,
                        kind=kind, critical=critical)

        return op, len(requests)

    return setup


def _setup_macro(workload: str, scheme: str,
                 core: Optional[str] = None) -> Callable[[], Tuple[Callable[[], Any], int]]:
    def setup() -> Tuple[Callable[[], Any], int]:
        from dataclasses import replace

        from repro.common.config import SimConfig
        from repro.sim.runner import Runner

        config = SimConfig()
        if core is not None:
            config = replace(config, core=core)
        runner = Runner(config=config, scale=MACRO_SCALE)
        runner.calibration(workload)  # excluded from the timed region

        def op() -> None:
            runner.clear_results()  # re-simulate, don't serve a copy
            runner.run(workload, scheme)

        return op, 1

    return setup


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------

def build_cases(smoke: bool = False,
                pattern: Optional[str] = None,
                core: Optional[str] = None) -> List[BenchCase]:
    """The pinned benchmark list; ``smoke`` keeps the full micro
    matrix but only one macro cell, ``pattern`` is a substring filter
    on benchmark names, ``core`` pins the macro cells' execution core
    (default: the process default — ``REPRO_CORE`` or ``event``)."""
    from repro.memory.sched import available_schedulers

    cases = [
        BenchCase("micro.hist.record", "micro", "ns/op", _setup_hist, 1e9),
        BenchCase("micro.mdc.lookup", "micro", "ns/op", _setup_mdc_lookup, 1e9),
    ]
    for scheme in POLICY_SCHEMES:
        cases.append(BenchCase(f"micro.policy.{scheme}", "micro", "ns/op",
                               _setup_policy(scheme), 1e9))
    # The non-default integrity walker, exercised explicitly.
    cases.append(BenchCase("micro.policy.pssm_ctree", "micro", "ns/op",
                           _setup_policy("pssm",
                                         integrity_tree="counter_tree"),
                           1e9))
    for sched in available_schedulers():
        cases.append(BenchCase(f"micro.sched.{sched}", "micro", "ns/op",
                               _setup_sched(sched), 1e9))

    macro_grid = ([("atax", "shm")] if smoke else
                  [(w, s) for w in MACRO_WORKLOADS for s in MACRO_SCHEMES])
    for workload, scheme in macro_grid:
        cases.append(BenchCase(f"macro.{workload}.{scheme}", "macro",
                               "ms/run",
                               _setup_macro(workload, scheme, core=core),
                               1e3))

    if pattern:
        cases = [case for case in cases if pattern in case.name]
    return cases


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def robust_stats(samples: List[float]) -> Dict[str, float]:
    """min / median / MAD (plus mean and max) over the samples."""
    ordered = sorted(samples)
    median = statistics.median(ordered)
    mad = statistics.median([abs(value - median) for value in ordered])
    return {
        "min": ordered[0],
        "max": ordered[-1],
        "median": median,
        "mad": mad,
        "mean": sum(ordered) / len(ordered),
    }


def run_case(case: BenchCase, warmup: int, repeats: int,
             rounds: int) -> dict:
    """Run one benchmark; returns its document entry."""
    op, units = case.setup()
    if case.kind == "macro":
        rounds = 1  # one op is already a full simulator run
    for _ in range(warmup):
        op()
    samples = []
    per_sample_units = units * rounds
    for _ in range(repeats):
        start = perf_counter()
        for _ in range(rounds):
            op()
        elapsed = perf_counter() - start
        samples.append(elapsed / per_sample_units * case.value_scale)
    return {
        "kind": case.kind,
        "unit": case.unit,
        "units_per_op": units,
        "rounds": rounds,
        "samples": samples,
        "stats": robust_stats(samples),
    }


def environment_fingerprint() -> dict:
    from repro.eval.results_io import code_version

    return {
        "git_sha": code_version(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def run_bench(
    smoke: bool = False,
    pattern: Optional[str] = None,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    core: Optional[str] = None,
) -> dict:
    """Run the matrix and return the ``bench_format`` document."""
    from repro.common.config import VALID_CORES, _default_core

    if core is None:
        core = _default_core()
    if core not in VALID_CORES:
        raise ValueError(
            f"unknown core {core!r}; expected one of {VALID_CORES}")
    if repeats is None:
        repeats = 3 if smoke else 5
    if warmup is None:
        warmup = 1 if smoke else 2
    rounds = 1 if smoke else 3
    cases = build_cases(smoke=smoke, pattern=pattern, core=core)
    if not cases:
        raise ValueError(f"no benchmarks match filter {pattern!r}")
    benchmarks = {}
    for case in cases:
        if progress is not None:
            progress(case.name)
        benchmarks[case.name] = run_case(case, warmup, repeats, rounds)
    return {
        "bench_format": BENCH_FORMAT,
        "environment": environment_fingerprint(),
        "config": {
            "smoke": smoke,
            "repeats": repeats,
            "warmup": warmup,
            "rounds": rounds,
            "macro_scale": MACRO_SCALE,
            "core": core,
        },
        "benchmarks": benchmarks,
    }


def measure_ledger_overhead(workload: str = "atax", scheme: str = "shm",
                            scale: float = MACRO_SCALE,
                            repeats: int = 3) -> dict:
    """Measure the decision ledger's host-time overhead on one macro
    cell: the cell is simulated ``repeats`` times with the NULL ledger
    and ``repeats`` times with a :class:`~repro.obs.decisions.
    DecisionLedger` attached, on one shared calibration.

    The result is *reported, never gated*: ledger overhead is an
    explicit opt-in cost, and CI archives this document as an artifact
    so the trend is visible without failing builds over it.
    """
    from repro.obs.decisions import NULL_LEDGER, DecisionLedger
    from repro.sim.runner import Runner

    runner = Runner(scale=scale)
    runner.calibration(workload)  # shared, excluded from timing

    def timed() -> float:
        runner.clear_results()
        start = perf_counter()
        runner.run(workload, scheme)
        return (perf_counter() - start) * 1e3

    runner.run(workload, scheme)  # warmup
    null_samples = [timed() for _ in range(repeats)]
    ledger = DecisionLedger()
    runner.ledger = ledger
    decisions = 0
    ledger_samples = []
    for _ in range(repeats):
        ledger.reset()
        ledger.begin_run(f"{workload}/{scheme}")
        ledger_samples.append(timed())
        decisions = len(ledger.rows)
    runner.ledger = NULL_LEDGER
    null_stats = robust_stats(null_samples)
    ledger_stats = robust_stats(ledger_samples)
    delta = (ledger_stats["median"] / null_stats["median"] - 1.0
             if null_stats["median"] else 0.0)
    return {
        "ledger_overhead_format": 1,
        "environment": environment_fingerprint(),
        "config": {"workload": workload, "scheme": scheme,
                   "scale": scale, "repeats": repeats},
        "decisions": decisions,
        "null_ms": null_stats,
        "ledger_ms": ledger_stats,
        "median_delta": delta,
    }


def default_output_name(doc: dict) -> str:
    """``BENCH_<shortsha>.json`` (``BENCH_local.json`` without git)."""
    sha = doc.get("environment", {}).get("git_sha", "")
    short = sha[:8] if sha and all(c in "0123456789abcdef" for c in sha) \
        else "local"
    return f"BENCH_{short}.json"
