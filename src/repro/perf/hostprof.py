"""Host wall-time stage profiling of the simulator itself.

The :class:`HostProfiler` answers "where does the *host* spend its
time while simulating?" — the complement of the :mod:`repro.obs`
layer, which observes simulated cycles.  Timing marks are threaded
through the same constructor seams the observer uses
(:class:`~repro.sim.runner.Runner` → :class:`~repro.sim.gpu.GPUSimulator`
→ :class:`~repro.sim.pipeline.MemoryPipeline` /
:class:`~repro.core.mee.MemoryEncryptionEngine` →
:class:`~repro.metadata.caches.MetadataCaches`) and attribute host
time to the five request-lifecycle stages the pipeline already models
(ISSUED → L2 → METADATA → DRAM → COMPLETE), per run (workload/scheme).

Zero-overhead discipline, exactly like ``NULL_OBSERVER``: every
instrumented object snapshots ``profiler.enabled`` into a local
boolean at construction and the hot path pays one local-bool branch
per mark when profiling is off — no attribute chasing, no calls.
:data:`NULL_PROFILER` is the shared disabled instance.

Component attribution is a *breakdown* of stage time, not additive
with it: ``metadata_caches`` and the DRAM-scheduler service calls are
timed inside their enclosing stage intervals, and the policy-stack
share is derived as the METADATA remainder.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional

#: Schema version of :meth:`HostProfiler.snapshot` documents.
HOST_PROFILE_FORMAT = 1

#: The five request-lifecycle stages host time is attributed to
#: (mirrors :class:`repro.sim.pipeline.Stage`).
STAGES = ("issued", "l2", "metadata", "dram", "complete")

#: Component breakdown reported by :meth:`HostProfiler.snapshot`.
COMPONENTS = ("frontend", "translate", "l2", "policy_stacks",
              "metadata_caches", "dram_sched")


class RunProfile:
    """Accumulators for one simulated run (one workload x scheme)."""

    __slots__ = ("label", "wall", "stages", "components", "start")

    def __init__(self, label: str, start: float) -> None:
        self.label = label
        self.start = start
        #: Host wall seconds between begin_run and end_run.
        self.wall = 0.0
        self.stages: Dict[str, float] = {stage: 0.0 for stage in STAGES}
        #: Raw measured sub-intervals (nested inside stage intervals):
        #: ``metadata_caches`` (MDC lookups), ``sched_meta`` /
        #: ``sched_data`` (DRAM-scheduler service calls).
        self.components: Dict[str, float] = {}


class HostProfiler:
    """Collects stage-attributed host wall time, per run."""

    enabled = True
    #: The clock; a class attribute so tests can substitute a fake.
    now: Callable[[], float] = staticmethod(perf_counter)

    def __init__(self) -> None:
        self.runs: List[RunProfile] = []
        self._current: Optional[RunProfile] = None
        #: Ledger clock: the timestamp of the last :meth:`mark`.
        self._last = 0.0

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------

    def begin_run(self, label: str) -> None:
        run = RunProfile(label, self.now())
        self.runs.append(run)
        self._current = run
        self._last = run.start

    def end_run(self) -> None:
        run = self._current
        if run is not None:
            run.wall += self.now() - run.start
            self._current = None

    # ------------------------------------------------------------------
    # Hot-path accumulation
    # ------------------------------------------------------------------

    def mark(self, stage: str) -> None:
        """Attribute all host time since the previous mark (or since
        ``begin_run``) to one lifecycle stage and advance the ledger.

        Contiguous by construction: consecutive marks tile the run's
        wall time with no gaps, so stage attribution covers ~100 % of
        the measured wall — call overhead between instrumented layers
        lands in the adjacent stage instead of vanishing.
        """
        run = self._current
        if run is None:
            run = self._open_unattributed()
        t = self.now()
        run.stages[stage] += t - self._last
        self._last = t

    def add(self, stage: str, dt: float) -> None:
        """Attribute ``dt`` host seconds to one lifecycle stage
        (direct form, for externally measured intervals)."""
        run = self._current
        if run is None:
            run = self._open_unattributed()
        run.stages[stage] += dt

    def add_component(self, component: str, dt: float) -> None:
        """Attribute ``dt`` to a sub-component (nested in a stage)."""
        run = self._current
        if run is None:
            run = self._open_unattributed()
        run.components[component] = run.components.get(component, 0.0) + dt

    def _open_unattributed(self) -> RunProfile:
        """Marks arriving outside begin_run/end_run (e.g. a bare
        pipeline driven without the simulator run loop) still land
        somewhere inspectable instead of raising."""
        self.begin_run("(unattributed)")
        run = self._current
        assert run is not None
        return run

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready per-run and total stage/component breakdown."""
        runs: Dict[str, dict] = {}
        total_wall = 0.0
        total_stages = {stage: 0.0 for stage in STAGES}
        total_components = {name: 0.0 for name in COMPONENTS}
        for run in self.runs:
            wall = run.wall
            if run is self._current:  # still open: report live
                wall += self.now() - run.start
            attributed = sum(run.stages.values())
            components = self._component_breakdown(run)
            label = run.label
            suffix = 2
            while label in runs:  # repeated (workload, scheme) runs
                label = f"{run.label}#{suffix}"
                suffix += 1
            runs[label] = {
                "wall_s": wall,
                "attributed_s": attributed,
                "coverage": attributed / wall if wall > 0 else 0.0,
                "stages_s": dict(run.stages),
                "components_s": components,
            }
            total_wall += wall
            for stage, value in run.stages.items():
                total_stages[stage] += value
            for name, value in components.items():
                total_components[name] += value
        total_attributed = sum(total_stages.values())
        return {
            "host_profile_format": HOST_PROFILE_FORMAT,
            "runs": runs,
            "total": {
                "wall_s": total_wall,
                "attributed_s": total_attributed,
                "coverage": (total_attributed / total_wall
                             if total_wall > 0 else 0.0),
                "stages_s": total_stages,
                "components_s": total_components,
            },
        }

    @staticmethod
    def _component_breakdown(run: RunProfile) -> Dict[str, float]:
        """Map raw measured sub-intervals onto the reported component
        vocabulary; the policy-stack share is what remains of the
        METADATA stage once MDC lookups and metadata scheduling are
        taken out."""
        mdc = run.components.get("metadata_caches", 0.0)
        sched_meta = run.components.get("sched_meta", 0.0)
        sched_data = run.components.get("sched_data", 0.0)
        # The event core's batched address translation is measured as
        # its own sub-interval nested inside the ISSUED stage; what
        # remains of that stage is frontend bookkeeping proper.
        translate = run.components.get("translate", 0.0)
        return {
            "frontend": max(0.0, run.stages["issued"] - translate),
            "translate": translate,
            "l2": run.stages["l2"],
            "policy_stacks": max(0.0, run.stages["metadata"] - mdc - sched_meta),
            "metadata_caches": mdc,
            "dram_sched": sched_meta + sched_data,
        }


class NullHostProfiler(HostProfiler):
    """The disabled profiler: every operation is a no-op.

    Instrumented code never calls these on the hot path (it branches
    on a snapshotted ``enabled`` boolean instead), but accidental
    calls must stay harmless and allocation-free."""

    enabled = False

    def begin_run(self, label: str) -> None:
        pass

    def end_run(self) -> None:
        pass

    def mark(self, stage: str) -> None:
        pass

    def add(self, stage: str, dt: float) -> None:
        pass

    def add_component(self, component: str, dt: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "host_profile_format": HOST_PROFILE_FORMAT,
            "runs": {},
            "total": {
                "wall_s": 0.0,
                "attributed_s": 0.0,
                "coverage": 0.0,
                "stages_s": {stage: 0.0 for stage in STAGES},
                "components_s": {name: 0.0 for name in COMPONENTS},
            },
        }


#: Shared disabled profiler (the ``NULL_OBSERVER`` of host timing).
NULL_PROFILER = NullHostProfiler()
