"""Schema validation for ``BENCH_*.json`` documents.

Hand-rolled (no third-party ``jsonschema`` dependency): the checks
cover structure, types and internal consistency — enough for CI to
reject a malformed or truncated baseline before it silently poisons a
``repro bench --compare`` gate.

Run directly to validate files::

    python -m repro.perf.schema BENCH_abc123.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Union

#: Version of the emitted benchmark document.
BENCH_FORMAT = 1

_ENVIRONMENT_KEYS = {"git_sha": str, "python": str, "platform": str,
                     "cpu_count": int}
_CONFIG_KEYS = {"smoke": bool, "repeats": int, "warmup": int, "rounds": int,
                "macro_scale": (int, float)}
_STAT_KEYS = ("min", "max", "median", "mad", "mean")
_KINDS = ("micro", "macro")


class BenchSchemaError(ValueError):
    """A document does not conform to the BENCH schema."""


def _fail(path: str, message: str) -> None:
    raise BenchSchemaError(f"{path}: {message}")


def _require_mapping(doc: dict, key: str) -> dict:
    value = doc.get(key)
    if not isinstance(value, dict):
        _fail(key, f"must be an object, got {type(value).__name__}")
    return value


def validate_bench(doc: dict) -> dict:
    """Validate one benchmark document; returns it unchanged.

    Raises :class:`BenchSchemaError` on the first violation.
    """
    if not isinstance(doc, dict):
        raise BenchSchemaError("document must be a JSON object")
    if doc.get("bench_format") != BENCH_FORMAT:
        _fail("bench_format", f"must be {BENCH_FORMAT}, "
              f"got {doc.get('bench_format')!r}")

    environment = _require_mapping(doc, "environment")
    for key, expected in _ENVIRONMENT_KEYS.items():
        value = environment.get(key)
        if not isinstance(value, expected) \
                or (expected is int and isinstance(value, bool)):
            _fail(f"environment.{key}",
                  f"must be {expected.__name__}, got {value!r}")

    config = _require_mapping(doc, "config")
    for key, expected_types in _CONFIG_KEYS.items():
        value = config.get(key)
        if not isinstance(value, expected_types) \
                or isinstance(value, bool) != (expected_types is bool):
            _fail(f"config.{key}", f"bad value {value!r}")
    core = config.get("core")
    if core is not None and not isinstance(core, str):
        _fail("config.core", f"bad value {core!r}")
    if config["repeats"] < 1:
        _fail("config.repeats", "must be >= 1")
    if config["warmup"] < 0:
        _fail("config.warmup", "must be >= 0")

    benchmarks = _require_mapping(doc, "benchmarks")
    if not benchmarks:
        _fail("benchmarks", "must not be empty")
    for name, entry in benchmarks.items():
        _validate_entry(name, entry, config["repeats"])
    return doc


def _validate_entry(name: str, entry: object, repeats: int) -> None:
    path = f"benchmarks.{name}"
    if not isinstance(entry, dict):
        _fail(path, "must be an object")
    assert isinstance(entry, dict)
    if entry.get("kind") not in _KINDS:
        _fail(f"{path}.kind", f"must be one of {_KINDS}, "
              f"got {entry.get('kind')!r}")
    if not isinstance(entry.get("unit"), str) or not entry["unit"]:
        _fail(f"{path}.unit", "must be a non-empty string")
    units = entry.get("units_per_op")
    if not isinstance(units, int) or isinstance(units, bool) or units < 1:
        _fail(f"{path}.units_per_op", f"must be a positive int, got {units!r}")

    samples = entry.get("samples")
    if not isinstance(samples, list) or not samples:
        _fail(f"{path}.samples", "must be a non-empty list")
    assert isinstance(samples, list)
    if len(samples) != repeats:
        _fail(f"{path}.samples",
              f"expected {repeats} samples (config.repeats), "
              f"got {len(samples)}")
    for i, sample in enumerate(samples):
        if not isinstance(sample, (int, float)) or isinstance(sample, bool) \
                or sample <= 0:
            _fail(f"{path}.samples[{i}]",
                  f"must be a positive number, got {sample!r}")

    stats = entry.get("stats")
    if not isinstance(stats, dict):
        _fail(f"{path}.stats", "must be an object")
    assert isinstance(stats, dict)
    for key in _STAT_KEYS:
        value = stats.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"{path}.stats.{key}", f"must be a number, got {value!r}")
    if stats["mad"] < 0:
        _fail(f"{path}.stats.mad", "must be non-negative")
    if not stats["min"] <= stats["median"] <= stats["max"]:
        _fail(f"{path}.stats",
              "min <= median <= max violated: "
              f"{stats['min']} / {stats['median']} / {stats['max']}")
    if abs(stats["min"] - min(samples)) > 1e-9 * max(stats["min"], 1.0):
        _fail(f"{path}.stats.min", "does not match samples")


def validate_file(path: Union[str, Path]) -> dict:
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path}: not valid JSON: {exc}") from exc
    return validate_bench(doc)


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python -m repro.perf.schema BENCH_*.json",
              file=sys.stderr)
        return 2
    for path in argv:
        try:
            doc = validate_file(path)
        except (OSError, BenchSchemaError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            return 1
        print(f"ok {path}: {len(doc['benchmarks'])} benchmarks, "
              f"code {doc['environment']['git_sha'] or '?'}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
