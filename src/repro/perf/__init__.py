"""Performance observability: host-time profiling and benchmarking.

Where :mod:`repro.obs` observes *simulated* cycles, this package
observes the simulator itself — host wall time per pipeline stage
(:mod:`repro.perf.hostprof`), a pinned micro+macro benchmark matrix
with robust statistics (:mod:`repro.perf.bench`), the ``BENCH_*.json``
schema (:mod:`repro.perf.schema`) and baseline comparison with a
regression gate (:mod:`repro.perf.compare`).
"""

from repro.perf.hostprof import (
    COMPONENTS,
    HOST_PROFILE_FORMAT,
    NULL_PROFILER,
    STAGES,
    HostProfiler,
    NullHostProfiler,
)

__all__ = [
    "COMPONENTS",
    "HOST_PROFILE_FORMAT",
    "NULL_PROFILER",
    "STAGES",
    "HostProfiler",
    "NullHostProfiler",
]
