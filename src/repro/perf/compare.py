"""Baseline comparison and the regression gate for ``repro bench``.

Benchmarks are matched by name between an old (baseline) and a new
(current) document; the compared statistic is the **median** (robust
against one noisy sample).  A benchmark regresses when its median
grew by more than the threshold (default 15 %); ``repro bench
--compare`` exits nonzero when any benchmark regresses.

Two baseline sources are supported:

* a committed ``BENCH_*.json`` file (:func:`compare_docs` against a
  validated document), the original hand-curated flow;
* the telemetry store (:func:`against_store`): the baseline is the
  **rolling median** of each benchmark's last few recorded runs
  (:meth:`repro.obs.store.TelemetryStore.rolling_baseline`), which
  absorbs one noisy CI run instead of enshrining it.

Either way the verdict is *per benchmark cell*: every
:class:`CompareRow` carries its own median delta, and
:func:`compare_report` serialises the full per-cell table (not just
the aggregate verdict) for the CI report artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.store import TelemetryStore

#: Default regression gate: > 15 % median growth fails.
DEFAULT_THRESHOLD = 0.15

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_ADDED = "added"
STATUS_REMOVED = "removed"
STATUS_INCOMPARABLE = "incomparable"


@dataclass
class CompareRow:
    """Per-benchmark comparison outcome."""

    name: str
    unit: str
    status: str
    old_median: Optional[float] = None
    new_median: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """new / old median (None when either side is missing)."""
        if self.old_median and self.new_median is not None:
            return self.new_median / self.old_median
        return None

    @property
    def delta(self) -> Optional[float]:
        """Relative median change, ``new/old - 1`` (+0.23 = 23 %
        slower; None when the cells are incomparable)."""
        ratio = self.ratio
        return None if ratio is None else ratio - 1.0


def compare_docs(old: dict, new: dict,
                 threshold: float = DEFAULT_THRESHOLD) -> List[CompareRow]:
    """Compare two validated benchmark documents, benchmark by name.

    Improvement is flagged symmetrically (median shrank by more than
    the threshold) but never gates; renamed/retired benchmarks show as
    added/removed rather than silently vanishing from the report.
    """
    old_benchmarks = old["benchmarks"]
    new_benchmarks = new["benchmarks"]
    rows = []
    for name in sorted(set(old_benchmarks) | set(new_benchmarks)):
        old_entry = old_benchmarks.get(name)
        new_entry = new_benchmarks.get(name)
        if old_entry is None:
            assert new_entry is not None
            rows.append(CompareRow(name, new_entry["unit"], STATUS_ADDED,
                                   new_median=new_entry["stats"]["median"]))
            continue
        if new_entry is None:
            rows.append(CompareRow(name, old_entry["unit"], STATUS_REMOVED,
                                   old_median=old_entry["stats"]["median"]))
            continue
        old_median = old_entry["stats"]["median"]
        new_median = new_entry["stats"]["median"]
        if old_entry["unit"] != new_entry["unit"] or old_median <= 0:
            rows.append(CompareRow(name, new_entry["unit"],
                                   STATUS_INCOMPARABLE,
                                   old_median=old_median,
                                   new_median=new_median))
            continue
        ratio = new_median / old_median
        if ratio > 1.0 + threshold:
            status = STATUS_REGRESSION
        elif ratio < 1.0 - threshold:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
        rows.append(CompareRow(name, new_entry["unit"], status,
                               old_median=old_median, new_median=new_median))
    return rows


def regressions(rows: List[CompareRow]) -> List[CompareRow]:
    return [row for row in rows if row.status == STATUS_REGRESSION]


def against_store(new: dict, store_path: Union[str, "TelemetryStore"],
                  threshold: float = DEFAULT_THRESHOLD,
                  window: int = 5) -> List[CompareRow]:
    """Gate ``new`` against the telemetry store's rolling baseline.

    The baseline medians come from the last ``window`` recorded runs
    of each benchmark (see ``TelemetryStore.rolling_baseline``), so
    after the committed ``BENCH_baseline.json`` has been recorded once
    the store reproduces the committed-baseline verdict and then keeps
    tracking the trajectory as more runs land.  Raises ``ValueError``
    when the store has no bench history to compare against.
    """
    from repro.obs.store import TelemetryStore

    store = (store_path if isinstance(store_path, TelemetryStore)
             else TelemetryStore(store_path))
    baseline = store.rolling_baseline(window=window)
    if not baseline["benchmarks"]:
        raise ValueError(
            f"{store.path}: no bench history recorded "
            f"(seed it with repro bench --record-store)"
        )
    return compare_docs(baseline, new, threshold)


def compare_report(rows: List[CompareRow], threshold: float,
                   baseline: Optional[str] = None) -> dict:
    """The machine-readable comparison document (the CI artifact).

    Carries the full per-cell table — name, unit, status, both
    medians, ratio and signed delta — plus the names of the regressed
    cells, so the artifact answers *which* cells regressed and by how
    much, not just whether the gate tripped.
    """
    return {
        "compare_format": 1,
        "threshold": threshold,
        "baseline": baseline,
        "regressed": [row.name for row in regressions(rows)],
        "cells": [
            {
                "name": row.name,
                "unit": row.unit,
                "status": row.status,
                "old_median": row.old_median,
                "new_median": row.new_median,
                "ratio": row.ratio,
                "delta_pct": (None if row.delta is None
                              else round(100.0 * row.delta, 2)),
            }
            for row in rows
        ],
    }
