"""Baseline comparison and the regression gate for ``repro bench``.

Benchmarks are matched by name between an old (baseline) and a new
(current) document; the compared statistic is the **median** (robust
against one noisy sample).  A benchmark regresses when its median
grew by more than the threshold (default 15 %); ``repro bench
--compare`` exits nonzero when any benchmark regresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: Default regression gate: > 15 % median growth fails.
DEFAULT_THRESHOLD = 0.15

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_ADDED = "added"
STATUS_REMOVED = "removed"
STATUS_INCOMPARABLE = "incomparable"


@dataclass
class CompareRow:
    """Per-benchmark comparison outcome."""

    name: str
    unit: str
    status: str
    old_median: Optional[float] = None
    new_median: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """new / old median (None when either side is missing)."""
        if self.old_median and self.new_median is not None:
            return self.new_median / self.old_median
        return None


def compare_docs(old: dict, new: dict,
                 threshold: float = DEFAULT_THRESHOLD) -> List[CompareRow]:
    """Compare two validated benchmark documents, benchmark by name.

    Improvement is flagged symmetrically (median shrank by more than
    the threshold) but never gates; renamed/retired benchmarks show as
    added/removed rather than silently vanishing from the report.
    """
    old_benchmarks = old["benchmarks"]
    new_benchmarks = new["benchmarks"]
    rows = []
    for name in sorted(set(old_benchmarks) | set(new_benchmarks)):
        old_entry = old_benchmarks.get(name)
        new_entry = new_benchmarks.get(name)
        if old_entry is None:
            assert new_entry is not None
            rows.append(CompareRow(name, new_entry["unit"], STATUS_ADDED,
                                   new_median=new_entry["stats"]["median"]))
            continue
        if new_entry is None:
            rows.append(CompareRow(name, old_entry["unit"], STATUS_REMOVED,
                                   old_median=old_entry["stats"]["median"]))
            continue
        old_median = old_entry["stats"]["median"]
        new_median = new_entry["stats"]["median"]
        if old_entry["unit"] != new_entry["unit"] or old_median <= 0:
            rows.append(CompareRow(name, new_entry["unit"],
                                   STATUS_INCOMPARABLE,
                                   old_median=old_median,
                                   new_median=new_median))
            continue
        ratio = new_median / old_median
        if ratio > 1.0 + threshold:
            status = STATUS_REGRESSION
        elif ratio < 1.0 - threshold:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
        rows.append(CompareRow(name, new_entry["unit"], status,
                               old_median=old_median, new_median=new_median))
    return rows


def regressions(rows: List[CompareRow]) -> List[CompareRow]:
    return [row for row in rows if row.status == STATUS_REGRESSION]
