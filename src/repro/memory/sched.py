"""Pluggable DRAM service disciplines (the scheduler layer).

:class:`repro.memory.dram.DRAMChannel` models *capacity* — bus
occupancy, request overhead, read/write turnaround — while the
scheduler decides *order*: which transaction occupies the bus next.
The channel delegates every :meth:`~repro.memory.dram.DRAMChannel.
service` call to its scheduler, and schedulers issue transactions onto
the bus through :meth:`~repro.memory.dram.DRAMChannel.occupy`.

Three disciplines ship with the simulator:

* :class:`FIFOScheduler` — arrival order, the paper's baseline model.
  Bit-identical to the historical inline ``DRAMChannel.service`` path.
* :class:`CriticalFirstScheduler` — defers non-critical MAC/BMT
  *writes* into a bounded write buffer and issues them only into bus
  idle gaps (or when the buffer overflows / at teardown), so
  decrypt-blocking counter fetches and demand data are never queued
  behind deferrable metadata write backs.
* :class:`BankedScheduler` — the bank-level row-buffer model promoted
  to a first-class policy: a transaction whose address falls in its
  bank's open row proceeds at bus speed, a row miss pays an activation
  penalty.

Schedulers are selected by name via :data:`SCHEDULERS` (the
``GPUConfig.dram_scheduler`` knob), so a campaign can sweep them as
ordinary config cells; :func:`register_scheduler` adds new disciplines
without touching the channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.common.config import GPUConfig
    from repro.memory.dram import DRAMChannel

#: Metadata kinds whose *writes* are deferrable: nothing waits on a MAC
#: or BMT update reaching DRAM (verification is off the critical path).
DEFERRABLE_WRITE_KINDS = frozenset({"mac", "bmt"})


class DRAMScheduler(ABC):
    """Service discipline of one :class:`DRAMChannel`.

    A scheduler is stateful and owned by exactly one channel.  It
    receives every transaction offered to the channel and decides when
    each one occupies the bus (via ``channel.occupy``); the return
    value of :meth:`service` is the transaction's completion cycle as
    seen by the caller.
    """

    name = "abstract"

    @abstractmethod
    def service(self, channel: "DRAMChannel", arrival: float, size: int,
                is_write: bool, address: int, kind: str,
                critical: bool) -> float:
        """Accept one transaction; return its completion cycle."""

    def drain(self, channel: "DRAMChannel") -> float:
        """Teardown: issue any transactions the discipline is still
        holding back.  Returns the completion cycle of the last one
        issued (0.0 when nothing was pending)."""
        return 0.0


class FIFOScheduler(DRAMScheduler):
    """Arrival-order service — the calibrated baseline discipline."""

    name = "fifo"

    def service(self, channel: "DRAMChannel", arrival: float, size: int,
                is_write: bool, address: int, kind: str,
                critical: bool) -> float:
        return channel.occupy(arrival, size, is_write)


class BankedScheduler(DRAMScheduler):
    """FIFO order plus a per-bank open-row model.

    ``address // row_bytes`` selects the global row; rows interleave
    across banks.  A transaction that misses its bank's open row pays
    ``row_miss_penalty`` extra occupancy (precharge + activate).
    Transactions without an address (``address < 0``) bypass the row
    model entirely.
    """

    name = "banked"

    def __init__(self, num_banks: int = 16, row_bytes: int = 2048,
                 row_miss_penalty: float = 20.0) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be at least 1")
        if row_bytes <= 0 or row_bytes & (row_bytes - 1):
            raise ValueError("row_bytes must be a power of two")
        if row_miss_penalty < 0:
            raise ValueError("row_miss_penalty must be non-negative")
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.row_miss_penalty = row_miss_penalty
        self._open_rows = [-1] * num_banks

    def service(self, channel: "DRAMChannel", arrival: float, size: int,
                is_write: bool, address: int, kind: str,
                critical: bool) -> float:
        extra = 0.0
        if self.row_miss_penalty and address >= 0:
            row_global = address // self.row_bytes
            bank = row_global % self.num_banks
            row = row_global // self.num_banks
            if self._open_rows[bank] != row:
                self._open_rows[bank] = row
                extra = self.row_miss_penalty
        return channel.occupy(arrival, size, is_write, extra=extra)


class CriticalFirstScheduler(DRAMScheduler):
    """Prioritise decrypt-critical traffic over deferrable writes.

    MAC and BMT write backs are *posted*: nothing on the critical path
    waits for them, so holding them in a small write buffer and
    issuing them only when the bus would otherwise idle removes their
    queueing delay from demand reads and counter fetches.  The model:

    * a deferrable write enters the buffer instead of the bus; when
      the buffer exceeds ``capacity`` the oldest entry is forced out
      (real write buffers are finite);
    * before any non-deferrable transaction is issued, buffered writes
      whose full occupancy fits in the idle gap before ``arrival`` are
      issued into that gap — they complete before the demand
      transaction would have started, costing it nothing;
    * :meth:`drain` (context teardown) issues everything left.

    Total bytes moved are unchanged — only their timing shifts, which
    is exactly the contention effect the paper's MEE/DRAM interplay
    measures.
    """

    name = "critical_first"

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        #: Pending (arrival, size, address) write transactions.
        self._deferred: Deque[Tuple[float, int, int]] = deque()
        #: Total bytes buffered, maintained incrementally so the
        #: posted estimate never walks the queue.
        self._pending_bytes = 0

    def service(self, channel: "DRAMChannel", arrival: float, size: int,
                is_write: bool, address: int, kind: str,
                critical: bool) -> float:
        if is_write and kind in DEFERRABLE_WRITE_KINDS and not critical:
            self._deferred.append((arrival, size, address))
            self._pending_bytes += size
            while len(self._deferred) > self.capacity:
                self._issue_oldest(channel)
            return self._posted_estimate(channel)
        # Fill bus idle time before the demand transaction with
        # buffered writes that fit entirely into the gap — *including*
        # the read-return turnaround: issuing a write flips the bus to
        # write mode, so a demand read that would otherwise have paid
        # no turnaround now pays one.  That cost must fit in the gap
        # too, or "free" gap fills would delay the critical read they
        # were supposed to stay out of the way of.
        if self._deferred:
            return_cost = (
                channel.turnaround
                if not is_write and not channel.last_was_write
                else 0.0
            )
            while self._deferred:
                _, dsize, _ = self._deferred[0]
                if (channel.next_free + channel.estimate(dsize, True)
                        + return_cost > arrival):
                    break
                self._issue_oldest(channel)
        return channel.occupy(arrival, size, is_write)

    def _posted_estimate(self, channel: "DRAMChannel") -> float:
        """Completion estimate for the newest buffered write.

        The write retires once the bus is free *and* everything queued
        ahead of it in the buffer has drained, each entry paying its
        own request overhead and transfer time (the old estimate —
        ``next_free + latency`` — pretended the write was free and
        ahead of its own queue).  If the bus is in read mode, the
        first drained write pays the turnaround once.  O(1): the
        buffered byte total is maintained incrementally.
        """
        occupancy = (len(self._deferred) * channel.request_overhead
                     + self._pending_bytes / channel.bytes_per_cycle)
        if not channel.last_was_write:
            occupancy += channel.turnaround
        return channel.next_free + occupancy + channel.latency

    def _issue_oldest(self, channel: "DRAMChannel") -> float:
        arrival, size, _ = self._deferred.popleft()
        self._pending_bytes -= size
        return channel.occupy(arrival, size, True)

    def drain(self, channel: "DRAMChannel") -> float:
        done = 0.0
        while self._deferred:
            done = self._issue_oldest(channel)
        return done

    @property
    def pending_writes(self) -> int:
        return len(self._deferred)


# ---------------------------------------------------------------------------
# The scheduler registry (the ``GPUConfig.dram_scheduler`` knob)
# ---------------------------------------------------------------------------

SchedulerFactory = Callable[["GPUConfig"], DRAMScheduler]

#: name -> per-channel factory.  Every entry is sweepable as a campaign
#: cell via ``replace(config.gpu, dram_scheduler=name)``.
SCHEDULERS: Dict[str, SchedulerFactory] = {}


def register_scheduler(name: str, factory: SchedulerFactory,
                       replace: bool = False) -> None:
    """Register a DRAM service discipline under ``name``.

    The factory is called once per channel with the run's
    :class:`~repro.common.config.GPUConfig` and must return a fresh
    scheduler instance (schedulers are stateful).
    """
    if not replace and name in SCHEDULERS:
        raise ValueError(f"scheduler {name!r} is already registered")
    SCHEDULERS[name] = factory


def available_schedulers() -> List[str]:
    return sorted(SCHEDULERS)


def build_scheduler(gpu: "GPUConfig") -> DRAMScheduler:
    """One fresh scheduler for one channel, per ``gpu.dram_scheduler``."""
    name = gpu.dram_scheduler
    factory = SCHEDULERS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown DRAM scheduler {name!r}; "
            f"available: {', '.join(available_schedulers())}"
        )
    return factory(gpu)


register_scheduler("fifo", lambda gpu: FIFOScheduler())
register_scheduler(
    "critical_first",
    lambda gpu: CriticalFirstScheduler(capacity=gpu.dram_write_buffer),
)
register_scheduler(
    "banked",
    lambda gpu: BankedScheduler(gpu.dram_num_banks, gpu.dram_row_bytes,
                                gpu.dram_row_miss_penalty),
)
