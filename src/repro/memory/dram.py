"""GDDR DRAM channel model: a bandwidth-limited FIFO service queue.

Each memory partition owns one channel.  A request occupies the channel
for ``size / bytes_per_cycle`` cycles (bandwidth) and completes a flat
``latency`` after its service finishes (row access, bus turnaround,
etc. folded into one constant).  Requests of one channel are serviced
in arrival order, so metadata traffic queued ahead of demand data
delays that data — the contention mechanism at the heart of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import constants
from repro.obs.observer import NULL_OBSERVER


@dataclass
class DRAMStats:
    requests: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    busy_cycles: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


class DRAMChannel:
    """One partition's GDDR channel."""

    def __init__(
        self,
        bytes_per_cycle: float = constants.DRAM_BYTES_PER_CYCLE,
        latency: int = constants.DRAM_LATENCY,
        request_overhead: float = 0.0,
        turnaround: float = 0.0,
        num_banks: int = 1,
        row_bytes: int = 2048,
        row_miss_penalty: float = 0.0,
        partition: int = 0,
        observer=None,
    ) -> None:
        """``num_banks``/``row_bytes``/``row_miss_penalty`` enable the
        optional bank-level row-buffer model: a request whose address
        falls in its bank's open row proceeds at bus speed; a row miss
        adds an activation penalty.  The default (one bank, no penalty)
        keeps the flat model used by the calibrated baseline."""
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if request_overhead < 0:
            raise ValueError("request_overhead must be non-negative")
        if turnaround < 0:
            raise ValueError("turnaround must be non-negative")
        if num_banks < 1:
            raise ValueError("num_banks must be at least 1")
        if row_bytes <= 0 or row_bytes & (row_bytes - 1):
            raise ValueError("row_bytes must be a power of two")
        if row_miss_penalty < 0:
            raise ValueError("row_miss_penalty must be non-negative")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.request_overhead = request_overhead
        self.turnaround = turnaround
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.row_miss_penalty = row_miss_penalty
        self._open_rows = [-1] * num_banks
        self._next_free = 0.0
        self._last_was_write = False
        self.stats = DRAMStats()
        self.partition = partition
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled

    def service(self, arrival: float, size: int, is_write: bool = False,
                address: int = -1) -> float:
        """Enqueue a request; return its completion cycle.

        Completion = end of bus occupancy + flat latency.  Every
        request pays a fixed ``request_overhead`` (row activation /
        command bus) on top of its transfer time, which is what makes
        many small metadata transfers costlier than few large data ones
        (cf. the ECC-on-GDDR bandwidth observation in Section II-C).
        Writes are posted (the caller typically ignores their
        completion time) but still occupy the channel.
        """
        if size <= 0:
            raise ValueError("request size must be positive")
        start = max(arrival, self._next_free)
        occupancy = self.request_overhead + size / self.bytes_per_cycle
        if is_write != self._last_was_write:
            # Read/write bus turnaround: mixing small metadata writes
            # into a read stream costs real GDDR bandwidth.
            occupancy += self.turnaround
            self._last_was_write = is_write
        if self.row_miss_penalty and address >= 0:
            row_global = address // self.row_bytes
            bank = row_global % self.num_banks
            row = row_global // self.num_banks
            if self._open_rows[bank] != row:
                self._open_rows[bank] = row
                occupancy += self.row_miss_penalty
        self._next_free = start + occupancy
        self.stats.requests += 1
        self.stats.busy_cycles += occupancy
        if is_write:
            self.stats.write_bytes += size
        else:
            self.stats.read_bytes += size
        if self._observe:
            self.obs.dram(self.partition, arrival, start, self._next_free,
                          size, is_write)
        return self._next_free + self.latency

    @property
    def next_free(self) -> float:
        return self._next_free

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of cycles the channel bus was occupied."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)
