"""GDDR DRAM channel model: a bandwidth-limited service queue.

Each memory partition owns one channel.  A request occupies the channel
for ``size / bytes_per_cycle`` cycles (bandwidth) and completes a flat
``latency`` after its service finishes (row access, bus turnaround,
etc. folded into one constant).  *When* a request occupies the bus is
decided by the channel's :class:`~repro.memory.sched.DRAMScheduler` —
FIFO by default, so metadata traffic queued ahead of demand data
delays that data: the contention mechanism at the heart of the paper.
Alternative disciplines (critical-first, banked row buffers) plug in
via :mod:`repro.memory.sched`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common import constants
from repro.memory.sched import BankedScheduler, DRAMScheduler, FIFOScheduler
from repro.obs.observer import NULL_OBSERVER


@dataclass
class DRAMStats:
    requests: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    busy_cycles: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


class DRAMChannel:
    """One partition's GDDR channel.

    The channel models *capacity* (occupancy, overheads, stats); its
    scheduler models *order*.  Schedulers place transactions on the
    bus through :meth:`occupy`.
    """

    def __init__(
        self,
        bytes_per_cycle: float = constants.DRAM_BYTES_PER_CYCLE,
        latency: int = constants.DRAM_LATENCY,
        request_overhead: float = 0.0,
        turnaround: float = 0.0,
        num_banks: int = 1,
        row_bytes: int = 2048,
        row_miss_penalty: float = 0.0,
        partition: int = 0,
        observer=None,
        scheduler: Optional[DRAMScheduler] = None,
    ) -> None:
        """``num_banks``/``row_bytes``/``row_miss_penalty`` configure
        the bank-level row-buffer model (a :class:`BankedScheduler` is
        selected automatically when ``row_miss_penalty`` is set): a
        request whose address falls in its bank's open row proceeds at
        bus speed; a row miss adds an activation penalty.  The default
        (no penalty, FIFO scheduler) keeps the flat model used by the
        calibrated baseline.  An explicit ``scheduler`` overrides the
        automatic choice."""
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if request_overhead < 0:
            raise ValueError("request_overhead must be non-negative")
        if turnaround < 0:
            raise ValueError("turnaround must be non-negative")
        if num_banks < 1:
            raise ValueError("num_banks must be at least 1")
        if row_bytes <= 0 or row_bytes & (row_bytes - 1):
            raise ValueError("row_bytes must be a power of two")
        if row_miss_penalty < 0:
            raise ValueError("row_miss_penalty must be non-negative")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.request_overhead = request_overhead
        self.turnaround = turnaround
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.row_miss_penalty = row_miss_penalty
        if scheduler is None:
            if row_miss_penalty > 0:
                scheduler = BankedScheduler(num_banks, row_bytes,
                                            row_miss_penalty)
            else:
                scheduler = FIFOScheduler()
        self.scheduler = scheduler
        #: True when the discipline is plain FIFO: ``service`` is then
        #: a pure pass-through to :meth:`occupy`, and the pipeline's
        #: batch core may call ``occupy`` directly (identical timing
        #: arithmetic, two call layers fewer).  Snapshot at
        #: construction — channels own their scheduler for life.
        self.fifo_fast = type(scheduler) is FIFOScheduler
        self._next_free = 0.0
        self._last_was_write = False
        self.stats = DRAMStats()
        self.partition = partition
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled

    def service(self, arrival: float, size: int, is_write: bool = False,
                address: int = -1, kind: str = "data",
                critical: bool = False) -> float:
        """Enqueue a request; return its completion cycle.

        Completion = end of bus occupancy + flat latency.  Every
        request pays a fixed ``request_overhead`` (row activation /
        command bus) on top of its transfer time, which is what makes
        many small metadata transfers costlier than few large data ones
        (cf. the ECC-on-GDDR bandwidth observation in Section II-C).
        Writes are posted (the caller typically ignores their
        completion time) but still occupy the channel.  ``kind`` and
        ``critical`` describe the transaction to the scheduler — a
        reordering discipline may hold deferrable traffic back, in
        which case the returned cycle is its posted estimate.
        """
        if size <= 0:
            raise ValueError("request size must be positive")
        return self.scheduler.service(self, arrival, size, is_write,
                                      address, kind, critical)

    def occupy(self, arrival: float, size: int, is_write: bool,
               extra: float = 0.0) -> float:
        """Place one transaction on the bus *now* (scheduler entry
        point); returns its completion cycle.  ``extra`` adds
        discipline-specific occupancy (e.g. a row-activation penalty).
        """
        start = max(arrival, self._next_free)
        occupancy = self.request_overhead + size / self.bytes_per_cycle
        if is_write != self._last_was_write:
            # Read/write bus turnaround: mixing small metadata writes
            # into a read stream costs real GDDR bandwidth.
            occupancy += self.turnaround
            self._last_was_write = is_write
        if extra:
            occupancy += extra
        self._next_free = start + occupancy
        self.stats.requests += 1
        self.stats.busy_cycles += occupancy
        if is_write:
            self.stats.write_bytes += size
        else:
            self.stats.read_bytes += size
        if self._observe:
            self.obs.dram(self.partition, arrival, start, self._next_free,
                          size, is_write)
        return self._next_free + self.latency

    def estimate(self, size: int, is_write: bool) -> float:
        """Occupancy this transaction would cost if issued now (no
        state change) — schedulers use it to fit writes into idle gaps.
        """
        occupancy = self.request_overhead + size / self.bytes_per_cycle
        if is_write != self._last_was_write:
            occupancy += self.turnaround
        return occupancy

    def drain(self) -> float:
        """Teardown: flush any transactions the scheduler is holding
        back; returns the completion cycle of the last one (0.0 if
        none were pending)."""
        return self.scheduler.drain(self)

    @property
    def next_free(self) -> float:
        return self._next_free

    @property
    def last_was_write(self) -> bool:
        """Current bus direction: True after a write occupied the bus.
        Schedulers consult it to price the turnaround a transaction
        (or a gap-filled write burst) will cause."""
        return self._last_was_write

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of cycles the channel bus was occupied.

        Reported unclamped: a ratio above 1.0 means busy cycles were
        over-accounted (or ``elapsed_cycles`` undercounts the run) and
        should fail loudly in tests, not be masked.  The old
        ``min(1.0, ...)`` clamp hid exactly that class of bug.
        """
        if elapsed_cycles <= 0:
            return 0.0
        return self.stats.busy_cycles / elapsed_cycles
