"""Memory-system substrate: sectored caches, MSHRs, L2 banks, GDDR DRAM."""

from repro.memory.cache import AccessResult, Eviction, SectoredCache
from repro.memory.dram import DRAMChannel, DRAMStats
from repro.memory.l2 import L2AccessResult, L2Bank, PartitionL2, SAMPLE_STRIDE
from repro.memory.mshr import MSHRFile

__all__ = [
    "AccessResult",
    "Eviction",
    "SectoredCache",
    "DRAMChannel",
    "DRAMStats",
    "L2AccessResult",
    "L2Bank",
    "PartitionL2",
    "SAMPLE_STRIDE",
    "MSHRFile",
]
