"""L2 cache banks with MSHR merging, miss-rate sampling and a
victim-cache mode for security metadata (Section IV-D).

Each memory partition has two L2 banks.  A small fraction of sets is
*sampled*: those sets never receive victim metadata lines, so their
miss rate reflects pure data behaviour — the signal used to decide
when to enable the victim-cache mode (the set-sampling idea of
utility-based cache partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from repro.common.config import CacheConfig, GPUConfig
from repro.memory.cache import Eviction, SectoredCache
from repro.memory.mshr import MSHRFile
from repro.obs.observer import NULL_OBSERVER

#: One in SAMPLE_STRIDE sets is reserved for data-only sampling.
SAMPLE_STRIDE = 16


@dataclass
class L2AccessResult:
    """Outcome of a data access to the L2."""

    hit: bool
    #: Completion time of an in-flight fill this access merged into
    #: (None for hits and for fresh misses).
    merged_done: Optional[float]
    #: Earliest cycle a fresh miss may issue to DRAM (MSHR stall).
    issue_at: float
    #: Dirty data write-back obligations (key, dirty sector count).
    writebacks: List[Eviction]
    needs_fetch: bool


class L2Bank:
    """One sectored L2 bank plus its MSHR file."""

    def __init__(self, config: CacheConfig, name: str, observer=None) -> None:
        self.cache = SectoredCache(config, name=name)
        self.mshr = MSHRFile(config.mshr_entries, config.mshr_merge)
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled
        # Sampled (data-only) miss statistics.
        self.sampled_accesses = 0
        self.sampled_misses = 0
        self.victim_hits = 0
        self.victim_insertions = 0

    # -- Data path ----------------------------------------------------------------

    def access_data(
        self, line_key: int, sector: int, is_write: bool, now: float
    ) -> L2AccessResult:
        set_idx = self.cache.set_index(line_key)
        sampled = set_idx % SAMPLE_STRIDE == 0
        if sampled:
            self.sampled_accesses += 1

        sector_key = (line_key, sector)
        result = self.cache.access(line_key, sector, is_write=is_write)
        if result.hit:
            # The sector may still be in flight (the cache marks it
            # resident when the fill is *issued*); a hit then completes
            # when the outstanding fill returns.
            merged = self.mshr.lookup(sector_key, now)
            return L2AccessResult(
                hit=True,
                merged_done=merged,
                issue_at=now,
                writebacks=self._writebacks(result.eviction),
                needs_fetch=False,
            )

        if sampled:
            self.sampled_misses += 1
        merged = self.mshr.lookup(sector_key, now)
        if merged is not None:
            return L2AccessResult(
                hit=False,
                merged_done=merged,
                issue_at=now,
                writebacks=self._writebacks(result.eviction),
                needs_fetch=False,
            )
        return L2AccessResult(
            hit=False,
            merged_done=None,
            issue_at=now,
            writebacks=self._writebacks(result.eviction),
            needs_fetch=True,
        )

    def access_data_range(
        self, line_key: int, first: int, last: int, now: float
    ) -> "Tuple[float, Optional[List[int]], Optional[Eviction]]":
        """Bulk form of per-sector :meth:`access_data` calls for one
        read request's sectors ``[first, last)``.

        Produces the same cache statistics, sampling counters, MSHR
        merges and eviction as the equivalent ascending per-sector
        loop, without allocating an :class:`L2AccessResult` (or any
        list) per sector.  Returns ``(merged_done, fetch_sectors,
        eviction)``: the latest in-flight fill this access merged into
        (0.0 when none), the sectors that need a fresh DRAM fetch
        (None when none), and the displaced victim line (None when the
        line was resident or the set had room).
        """
        cache = self.cache
        n = last - first
        sampled = (line_key % cache.num_sets) % SAMPLE_STRIDE == 0
        if sampled:
            self.sampled_accesses += n
        hit_mask, _, eviction = cache.access_range(line_key, first, last)
        if sampled:
            all_mask = ((1 << n) - 1) << first
            missed = all_mask & ~hit_mask
            self.sampled_misses += bin(missed).count("1")

        merged_done = 0.0
        fetch_sectors: Optional[List[int]] = None
        outstanding = self.mshr._outstanding
        if outstanding:
            mshr = self.mshr
            for sector in range(first, last):
                sector_key = (line_key, sector)
                merged = (mshr.lookup(sector_key, now)
                          if sector_key in outstanding else None)
                if merged is not None:
                    if merged > merged_done:
                        merged_done = merged
                elif not hit_mask & (1 << sector):
                    if fetch_sectors is None:
                        fetch_sectors = [sector]
                    else:
                        fetch_sectors.append(sector)
        else:
            for sector in range(first, last):
                if not hit_mask & (1 << sector):
                    if fetch_sectors is None:
                        fetch_sectors = [sector]
                    else:
                        fetch_sectors.append(sector)
        return merged_done, fetch_sectors, eviction

    def register_fill(self, line_key: int, sector: int, done: float, now: float) -> float:
        """Record an issued fill in the MSHR file; returns the (possibly
        stalled) issue time."""
        return self.mshr.allocate((line_key, sector), done, now)

    def register_fills(self, line_key: int, sectors, done: float,
                       now: float) -> None:
        """Bulk :meth:`register_fill` for one miss's fill burst (all
        sectors travel on one DRAM transfer and share ``done``)."""
        self.mshr.allocate_burst(line_key, sectors, done, now)

    # -- Victim-cache path -----------------------------------------------------------

    def victim_probe(self, key: Hashable, sector: int) -> bool:
        """Does the bank hold this metadata sector as a victim line?"""
        hit = self.cache.probe(("v", key), sector)
        if hit:
            self.victim_hits += 1
        return hit

    def victim_insert(self, key: Hashable, valid_sectors: int, dirty: bool) -> List[Eviction]:
        """Insert an evicted metadata line as a victim line.

        Sampled sets are excluded so the data miss-rate signal stays
        clean; a line that would land in one is not parked — if dirty
        it becomes an immediate write-back obligation instead.  Returns
        any write-back obligations from displaced lines (which may
        themselves be dirty victim metadata or dirty data).
        """
        vkey = ("v", key)
        if self.cache.set_index(vkey) % SAMPLE_STRIDE == 0:
            if dirty:
                return [Eviction(key=vkey, dirty_sectors=valid_sectors,
                                 valid_sectors=valid_sectors)]
            return []
        eviction = self.cache.insert_line(vkey, valid_sectors, dirty=dirty)
        self.victim_insertions += 1
        if self._observe:
            self.obs.count("l2.victim_insertions")
        return self._writebacks(eviction)

    def victim_remove(self, key: Hashable) -> Optional[Eviction]:
        """Remove a victim line after it moved back into an MDC."""
        return self.cache.invalidate(("v", key))

    # -- Sampling ----------------------------------------------------------------------

    @property
    def sampled_miss_rate(self) -> float:
        if self.sampled_accesses == 0:
            return 0.0
        return self.sampled_misses / self.sampled_accesses

    def reset_sampling(self) -> None:
        self.sampled_accesses = 0
        self.sampled_misses = 0

    def flush(self) -> List[Eviction]:
        return self.cache.flush()

    @staticmethod
    def _writebacks(eviction: Optional[Eviction]) -> List[Eviction]:
        if eviction is not None and eviction.dirty_sectors:
            return [eviction]
        return []


class PartitionL2:
    """The two L2 banks of one memory partition."""

    def __init__(self, gpu: GPUConfig, partition_id: int,
                 observer=None) -> None:
        bank_cfg = CacheConfig(
            size_bytes=gpu.l2_bank_size,
            ways=gpu.l2_ways,
            mshr_entries=gpu.l2_mshr_entries,
            mshr_merge=gpu.l2_mshr_merge,
        )
        self.banks = [
            L2Bank(bank_cfg, name=f"l2-p{partition_id}-b{i}",
                   observer=observer)
            for i in range(gpu.l2_banks_per_partition)
        ]

    def bank_for(self, line_key: int) -> L2Bank:
        return self.banks[line_key % len(self.banks)]

    @property
    def sampled_miss_rate(self) -> float:
        accesses = sum(b.sampled_accesses for b in self.banks)
        misses = sum(b.sampled_misses for b in self.banks)
        return misses / accesses if accesses else 0.0

    @property
    def sampled_accesses(self) -> int:
        return sum(b.sampled_accesses for b in self.banks)

    def reset_sampling(self) -> None:
        for bank in self.banks:
            bank.reset_sampling()

    def flush(self) -> List[Eviction]:
        evictions = []
        for bank in self.banks:
            evictions.extend(bank.flush())
        return evictions
