"""Miss Status Holding Registers: merge concurrent misses to one sector.

A second miss to a sector that is already being fetched must not issue
a second DRAM request; it piggybacks on the outstanding fill and
completes when that fill returns.  A full MSHR file stalls new misses
until an entry frees.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple


class MSHRFile:
    """Tracks outstanding fills keyed by sector id."""

    def __init__(self, entries: int, merge_width: int = 16) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.merge_width = merge_width
        # sector key -> (completion cycle, merged request count)
        self._outstanding: Dict[Hashable, Tuple[float, int]] = {}
        self.merges = 0
        self.stall_events = 0

    def lookup(self, key: Hashable, now: float) -> Optional[float]:
        """If a fill for ``key`` is in flight, merge and return its
        completion time; otherwise return None."""
        entry = self._outstanding.get(key)
        if entry is None:
            return None
        done, merged = entry
        if done <= now:
            # Fill already returned; entry is stale.
            del self._outstanding[key]
            return None
        if merged >= self.merge_width:
            # Merge width exhausted; caller must treat this as a stall
            # until the fill returns (same completion time).
            self.stall_events += 1
            return done
        self._outstanding[key] = (done, merged + 1)
        self.merges += 1
        return done

    def allocate(self, key: Hashable, done: float, now: float) -> float:
        """Reserve an entry for a new fill; returns the earliest cycle
        the fill may be considered issued (later than ``now`` when the
        file is full and we must wait for an entry to retire)."""
        issue = now
        if len(self._outstanding) >= self.entries:
            self._expire(now)
        if len(self._outstanding) >= self.entries:
            earliest = min(done_t for done_t, _ in self._outstanding.values())
            self.stall_events += 1
            issue = max(issue, earliest)
            self._expire(issue)
        self._outstanding[key] = (done, 1)
        return issue

    def allocate_burst(self, line_key: Hashable, sectors, done: float,
                       now: float) -> None:
        """Bulk :meth:`allocate` for one fill burst: every sector of
        ``line_key`` fetched by the same DRAM transfer completes at
        ``done``.  State evolution is identical to sequential
        ``allocate`` calls; the per-call issue times are not returned
        (the data path ignores them — MSHR pressure is modelled
        through the stall/expiry state alone)."""
        outstanding = self._outstanding
        entries = self.entries
        for sector in sectors:
            if len(outstanding) < entries:
                outstanding[(line_key, sector)] = (done, 1)
            else:
                self.allocate((line_key, sector), done, now)

    def _expire(self, now: float) -> None:
        stale = [k for k, (done, _) in self._outstanding.items() if done <= now]
        for k in stale:
            del self._outstanding[k]

    @property
    def occupancy(self) -> int:
        return len(self._outstanding)
