"""A sectored, set-associative, write-back cache model.

Used for the L2 data banks and for the three security-metadata caches
(counter / MAC / BMT — Table VI).  Lines are tracked at sector
granularity: a miss fills only the requested sector (PSSM's sectored
organisation), and a dirty eviction writes back only the dirty sectors.

The model is timing-free: it answers *what traffic an access causes*
(fill needed?  victim write-back bytes?); the caller attaches timing.

Host-performance notes (the fast-path invariants the bench gate
protects):

* each set is a dict ordered LRU -> MRU (dict insertion order), so a
  lookup is one hash probe instead of a way scan;
* the no-eviction access outcomes are shared singletons — the hot path
  allocates nothing on a hit or an eviction-free miss;
* :meth:`access_range` and :meth:`fill_all_sectors` are bulk forms of
  sequential per-sector access loops; they update ``accesses`` /
  ``hits`` / ``sector_fills`` / masks / LRU *exactly* as the
  equivalent loop would, so simulated results stay bit-identical.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, List, Optional, Tuple

from repro.common.config import CacheConfig

try:  # Python >= 3.10: one CPython instruction.
    _popcount = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - Python 3.9 fallback
    def _popcount(value: int) -> int:
        return bin(value).count("1")


class Eviction:
    """A victim line leaving the cache.

    A ``__slots__`` class rather than a dataclass: one is allocated
    per capacity eviction, which on warmed L2 banks is nearly every
    miss."""

    __slots__ = ("key", "dirty_sectors", "valid_sectors")

    def __init__(self, key: Hashable, dirty_sectors: int,
                 valid_sectors: int) -> None:
        self.key = key
        #: Number of dirty sectors to write back.
        self.dirty_sectors = dirty_sectors
        #: Total resident sectors (victim-cache insertion).
        self.valid_sectors = valid_sectors

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Eviction):
            return NotImplemented
        return (self.key == other.key
                and self.dirty_sectors == other.dirty_sectors
                and self.valid_sectors == other.valid_sectors)

    __hash__ = None  # type: ignore[assignment]  # same as the dataclass it replaced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Eviction(key={self.key!r}, "
                f"dirty_sectors={self.dirty_sectors}, "
                f"valid_sectors={self.valid_sectors})")


class AccessResult:
    """Outcome of one cache access (``__slots__``: allocated per
    evicting access; the eviction-free outcomes are shared)."""

    __slots__ = ("hit", "needs_fetch", "eviction")

    def __init__(self, hit: bool, needs_fetch: bool,
                 eviction: Optional[Eviction] = None) -> None:
        self.hit = hit
        #: True when the access must fetch the sector from the next
        #: level.  (False for hits and write-no-fetch allocations.)
        self.needs_fetch = needs_fetch
        self.eviction = eviction


#: Shared no-allocation outcomes for the three eviction-free cases.
#: Treat as immutable — every no-eviction access returns one of these.
_HIT = AccessResult(hit=True, needs_fetch=False)
_MISS_FETCH = AccessResult(hit=False, needs_fetch=True)
_MISS_NO_FETCH = AccessResult(hit=False, needs_fetch=False)


def stable_hash(key: Hashable) -> int:
    """Deterministic replacement for ``hash()`` on composite cache keys.

    Victim-cache lines are keyed by tuples containing strings, and
    Python salts ``str`` hashes per process (PYTHONHASHSEED): built-in
    ``hash()`` would make set indexing — and therefore every
    ``shm_vl2`` result — vary from one process to the next.  CRC32 of
    the canonical repr is stable everywhere.
    """
    return zlib.crc32(repr(key).encode())


class _Line:
    __slots__ = ("key", "valid_mask", "dirty_mask")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.valid_mask = 0
        self.dirty_mask = 0


class SectoredCache:
    """Set-associative sectored cache with per-set LRU replacement.

    Keys are arbitrary hashable block identifiers; the set index is
    derived from ``hash(key)``.  Distinct metadata kinds can therefore
    share one cache by namespacing their keys, or use separate
    instances (the paper's MDC uses separate 2 KB caches).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.sectors_per_block = config.sectors_per_block
        self._full_mask = (1 << self.sectors_per_block) - 1
        # Each set is a dict key -> _Line ordered LRU -> MRU.
        self._sets: List[Dict[Hashable, _Line]] = [
            {} for _ in range(self.num_sets)
        ]
        # Statistics.
        self.accesses = 0
        self.hits = 0
        self.sector_fills = 0
        self.writebacks = 0

    # -- Indexing --------------------------------------------------------------

    def set_index(self, key: Hashable) -> int:
        if isinstance(key, int):
            return key % self.num_sets
        return stable_hash(key) % self.num_sets

    # -- Main access path --------------------------------------------------------

    def access(
        self,
        key: Hashable,
        sector: int,
        is_write: bool = False,
        fetch_on_miss: bool = True,
        set_filter=None,
    ) -> AccessResult:
        """Access one sector of one line.

        ``fetch_on_miss=False`` models produce-in-place writes (e.g. a
        freshly computed MAC): on a miss the sector is allocated
        valid+dirty without reading the old value from memory.

        ``set_filter`` (predicate on set index) lets the victim-cache
        controller exclude the sampled data-only sets from metadata
        insertion.
        """
        if not 0 <= sector < self.sectors_per_block:
            raise ValueError(f"sector {sector} out of range for {self.name}")
        self.accesses += 1
        sector_bit = 1 << sector
        if type(key) is int:
            set_idx = key % self.num_sets
        else:
            set_idx = self.set_index(key)
        lines = self._sets[set_idx]

        line = lines.get(key)
        if line is not None and line.valid_mask & sector_bit:
            self.hits += 1
            if is_write:
                line.dirty_mask |= sector_bit
            if next(reversed(lines)) is not key:
                del lines[key]
                lines[key] = line
            return _HIT

        eviction = None
        if line is None:
            if set_filter is not None and not set_filter(set_idx):
                # Insertion suppressed (e.g. data-only sampled set):
                # treat as an uncached pass-through access.
                return _MISS_FETCH if fetch_on_miss else _MISS_NO_FETCH
            line, eviction = self._allocate(lines, key)
        if fetch_on_miss:
            self.sector_fills += 1
        line.valid_mask |= sector_bit
        if is_write:
            line.dirty_mask |= sector_bit
        if next(reversed(lines)) is not key:
            del lines[key]
            lines[key] = line
        if eviction is None:
            return _MISS_FETCH if fetch_on_miss else _MISS_NO_FETCH
        return AccessResult(hit=False, needs_fetch=fetch_on_miss,
                            eviction=eviction)

    def access_range(
        self,
        key: Hashable,
        first: int,
        last: int,
        is_write: bool = False,
        fetch_on_miss: bool = True,
    ) -> Tuple[int, int, Optional[Eviction]]:
        """Access sectors ``[first, last)`` of one line in bulk.

        Equivalent — in statistics, masks, LRU order and eviction
        choice — to calling :meth:`access` once per sector in
        ascending order, provided nothing else touches the cache
        between those calls (the pipeline's per-request sector loops).

        Returns ``(hit_mask, fetch_mask, eviction)``: which of the
        requested sectors were resident, which must be fetched from
        the next level, and the (at most one) victim displaced by
        allocating the line.
        """
        n = last - first
        if n <= 0:
            return 0, 0, None
        if not (0 <= first and last <= self.sectors_per_block):
            raise ValueError(
                f"sectors [{first}, {last}) out of range for {self.name}"
            )
        range_mask = ((1 << n) - 1) << first
        self.accesses += n
        if type(key) is int:
            set_idx = key % self.num_sets
        else:
            set_idx = self.set_index(key)
        lines = self._sets[set_idx]

        line = lines.get(key)
        eviction = None
        if line is None:
            hit_mask = 0
            line, eviction = self._allocate(lines, key)
        else:
            hit_mask = line.valid_mask & range_mask
            self.hits += _popcount(hit_mask)
        fetch_mask = 0
        if fetch_on_miss:
            fetch_mask = range_mask & ~hit_mask
            self.sector_fills += _popcount(fetch_mask)
        line.valid_mask |= range_mask
        if is_write:
            line.dirty_mask |= range_mask
        if next(reversed(lines)) is not key:
            del lines[key]
            lines[key] = line
        return hit_mask, fetch_mask, eviction

    def write_range_resident(self, key: Hashable, first: int,
                             last: int) -> bool:
        """Bulk store to a line *if it is resident*: one set probe
        decides residency and performs the write.

        Equivalent to ``has_line(key)`` followed by
        ``access_range(key, first, last, is_write=True,
        fetch_on_miss=False)`` when the line is allocated — same
        statistics, masks and LRU motion; returns False (cache
        untouched) when it is not, in which case the caller must run
        the allocating per-sector store path.  Sectors must lie in
        ``[0, sectors_per_block]`` (the pipeline's translate step
        already clamps them).
        """
        n = last - first
        if n <= 0:
            return True
        lines = self._sets[key % self.num_sets if type(key) is int
                           else self.set_index(key)]
        line = lines.get(key)
        if line is None:
            return False
        range_mask = ((1 << n) - 1) << first
        self.accesses += n
        self.hits += _popcount(line.valid_mask & range_mask)
        line.valid_mask |= range_mask
        line.dirty_mask |= range_mask
        if next(reversed(lines)) is not key:
            del lines[key]
            lines[key] = line
        return True

    def fill_all_sectors(self, key: Hashable) -> None:
        """Mark every sector of a *resident* line valid, in bulk.

        Equivalent to accessing each sector once with
        ``fetch_on_miss=True`` (the non-sectored whole-line fill of
        :class:`~repro.metadata.caches.MetadataCaches`): already-valid
        sectors count as hits, the rest as sector fills.  The line must
        be resident (the demand miss just allocated it), so no
        eviction can occur.
        """
        n = self.sectors_per_block
        lines = self._sets[key % self.num_sets if type(key) is int
                           else self.set_index(key)]
        line = lines[key]
        present = _popcount(line.valid_mask & self._full_mask)
        self.accesses += n
        self.hits += present
        self.sector_fills += n - present
        line.valid_mask |= self._full_mask
        if next(reversed(lines)) is not key:
            del lines[key]
            lines[key] = line

    def clean(self, key: Hashable, sector: int) -> bool:
        """Clear a sector's dirty bit without writing it back (the
        dual-granularity design re-marks a streaming chunk's block MACs
        'not dirty' once the chunk MAC covers them).  Returns True when
        a dirty resident sector was cleaned."""
        line = self._sets[self.set_index(key)].get(key)
        if line is None:
            return False
        bit = 1 << sector
        if line.dirty_mask & bit:
            line.dirty_mask &= ~bit
            return True
        return False

    def probe(self, key: Hashable, sector: int) -> bool:
        """Non-allocating, non-LRU-updating lookup (victim-cache probe)."""
        line = self._sets[self.set_index(key)].get(key)
        return line is not None and bool(line.valid_mask & (1 << sector))

    def has_line(self, key: Hashable) -> bool:
        """Is a line allocated for ``key``?  Non-allocating and
        non-LRU-updating; used to pick the eviction-free bulk store
        path (a resident line cannot displace a victim)."""
        if type(key) is int:
            return key in self._sets[key % self.num_sets]
        return key in self._sets[self.set_index(key)]

    def invalidate(self, key: Hashable) -> Optional[Eviction]:
        """Remove a line, returning its write-back obligation if dirty."""
        lines = self._sets[self.set_index(key)]
        line = lines.pop(key, None)
        if line is None:
            return None
        dirty = _popcount(line.dirty_mask)
        valid = _popcount(line.valid_mask)
        if dirty:
            self.writebacks += dirty
        return Eviction(key=line.key, dirty_sectors=dirty, valid_sectors=valid)

    def insert_line(
        self,
        key: Hashable,
        valid_sectors: int,
        dirty: bool = False,
        set_filter=None,
    ) -> Optional[Eviction]:
        """Insert a whole line (victim-cache fill path).

        ``valid_sectors`` counts resident sectors; they are populated
        from sector 0 upward, which is sufficient for the byte-
        accounting this model performs.
        """
        valid_sectors = min(valid_sectors, self.sectors_per_block)
        set_idx = self.set_index(key)
        if set_filter is not None and not set_filter(set_idx):
            return None
        lines = self._sets[set_idx]
        line = lines.get(key)
        eviction = None
        if line is None:
            line, eviction = self._allocate(lines, key)
        mask = (1 << valid_sectors) - 1
        line.valid_mask |= mask
        if dirty:
            line.dirty_mask |= mask
        if next(reversed(lines)) is not key:
            del lines[key]
            lines[key] = line
        return eviction

    def flush(self) -> List[Eviction]:
        """Evict everything, returning the dirty write-back obligations."""
        evictions = []
        for lines in self._sets:
            for line in lines.values():
                dirty = _popcount(line.dirty_mask)
                if dirty:
                    self.writebacks += dirty
                    evictions.append(
                        Eviction(
                            key=line.key,
                            dirty_sectors=dirty,
                            valid_sectors=_popcount(line.valid_mask),
                        )
                    )
            lines.clear()
        return evictions

    # -- Introspection ----------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.hits / self.accesses

    def resident_lines(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def reset_stats(self) -> None:
        self.accesses = self.hits = self.sector_fills = self.writebacks = 0

    # -- Internals ----------------------------------------------------------------

    def _allocate(
        self, lines: Dict[Hashable, _Line], key: Hashable
    ) -> Tuple[_Line, Optional[Eviction]]:
        eviction = None
        if len(lines) >= self.ways:
            victim_key = next(iter(lines))  # LRU = oldest insertion
            victim = lines.pop(victim_key)
            dirty = _popcount(victim.dirty_mask)
            valid = _popcount(victim.valid_mask)
            if dirty:
                self.writebacks += dirty
            eviction = Eviction(key=victim.key, dirty_sectors=dirty,
                                valid_sectors=valid)
        line = _Line(key)
        lines[key] = line
        return line, eviction
