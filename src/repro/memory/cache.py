"""A sectored, set-associative, write-back cache model.

Used for the L2 data banks and for the three security-metadata caches
(counter / MAC / BMT — Table VI).  Lines are tracked at sector
granularity: a miss fills only the requested sector (PSSM's sectored
organisation), and a dirty eviction writes back only the dirty sectors.

The model is timing-free: it answers *what traffic an access causes*
(fill needed?  victim write-back bytes?); the caller attaches timing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from repro.common.config import CacheConfig


@dataclass
class Eviction:
    """A victim line leaving the cache."""

    key: Hashable
    dirty_sectors: int  # number of dirty sectors to write back
    valid_sectors: int  # total resident sectors (victim-cache insertion)


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: True when the access must fetch the sector from the next level.
    #: (False for hits and for write-no-fetch allocations.)
    needs_fetch: bool
    eviction: Optional[Eviction] = None


def stable_hash(key: Hashable) -> int:
    """Deterministic replacement for ``hash()`` on composite cache keys.

    Victim-cache lines are keyed by tuples containing strings, and
    Python salts ``str`` hashes per process (PYTHONHASHSEED): built-in
    ``hash()`` would make set indexing — and therefore every
    ``shm_vl2`` result — vary from one process to the next.  CRC32 of
    the canonical repr is stable everywhere.
    """
    return zlib.crc32(repr(key).encode())


class _Line:
    __slots__ = ("key", "valid_mask", "dirty_mask")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.valid_mask = 0
        self.dirty_mask = 0


class SectoredCache:
    """Set-associative sectored cache with per-set LRU replacement.

    Keys are arbitrary hashable block identifiers; the set index is
    derived from ``hash(key)``.  Distinct metadata kinds can therefore
    share one cache by namespacing their keys, or use separate
    instances (the paper's MDC uses separate 2 KB caches).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.sectors_per_block = config.sectors_per_block
        self._full_mask = (1 << self.sectors_per_block) - 1
        # Each set is a list of _Line ordered LRU -> MRU.
        self._sets: List[List[_Line]] = [[] for _ in range(self.num_sets)]
        # Statistics.
        self.accesses = 0
        self.hits = 0
        self.sector_fills = 0
        self.writebacks = 0

    # -- Indexing --------------------------------------------------------------

    def set_index(self, key: Hashable) -> int:
        if isinstance(key, int):
            return key % self.num_sets
        return stable_hash(key) % self.num_sets

    # -- Main access path --------------------------------------------------------

    def access(
        self,
        key: Hashable,
        sector: int,
        is_write: bool = False,
        fetch_on_miss: bool = True,
        set_filter=None,
    ) -> AccessResult:
        """Access one sector of one line.

        ``fetch_on_miss=False`` models produce-in-place writes (e.g. a
        freshly computed MAC): on a miss the sector is allocated
        valid+dirty without reading the old value from memory.

        ``set_filter`` (predicate on set index) lets the victim-cache
        controller exclude the sampled data-only sets from metadata
        insertion.
        """
        if not 0 <= sector < self.sectors_per_block:
            raise ValueError(f"sector {sector} out of range for {self.name}")
        self.accesses += 1
        sector_bit = 1 << sector
        set_idx = self.set_index(key)
        lines = self._sets[set_idx]

        line = self._find(lines, key)
        if line is not None and line.valid_mask & sector_bit:
            self.hits += 1
            if is_write:
                line.dirty_mask |= sector_bit
            self._touch(lines, line)
            return AccessResult(hit=True, needs_fetch=False)

        needs_fetch = fetch_on_miss
        eviction = None
        if line is None:
            if set_filter is not None and not set_filter(set_idx):
                # Insertion suppressed (e.g. data-only sampled set):
                # treat as an uncached pass-through access.
                return AccessResult(hit=False, needs_fetch=needs_fetch)
            line, eviction = self._allocate(lines, key)
        if needs_fetch:
            self.sector_fills += 1
        line.valid_mask |= sector_bit
        if is_write:
            line.dirty_mask |= sector_bit
        self._touch(lines, line)
        return AccessResult(hit=False, needs_fetch=needs_fetch, eviction=eviction)

    def clean(self, key: Hashable, sector: int) -> bool:
        """Clear a sector's dirty bit without writing it back (the
        dual-granularity design re-marks a streaming chunk's block MACs
        'not dirty' once the chunk MAC covers them).  Returns True when
        a dirty resident sector was cleaned."""
        line = self._find(self._sets[self.set_index(key)], key)
        if line is None:
            return False
        bit = 1 << sector
        if line.dirty_mask & bit:
            line.dirty_mask &= ~bit
            return True
        return False

    def probe(self, key: Hashable, sector: int) -> bool:
        """Non-allocating, non-LRU-updating lookup (victim-cache probe)."""
        line = self._find(self._sets[self.set_index(key)], key)
        return line is not None and bool(line.valid_mask & (1 << sector))

    def invalidate(self, key: Hashable) -> Optional[Eviction]:
        """Remove a line, returning its write-back obligation if dirty."""
        lines = self._sets[self.set_index(key)]
        line = self._find(lines, key)
        if line is None:
            return None
        lines.remove(line)
        dirty = bin(line.dirty_mask).count("1")
        valid = bin(line.valid_mask).count("1")
        if dirty:
            self.writebacks += dirty
        return Eviction(key=line.key, dirty_sectors=dirty, valid_sectors=valid)

    def insert_line(
        self,
        key: Hashable,
        valid_sectors: int,
        dirty: bool = False,
        set_filter=None,
    ) -> Optional[Eviction]:
        """Insert a whole line (victim-cache fill path).

        ``valid_sectors`` counts resident sectors; they are populated
        from sector 0 upward, which is sufficient for the byte-
        accounting this model performs.
        """
        valid_sectors = min(valid_sectors, self.sectors_per_block)
        set_idx = self.set_index(key)
        if set_filter is not None and not set_filter(set_idx):
            return None
        lines = self._sets[set_idx]
        line = self._find(lines, key)
        eviction = None
        if line is None:
            line, eviction = self._allocate(lines, key)
        mask = (1 << valid_sectors) - 1
        line.valid_mask |= mask
        if dirty:
            line.dirty_mask |= mask
        self._touch(lines, line)
        return eviction

    def flush(self) -> List[Eviction]:
        """Evict everything, returning the dirty write-back obligations."""
        evictions = []
        for lines in self._sets:
            for line in lines:
                dirty = bin(line.dirty_mask).count("1")
                if dirty:
                    self.writebacks += dirty
                    evictions.append(
                        Eviction(
                            key=line.key,
                            dirty_sectors=dirty,
                            valid_sectors=bin(line.valid_mask).count("1"),
                        )
                    )
            lines.clear()
        return evictions

    # -- Introspection ----------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.hits / self.accesses

    def resident_lines(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def reset_stats(self) -> None:
        self.accesses = self.hits = self.sector_fills = self.writebacks = 0

    # -- Internals ----------------------------------------------------------------

    @staticmethod
    def _find(lines: List[_Line], key: Hashable) -> Optional[_Line]:
        for line in lines:
            if line.key == key:
                return line
        return None

    @staticmethod
    def _touch(lines: List[_Line], line: _Line) -> None:
        if lines and lines[-1] is not line:
            lines.remove(line)
            lines.append(line)

    def _allocate(
        self, lines: List[_Line], key: Hashable
    ) -> Tuple[_Line, Optional[Eviction]]:
        eviction = None
        if len(lines) >= self.ways:
            victim = lines.pop(0)  # LRU
            dirty = bin(victim.dirty_mask).count("1")
            valid = bin(victim.valid_mask).count("1")
            if dirty:
                self.writebacks += dirty
            eviction = Eviction(key=victim.key, dirty_sectors=dirty, valid_sectors=valid)
        line = _Line(key)
        lines.append(line)
        return line, eviction
