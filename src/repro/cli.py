"""Command-line interface: run schemes and regenerate figures.

Examples::

    python -m repro run --workload fdtd2d --scheme shm pssm naive
    python -m repro run --workload atax --scheme shm --trace t.json \
        --metrics-out m.jsonl
    python -m repro inspect m.jsonl
    python -m repro figure 12 --scale 0.25
    python -m repro figure 14 --workloads atax fdtd2d bfs
    python -m repro campaign fig12 fig13 --jobs 4 --store .repro-store
    python -m repro campaign all --manifest campaign.json
    python -m repro inspect campaign.json
    python -m repro campaign --smoke --store /tmp/repro-store
    python -m repro suite --list
    python -m repro hardware
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.types import Scheme
from repro.eval import experiments as exp
from repro.eval.reporting import format_overheads, format_table
from repro.sim.runner import Runner
from repro.workloads.suite import BENCHMARK_NAMES

#: Figure number -> (driver, render-as-overheads?, title).
FIGURES = {
    "5": (exp.fig5_access_ratios, False, "Fig. 5: streaming / read-only access ratios"),
    "10": (exp.fig10_readonly_prediction, False, "Fig. 10: read-only prediction breakdown"),
    "11": (exp.fig11_streaming_prediction, False, "Fig. 11: streaming prediction breakdown"),
    "12": (exp.fig12_overall_ipc, True, "Fig. 12: performance overheads"),
    "13": (exp.fig13_optimization_breakdown, True, "Fig. 13: optimisation breakdown"),
    "14": (exp.fig14_bandwidth_overhead, False, "Fig. 14: metadata bandwidth overhead"),
    "15": (exp.fig15_energy, False, "Fig. 15: normalised energy per instruction"),
    "16": (exp.fig16_victim_cache, True, "Fig. 16: L2 as a metadata victim cache"),
}


def _parse_scheme(name: str):
    """A Table VIII :class:`Scheme` member, or the validated name of a
    custom composition from the scheme registry."""
    from repro.core.policies.registry import available_schemes, resolve_scheme

    try:
        return resolve_scheme(name.lower())
    except ValueError:
        valid = ", ".join(available_schemes())
        raise SystemExit(f"unknown scheme {name!r}; choose from: {valid}")


def _scheme_label(scheme) -> str:
    """Display name for a parsed scheme (enum member or registry name)."""
    return scheme.value if isinstance(scheme, Scheme) else scheme


def _build_observer(args: argparse.Namespace):
    """An Observer when any observability flag is set, else None."""
    if not (args.trace or args.metrics_out):
        return None
    if args.window_cycles is not None and args.window_cycles <= 0:
        raise SystemExit("--window-cycles must be positive")
    from repro.obs import ChromeTracer, Observer

    tracer = ChromeTracer() if args.trace else None
    return Observer(tracer=tracer,
                    window_cycles=args.window_cycles or 1.0)


def cmd_run(args: argparse.Namespace) -> int:
    observer = _build_observer(args)
    runner = Runner(scale=args.scale, observer=observer)
    baseline = runner.baseline(args.workload)
    if observer is not None and not args.window_cycles:
        # Adaptive default: ~100 windows across the baseline run.
        observer.window_cycles = max(1.0, baseline.cycles / 100)
    print(f"{args.workload}: baseline {baseline.cycles:,.0f} cycles, "
          f"DRAM utilisation {baseline.dram_utilization:.0%}")
    header = (f"{'scheme':16s} {'norm.IPC':>9s} {'overhead':>9s} "
              f"{'meta BW':>8s} {'ctr':>7s} {'mac':>7s} {'bmt':>7s} "
              f"{'mispred':>8s} {'p95 lat':>8s}")
    print(header)
    print("-" * len(header))
    for name in args.scheme:
        scheme = _parse_scheme(name)
        result = runner.run(args.workload, scheme)
        nipc = result.normalized_ipc(baseline)
        b = result.traffic_breakdown()
        print(f"{_scheme_label(scheme):16s} {nipc:9.3f} {1 - nipc:9.1%} "
              f"{result.bandwidth_overhead:8.1%} {b['ctr']:7.1%} "
              f"{b['mac']:7.1%} {b['bmt']:7.1%} {b['mispred']:8.1%} "
              f"{result.latency.p95:8.0f}")
    if observer is not None:
        if args.trace:
            observer.write_trace(args.trace)
            print(f"wrote Chrome trace to {args.trace} "
                  f"(open in Perfetto / chrome://tracing)")
        if args.metrics_out:
            rows = observer.write_metrics(args.metrics_out)
            print(f"wrote {rows} metric rows to {args.metrics_out} "
                  f"(view with: repro inspect {args.metrics_out})")
    return 0


def _host_profile(args: argparse.Namespace) -> int:
    """Run the requested schemes with the host profiler attached and
    render percent host time per pipeline stage per scheme."""
    from repro.eval.reporting import format_host_profile
    from repro.perf.hostprof import HostProfiler

    profiler = HostProfiler()
    runner = Runner(scale=args.scale, profiler=profiler)
    for name in args.scheme:
        runner.run(args.workload, _parse_scheme(name))
    snapshot = profiler.snapshot()
    print(format_host_profile(
        snapshot,
        title=f"host-time profile: {args.workload} @ scale {args.scale}",
    ))
    if args.profile_json:
        import json
        from pathlib import Path

        Path(args.profile_json).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.profile_json}")
    return 0


#: The built-in ``ctr-hammer`` demo workload for ``inspect
#: --decisions``: a conflict stride (LCM of the 12x256B partition
#: interleave and the per-bank set stride) that funnels every write
#: into one L2 set of one partition, forcing the writeback evictions
#: that overflow minor counters — suite workloads at small scale are
#: absorbed by the 3 MB L2 and produce no pssm-family decisions at
#: all.  Built at scale 1.0 regardless of --scale (the buffer is
#: fixed-size by design).
CTR_HAMMER_SPEC = {
    "suite_format": 1,
    "name": "ctr-hammer",
    "bandwidth_utilization": 0.6,
    "buffers": [{"name": "buf", "size": "1.5MB", "fixed_size": True}],
    "phases": [
        {"name": "hammer", "steps": [
            {"buffer": "buf", "pattern": "stride",
             "stride": 24576, "count": 40000, "write": True},
        ]},
    ],
}


def _inspect_decisions(args: argparse.Namespace) -> int:
    """Live-run the requested schemes with a decision ledger attached
    (the event core keeps its fast path) and render per-region decision
    timelines plus the per-scheme accuracy/misprediction-cost tables."""
    from repro.eval.reporting import (
        format_decision_summary,
        format_decision_timeline,
    )
    from repro.obs.decisions import DecisionLedger

    ledger = DecisionLedger()
    runner = Runner(scale=args.scale, ledger=ledger)
    if args.workload == "ctr-hammer":
        from repro.workloads.compose import build_workload as build_composed

        runner.add_workload(build_composed(CTR_HAMMER_SPEC, scale=1.0))
    summaries = {}
    for name in args.scheme:
        scheme = _parse_scheme(name)
        runner.run(args.workload, scheme)
        label = f"{args.workload}/{_scheme_label(scheme)}"
        summaries[label] = ledger.summary(run=label)

    rows = ledger.to_rows()
    filtered = rows
    if args.region is not None:
        filtered = [r for r in filtered if r["region"] == args.region]
    if args.kernel is not None:
        filtered = [r for r in filtered if r["kernel"] == args.kernel]
    if args.type:
        filtered = [r for r in filtered if r["type"] == args.type]

    print(format_decision_summary(
        summaries,
        title=f"decision provenance: {args.workload} @ "
              f"scale {args.scale}"))
    print()
    shown = format_decision_timeline(filtered, limit=args.limit)
    print(shown)
    if len(filtered) != len(rows):
        print(f"\n({len(filtered)} of {len(rows)} decisions match "
              f"the filter)")
    if args.decisions_out:
        out = ledger.write_jsonl(args.decisions_out)
        print(f"\nwrote {len(rows)} decisions to {out} "
              f"(check with: python -m repro.obs.validate "
              f"--decisions {out})")
    if args.decisions_trace:
        from repro.obs.tracing import ChromeTracer

        tracer = ChromeTracer()
        ledger.export_trace(tracer)
        tracer.write(args.decisions_trace)
        print(f"wrote decision spans to {args.decisions_trace} "
              f"(open in Perfetto / chrome://tracing)")
    return 0


def _inspect_events(args: argparse.Namespace) -> int:
    """Pretty-print / filter a campaign event log (``--events``)."""
    from repro.obs.events import read_events

    try:
        rows = read_events(args.path, strict=False)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    if args.worker:
        rows = [r for r in rows if str(r.get("worker", "")) == args.worker]
    if args.cell:
        rows = [r for r in rows if args.cell in str(r.get("cell", ""))]
    if args.type:
        rows = [r for r in rows if r.get("type") == args.type]
    if not rows:
        print("no events match the filter")
        return 0
    t0 = min(float(r.get("ts") or 0.0) for r in rows)
    envelope = ("seq", "ts", "type", "campaign", "cell", "worker")
    print(f"{'seq':>5s} {'t+s':>8s} {'type':20s} {'worker':>8s} "
          f"{'cell':26s} detail")
    for row in rows:
        cell = str(row.get("cell", "-"))
        detail = " ".join(
            f"{key}={row[key]}" for key in sorted(row)
            if key not in envelope
        )
        print(f"{row.get('seq', '-'):>5} "
              f"{float(row.get('ts') or 0.0) - t0:8.2f} "
              f"{row.get('type', '?'):20s} "
              f"{str(row.get('worker', '-')):>8s} "
              f"{cell[:26]:26s} {detail}")
    print(f"\n{len(rows)} event(s)")
    return 0


def _print_store_history(store_path: str,
                         campaign: Optional[str] = None) -> None:
    """The store-backed campaign history (``inspect --store``)."""
    from repro.obs.store import TelemetryStore

    with TelemetryStore(store_path) as store:
        history = store.campaign_history(limit=15)
        if not history:
            print(f"\n{store_path}: no campaigns recorded yet")
            return
        print(f"\nstore history ({store_path}):")
        print(f"{'campaign':>14s} {'code':>14s} {'cells':>6s} "
              f"{'failed':>7s} {'elapsed':>8s}  experiments")
        for run in history:
            mark = " *" if campaign and run["campaign"] == campaign else "  "
            totals = run["totals"]
            print(f"{run['campaign']:>14s} {run['code_version']:>14s} "
                  f"{totals.get('cells', '-'):>6} "
                  f"{totals.get('failed', '-'):>7} "
                  f"{run['elapsed_s']:7.1f}s{mark} "
                  f"{', '.join(run['experiments'])}")
        if campaign:
            print("(* = the inspected manifest's campaign)")


def cmd_inspect(args: argparse.Namespace) -> int:
    """Render a campaign manifest, a time-sliced table from a
    --metrics-out JSONL file, an event log (--events),
    (--host-profile) a live host-time profile of the simulator, or
    (--decisions) a live security decision-provenance view."""
    import json

    from repro.eval.reporting import (
        format_campaign_manifest,
        format_phase_breakdown,
        format_timeslices,
    )
    from repro.obs.validate import ValidationError, load_jsonl

    if args.host_profile:
        return _host_profile(args)
    if args.decisions:
        return _inspect_decisions(args)
    if not args.path:
        raise SystemExit(
            "inspect needs a PATH (or --host-profile / --decisions)")
    if args.events:
        return _inspect_events(args)

    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    except ValueError:
        document = None  # not a single JSON document; try JSONL below
    if isinstance(document, dict) and "campaign_format" in document:
        print(format_campaign_manifest(document, verbose=args.cells))
        if args.store:
            _print_store_history(args.store, document.get("campaign"))
        return 0

    try:
        rows = load_jsonl(args.path)
    except (OSError, ValidationError) as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    windows = [r for r in rows if r.get("type") == "window"]
    runs = sorted({r["run"] for r in windows})
    if not runs:
        raise SystemExit(f"{args.path}: no window rows "
                         f"(was the file produced by --metrics-out?)")
    selected = args.run or runs[0]
    if selected not in runs:
        raise SystemExit(f"run {selected!r} not in file; "
                         f"available: {', '.join(runs)}")
    if len(runs) > 1 and not args.run:
        print(f"multiple runs in file ({', '.join(runs)}); "
              f"showing {selected!r} (pick one with --run)")
    selected_rows = [r for r in windows if r["run"] == selected]
    if args.phases:
        print(format_phase_breakdown(selected_rows,
                                     title=f"{selected}: per-kernel traffic"))
    else:
        print(format_timeslices(selected_rows, limit=args.limit,
                                title=f"{selected}: cycle windows"))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the pinned micro+macro benchmark matrix, emit a
    schema-valid ``BENCH_*.json``, and optionally gate against a
    baseline (exit 3 on a median regression beyond the threshold).

    Baselines come from a committed document (``--compare``), the
    telemetry store's rolling median (``--against-store``), or both;
    ``--record-store`` lands the run (or an existing ``--against``
    document) in the store so the trajectory stays queryable, and
    ``--report`` writes the machine-readable per-cell comparison for
    CI artifacts.
    """
    import json
    from pathlib import Path

    from repro.eval.reporting import format_bench_compare, format_bench_table
    from repro.perf import bench as bench_mod
    from repro.perf import compare as compare_mod
    from repro.perf.schema import BenchSchemaError, validate_bench, validate_file

    if args.list:
        for case in bench_mod.build_cases(smoke=args.smoke,
                                          pattern=args.filter):
            print(f"{case.name:28s} {case.kind:6s} {case.unit}")
        return 0

    if args.ledger_overhead:
        doc = bench_mod.measure_ledger_overhead()
        Path(args.ledger_overhead).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"ledger overhead ({doc['config']['workload']}/"
              f"{doc['config']['scheme']}, {doc['decisions']} decisions): "
              f"null {doc['null_ms']['median']:.1f} ms -> ledger "
              f"{doc['ledger_ms']['median']:.1f} ms "
              f"({doc['median_delta']:+.1%} median; reported, not gated)")
        print(f"wrote {args.ledger_overhead}")
        return 0

    def record_store(doc: dict) -> None:
        if not args.record_store:
            return
        from repro.obs.store import TelemetryStore

        with TelemetryStore(args.record_store) as store:
            store.record_bench(doc)
        print(f"recorded bench run in {args.record_store}")
        if args.events:
            from repro.obs.events import EventLog

            with EventLog(args.events) as log:
                log.emit("bench_recorded",
                         git_rev=doc.get("environment", {}).get("git_sha", ""),
                         benchmarks={
                             name: entry["stats"]["median"]
                             for name, entry in sorted(
                                 doc["benchmarks"].items())
                         })

    def gate(doc: dict) -> int:
        """Run every requested comparison; write the report artifact;
        exit 3 when any baseline flags a regression."""
        exit_code = 0
        reports = []

        def one(rows, label: str) -> None:
            nonlocal exit_code
            print()
            print(format_bench_compare(rows, args.threshold,
                                       title=f"vs {label}"))
            reports.append(compare_mod.compare_report(
                rows, args.threshold, baseline=label))
            flagged = compare_mod.regressions(rows)
            if flagged:
                exit_code = 3
            if args.events and flagged:
                from repro.obs.events import EventLog

                with EventLog(args.events) as log:
                    for row in flagged:
                        log.emit("regression_flagged", benchmark=row.name,
                                 old_median=row.old_median,
                                 new_median=row.new_median,
                                 ratio=round(row.ratio, 4))

        if args.compare:
            try:
                old = validate_file(args.compare)
            except (OSError, BenchSchemaError) as exc:
                raise SystemExit(str(exc))
            one(compare_mod.compare_docs(old, doc, args.threshold),
                f"baseline {args.compare}")
        if args.against_store:
            try:
                rows = compare_mod.against_store(
                    doc, args.against_store, args.threshold,
                    window=args.store_window)
            except ValueError as exc:
                raise SystemExit(str(exc))
            one(rows, f"store rolling median "
                      f"({args.against_store}, window {args.store_window})")
        if args.report:
            Path(args.report).write_text(json.dumps(
                {"bench_report_format": 1, "reports": reports},
                indent=2, sort_keys=True) + "\n")
            print(f"\nwrote comparison report {args.report}")
        return exit_code

    if args.against:
        # Offline mode: gate/record an existing document, no run.
        if not (args.compare or args.against_store or args.record_store):
            raise SystemExit("--against requires --compare OLD.json, "
                             "--against-store DB, or --record-store DB")
        try:
            new = validate_file(args.against)
        except (OSError, BenchSchemaError) as exc:
            raise SystemExit(str(exc))
        record_store(new)
        return gate(new)

    doc = bench_mod.run_bench(
        smoke=args.smoke, pattern=args.filter,
        repeats=args.repeats, warmup=args.warmup,
        progress=lambda name: print(f"bench {name} ...", flush=True),
        core=args.core,
    )
    validate_bench(doc)
    output = args.output or bench_mod.default_output_name(doc)
    Path(output).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print()
    print(format_bench_table(doc, title="repro bench"))
    print(f"\nwrote {output}")
    record_store(doc)
    return gate(doc)


def cmd_dash(args: argparse.Namespace) -> int:
    """Render campaign telemetry: a live text dashboard by default
    (repainting until the campaign finishes), a single frame with
    --once, or a static self-contained HTML report with --html."""
    from pathlib import Path

    from repro.obs.dash import DashboardState, follow, render_text, write_html
    from repro.obs.events import read_events

    path = Path(args.path)
    if path.is_dir():
        path = path / "events.jsonl"

    store = None
    store_path = args.store
    if store_path is None:
        default = path.parent / "telemetry.db"
        store_path = str(default) if default.exists() else None
    if store_path is not None:
        from repro.obs.store import TelemetryStore

        store = TelemetryStore(store_path)

    try:
        if args.html:
            if not path.exists():
                raise SystemExit(f"no event log at {path}")
            state = DashboardState.from_events(
                read_events(path, strict=False))
            write_html(state, args.html, store=store)
            print(f"wrote dashboard to {args.html}")
            return 0
        if args.once:
            state = DashboardState()
            if path.exists():
                state = DashboardState.from_events(
                    read_events(path, strict=False))
            print(render_text(state))
            return 0
        follow(path, interval=args.interval)
        return 0
    finally:
        if store is not None:
            store.close()


def cmd_figure(args: argparse.Namespace) -> int:
    if args.number not in FIGURES:
        raise SystemExit(f"no driver for figure {args.number!r}; "
                         f"available: {', '.join(sorted(FIGURES))}")
    driver, as_overheads, title = FIGURES[args.number]
    runner = Runner(scale=args.scale)
    result = driver(runner, args.workloads)
    if args.chart:
        from repro.eval.plotting import breakdown_bars, grouped_bars

        if args.number in ("10", "11"):
            print(breakdown_bars(result, title=title))
        else:
            print(grouped_bars(result, title=title, invert=as_overheads))
        return 0
    if as_overheads:
        print(format_overheads(result, title=title))
    else:
        print(format_table(result, percent=True, title=title))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    if args.list:
        for name in BENCHMARK_NAMES:
            print(name)
        return 0
    runner = Runner(scale=args.scale)
    print(f"{'workload':14s} {'accesses':>9s} {'kernels':>8s} "
          f"{'util target':>12s} {'util measured':>14s}")
    for name in args.workloads or BENCHMARK_NAMES:
        w = runner.workload(name)
        base = runner.baseline(name)
        print(f"{name:14s} {w.total_accesses:9,} {len(w.kernels):8d} "
              f"{w.bandwidth_utilization:12.0%} {base.dram_utilization:14.0%}")
    return 0


def _resolve_workload_spec(name_or_path: str) -> dict:
    """A suite spec from a multi-tenant template name or a spec file
    (JSON/TOML) path — the two spellings ``--describe`` accepts."""
    from pathlib import Path

    from repro.workloads.compose import SpecError, load_spec
    from repro.workloads.multitenant import TEMPLATES

    if name_or_path in TEMPLATES:
        return TEMPLATES[name_or_path]()
    if Path(name_or_path).exists():
        try:
            return load_spec(name_or_path)
        except (SpecError, OSError) as exc:
            raise SystemExit(f"cannot load {name_or_path}: {exc}")
    raise SystemExit(
        f"{name_or_path!r} is neither a template name nor a spec file; "
        f"templates: {', '.join(sorted(TEMPLATES))}")


def cmd_workloads(args: argparse.Namespace) -> int:
    """The composable-suite toolbox: list primitives and templates,
    describe a composed spec's phase plan, or emit a trace file (see
    docs/workloads.md, the workload-authoring handbook)."""
    from repro.workloads.compose import PRIMITIVES, build_workload, describe
    from repro.workloads.multitenant import TEMPLATES
    from repro.workloads.trace_io import save_workload

    if args.describe is None and args.spec is None:
        # Default view: everything an author can reference by name.
        print("patterns (spec step 'pattern' values):")
        width = max(len(name) for name in PRIMITIVES)
        for name, prim in sorted(PRIMITIVES.items()):
            keys = ", ".join(
                f"{k}={v!r}" for k, v in prim.params.items()) or "-"
            print(f"  {name:{width}s}  {prim.summary}")
            print(f"  {'':{width}s}  params: {keys}")
        print("\nmulti-tenant templates (repro workloads --describe <name>):")
        width = max(len(name) for name in TEMPLATES)
        for name in sorted(TEMPLATES):
            spec = TEMPLATES[name]()
            mt = spec.get("multi_tenant", {})
            print(f"  {name:{width}s}  {len(spec['tenants'])} tenants, "
                  f"{mt.get('arrival', 'poisson')} arrivals, "
                  f"churn {mt.get('phase_churn', 0.0):.0%}")
        print("\nsuite benchmarks (repro suite --list): "
              f"{len(BENCHMARK_NAMES)} workloads")
        return 0

    spec = _resolve_workload_spec(args.describe or args.spec)
    print(describe(spec, scale=args.scale))
    if args.emit_trace:
        workload = build_workload(spec, scale=args.scale)
        save_workload(workload, args.emit_trace)
        print(f"\nwrote trace to {args.emit_trace} "
              f"({workload.total_accesses:,} accesses; .gz = v2 stream)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run the full matrix and write a JSON snapshot (plus a summary)."""
    from repro.eval.results_io import save_results

    schemes = [_parse_scheme(s) for s in args.scheme]
    runner = Runner(scale=args.scale)
    workloads = args.workloads or BENCHMARK_NAMES
    snapshot = save_results(runner, args.output, workloads, schemes,
                            metadata={"cli": True})
    print(f"wrote {len(snapshot['results'])} results to {args.output}")
    for scheme in schemes:
        label = _scheme_label(scheme)
        rows = [r for r in snapshot["results"]
                if r["scheme"] == label and "normalized_ipc" in r]
        if rows:
            avg = sum(r["normalized_ipc"] for r in rows) / len(rows)
            print(f"  {label:16s} avg normalised IPC {avg:.3f} "
                  f"(overhead {1 - avg:.1%})")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.eval.results_io import compare_results, load_results

    rows = compare_results(load_results(args.old), load_results(args.new),
                           metric=args.metric)
    if not rows:
        print("no comparable results")
        return 1
    print(f"{'workload':14s} {'scheme':16s} {'old':>8s} {'new':>8s} {'delta':>8s}")
    for row in rows:
        flag = " *" if abs(row["delta"]) > args.threshold else ""
        print(f"{row['workload']:14s} {row['scheme']:16s} "
              f"{row['old']:8.4f} {row['new']:8.4f} {row['delta']:+8.4f}{flag}")
    return 0


def cmd_hardware(_args: argparse.Namespace) -> int:
    hw = exp.table9_hardware_overhead()
    print("Table IX: hardware overhead of the detectors")
    for key, value in hw.items():
        print(f"  {key:28s} {value}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run experiments through the campaign engine (worker pool +
    content-addressed result store), print live progress and the
    aggregated tables, and optionally write the manifest JSON."""
    import json
    import tempfile

    from repro.eval.campaign import run_campaign, run_smoke
    from repro.eval.experiments import EXPERIMENTS
    from repro.eval.reporting import format_campaign_manifest

    if args.list:
        width = max(len(name) for name in EXPERIMENTS)
        for name, spec in EXPERIMENTS.items():
            print(f"{name:{width}s}  {spec.title}  [{spec.provenance}]")
        return 0

    def progress(record, stats) -> None:
        state = ("cached" if record.cached
                 else "FAILED" if not record.ok else "ok")
        label = record.job.series or record.job.scheme
        eta = (f", eta {stats['eta_seconds']:.0f}s"
               if stats["done"] < stats["total"] else "")
        print(f"[{stats['done']:3d}/{stats['total']}] "
              f"{record.job.experiment:28s} "
              f"{record.job.workload}/{label} {state} "
              f"{record.runtime:.2f}s "
              f"(cached {stats['cached']}, failed {stats['failed']}{eta})",
              flush=True)

    if args.smoke:
        store = args.store or tempfile.mkdtemp(prefix="repro-smoke-")
        first, second = run_smoke(store, jobs=args.jobs or 2,
                                  progress=progress)
        t1, t2 = first.totals, second.totals
        print(f"smoke pass 1: {t1['executed']} executed, "
              f"{t1['cached']} cached, {t1['failed']} failed")
        print(f"smoke pass 2: {t2['executed']} executed, "
              f"{t2['cached']} cached, {t2['failed']} failed")
        if t1["failed"] or t2["failed"]:
            print("smoke FAILED: cells failed")
            return 1
        if t2["cached"] != t2["cells"] or t2["executed"] != 0:
            print("smoke FAILED: second pass was not 100% cache hits")
            return 1
        print("smoke OK: resume served every cell from the store")
        return 0

    if not args.experiments:
        raise SystemExit("name experiments to run (or 'all'); "
                         "see: repro campaign --list")
    store = args.store if args.store is not None else ".repro-store"
    events = telemetry = None
    if args.telemetry:
        from pathlib import Path

        from repro.obs.events import EventLog
        from repro.obs.store import TelemetryStore

        tel_dir = Path(args.telemetry)
        tel_dir.mkdir(parents=True, exist_ok=True)
        events = EventLog(tel_dir / "events.jsonl")
        telemetry = TelemetryStore(tel_dir / "telemetry.db")
    try:
        report = run_campaign(
            args.experiments,
            workloads=args.workloads or None,
            scale=args.scale,
            jobs=args.jobs,
            store_dir=store,
            force=args.force,
            timeout=args.timeout,
            retries=args.retries,
            serial=args.serial,
            progress=progress,
            collect_metrics=args.cell_metrics,
            collect_decisions=args.cell_decisions,
            events=events,
            telemetry=telemetry,
        )
    finally:
        if events is not None:
            events.close()
        if telemetry is not None:
            telemetry.close()
    print()
    for name in report.experiments:
        print(format_table(report.results[name],
                           title=f"{name}: {EXPERIMENTS[name].title}"))
        print()
    print(format_campaign_manifest(report.manifest))
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            json.dump(report.manifest, handle, indent=2, sort_keys=True)
        print(f"\nwrote manifest to {args.manifest} "
              f"(view with: repro inspect {args.manifest})")
    if args.telemetry:
        print(f"\ntelemetry: {args.telemetry}/events.jsonl + "
              f"{args.telemetry}/telemetry.db "
              f"(view with: repro dash {args.telemetry})")
    return 2 if report.failed_cells else 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Artifact-evaluation mode: regenerate every figure into a
    directory (text tables + a JSON snapshot of the raw runs)."""
    from pathlib import Path

    from repro.common.types import Scheme
    from repro.eval.results_io import save_results

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    runner = Runner(scale=args.scale)

    for number, (driver, as_overheads, title) in sorted(
        FIGURES.items(), key=lambda kv: int(kv[0])
    ):
        if number == "16" and args.scale < 0.9:
            print(f"figure {number}: skipped (needs --scale >= 1.0 for "
                  f"realistic L2 thrash; rerun with --scale 1.0)")
            continue
        print(f"figure {number}: running ...")
        result = driver(runner, None)
        text = (format_overheads(result, title=title) if as_overheads
                else format_table(result, percent=True, title=title))
        (outdir / f"fig{number}.txt").write_text(text + "\n")
        print(f"  -> {outdir / f'fig{number}.txt'}")

    hw = exp.table9_hardware_overhead()
    (outdir / "table9.txt").write_text(
        "\n".join(f"{k}: {v}" for k, v in hw.items()) + "\n"
    )
    snapshot_schemes = [Scheme.NAIVE, Scheme.COMMON_CTR, Scheme.PSSM,
                        Scheme.PSSM_CTR, Scheme.SHM_READONLY, Scheme.SHM,
                        Scheme.SHM_CCTR, Scheme.SHM_UPPER_BOUND]
    save_results(runner, outdir / "results.json", BENCHMARK_NAMES,
                 snapshot_schemes, metadata={"scale": args.scale})
    print(f"wrote {outdir / 'results.json'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive security support for heterogeneous GPU memory "
                    "(HPCA 2022) - reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate schemes on one workload")
    p_run.add_argument("--workload", required=True, choices=BENCHMARK_NAMES)
    p_run.add_argument("--scheme", nargs="+", default=["pssm", "shm"],
                       help="scheme names (Table VIII)")
    p_run.add_argument("--scale", type=float, default=0.25)
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON file "
                            "(Perfetto / chrome://tracing)")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write cycle-window metrics as JSONL")
    p_run.add_argument("--window-cycles", type=float, default=None,
                       help="sampling window size in cycles "
                            "(default: baseline cycles / 100)")
    p_run.set_defaults(func=cmd_run)

    p_ins = sub.add_parser(
        "inspect", help="print a time-sliced table from --metrics-out JSONL"
    )
    p_ins.add_argument("path", nargs="?", default=None,
                       help="JSONL file written by run --metrics-out "
                            "(not needed with --host-profile)")
    p_ins.add_argument("--run", default=None,
                       help="workload/scheme run to show (default: first)")
    p_ins.add_argument("--limit", type=int, default=40,
                       help="max table rows; longer series are merged")
    p_ins.add_argument("--phases", action="store_true",
                       help="per-kernel traffic breakdown instead of windows")
    p_ins.add_argument("--cells", action="store_true",
                       help="campaign manifests: list every cell, not just "
                            "averages and failures")
    p_ins.add_argument("--events", action="store_true",
                       help="PATH is a campaign event log: pretty-print "
                            "it (filter with --worker/--cell/--type)")
    p_ins.add_argument("--worker", default=None,
                       help="--events: only this worker ID")
    p_ins.add_argument("--cell", default=None,
                       help="--events: only cells whose key contains this")
    p_ins.add_argument("--type", default=None,
                       help="--events: only this event type")
    p_ins.add_argument("--store", default=None, metavar="DB",
                       help="campaign manifests: also show this telemetry "
                            "store's recorded history")
    p_ins.add_argument("--host-profile", action="store_true",
                       help="run workloads with the host profiler attached "
                            "and report %% host wall time per pipeline stage "
                            "per scheme (no PATH needed)")
    p_ins.add_argument("--profile-json", default=None, metavar="PATH",
                       help="--host-profile: also write the raw profiler "
                            "snapshot as JSON (CI artifact)")
    p_ins.add_argument("--decisions", action="store_true",
                       help="run workloads with a decision ledger attached "
                            "and show per-region decision timelines with "
                            "misprediction-cost attribution (no PATH "
                            "needed; filter with --region/--kernel/--type)")
    p_ins.add_argument("--region", type=int, default=None,
                       help="--decisions: only this region/chunk ID")
    p_ins.add_argument("--kernel", type=int, default=None,
                       help="--decisions: only this kernel index")
    p_ins.add_argument("--decisions-out", default=None, metavar="PATH",
                       help="--decisions: write the canonical JSONL export "
                            "(check with repro.obs.validate --decisions)")
    p_ins.add_argument("--decisions-trace", default=None, metavar="PATH",
                       help="--decisions: write decision spans as a Chrome "
                            "trace-event JSON file")
    p_ins.add_argument("--workload", default="atax",
                       choices=list(BENCHMARK_NAMES) + ["ctr-hammer"],
                       help="--host-profile/--decisions: workload to run "
                            "(ctr-hammer is a --decisions demo that forces "
                            "counter-overflow decisions)")
    p_ins.add_argument("--scheme", nargs="+", default=["pssm", "shm"],
                       help="--host-profile/--decisions: schemes to run")
    p_ins.add_argument("--scale", type=float, default=0.1,
                       help="--host-profile/--decisions: workload scale")
    p_ins.set_defaults(func=cmd_inspect)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the simulator's own host performance "
             "(micro + macro matrix, BENCH_*.json baselines)",
    )
    p_bench.add_argument("--smoke", action="store_true",
                         help="CI-sized run: full micro matrix, one macro "
                              "cell, fewer repetitions")
    p_bench.add_argument("--filter", default=None, metavar="SUBSTR",
                         help="only run benchmarks whose name contains "
                              "SUBSTR")
    p_bench.add_argument("--core", default=None,
                         choices=["event", "legacy"],
                         help="execution core for the macro cells "
                              "(default: REPRO_CORE or event)")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="timed samples per benchmark "
                              "(default: 5; smoke: 3)")
    p_bench.add_argument("--warmup", type=int, default=None,
                         help="untimed warmup samples per benchmark "
                              "(default: 2; smoke: 1)")
    p_bench.add_argument("--output", default=None, metavar="PATH",
                         help="output JSON path "
                              "(default: BENCH_<shortsha>.json)")
    p_bench.add_argument("--compare", default=None, metavar="OLD.json",
                         help="diff against this baseline after running; "
                              "exit 3 on a median regression beyond "
                              "--threshold")
    p_bench.add_argument("--against", default=None, metavar="NEW.json",
                         help="gate/record this already-emitted file "
                              "instead of running (with --compare, "
                              "--against-store and/or --record-store)")
    p_bench.add_argument("--against-store", default=None, metavar="DB",
                         help="also gate against the telemetry store's "
                              "rolling bench median (exit 3 on regression)")
    p_bench.add_argument("--store-window", type=int, default=5,
                         help="--against-store: rolling-median window in "
                              "recorded runs (default 5)")
    p_bench.add_argument("--record-store", default=None, metavar="DB",
                         help="record the run in this telemetry store")
    p_bench.add_argument("--report", default=None, metavar="OUT.json",
                         help="write the per-cell comparison report "
                              "(machine-readable, for CI artifacts)")
    p_bench.add_argument("--events", default=None, metavar="LOG.jsonl",
                         help="append bench_recorded/regression_flagged "
                              "events to this event log")
    p_bench.add_argument("--threshold", type=float, default=0.15,
                         help="regression gate on the median growth "
                              "(fraction, default 0.15)")
    p_bench.add_argument("--ledger-overhead", default=None,
                         metavar="OUT.json",
                         help="measure the decision ledger's host-time "
                              "overhead on one macro cell and write the "
                              "document (reported as a CI artifact, never "
                              "gated); skips the normal matrix")
    p_bench.add_argument("--list", action="store_true",
                         help="list benchmark names and exit")
    p_bench.set_defaults(func=cmd_bench)

    p_camp = sub.add_parser(
        "campaign",
        help="run experiments on a worker pool with a resumable store",
    )
    p_camp.add_argument("experiments", nargs="*",
                        help="experiment names (see --list) or 'all'")
    p_camp.add_argument("--list", action="store_true",
                        help="list registered experiments and exit")
    p_camp.add_argument("--smoke", action="store_true",
                        help="CI smoke: tiny 2x2 campaign twice, assert the "
                             "second pass is 100%% cache hits")
    p_camp.add_argument("--workloads", nargs="*", default=None,
                        choices=BENCHMARK_NAMES,
                        help="restrict to these workloads "
                             "(default: each experiment's own set)")
    p_camp.add_argument("--scale", type=float, default=0.25)
    p_camp.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: CPU count)")
    p_camp.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory "
                             "(default: .repro-store; smoke: a temp dir)")
    p_camp.add_argument("--force", action="store_true",
                        help="re-run the selected experiments' cells even "
                             "if cached")
    p_camp.add_argument("--timeout", type=float, default=900.0,
                        help="per-cell wall-clock budget in seconds")
    p_camp.add_argument("--retries", type=int, default=1,
                        help="retries per failed/killed cell")
    p_camp.add_argument("--serial", action="store_true",
                        help="run in-process on one shared runner "
                             "(identical results, no pool)")
    p_camp.add_argument("--manifest", default=None, metavar="PATH",
                        help="write the campaign manifest JSON here")
    p_camp.add_argument("--cell-metrics", action="store_true",
                        help="run executed cells under an observer and "
                             "merge each worker's simulation metrics into "
                             "the manifest's metrics block")
    p_camp.add_argument("--cell-decisions", action="store_true",
                        help="attach a decision ledger to every executed "
                             "cell; summaries land in the manifest, the "
                             "telemetry store, and cell_decisions events "
                             "(does not force the legacy core)")
    p_camp.add_argument("--telemetry", default=None, metavar="DIR",
                        help="write campaign telemetry here: an event log "
                             "(DIR/events.jsonl) plus a persistent store "
                             "(DIR/telemetry.db); view with repro dash")
    p_camp.set_defaults(func=cmd_campaign)

    p_dash = sub.add_parser(
        "dash",
        help="render campaign telemetry (live TUI, or --html report)",
    )
    p_dash.add_argument("path",
                        help="event log path, or the campaign --telemetry "
                             "directory containing events.jsonl")
    p_dash.add_argument("--html", default=None, metavar="OUT.html",
                        help="write a static self-contained HTML report "
                             "instead of the live view")
    p_dash.add_argument("--once", action="store_true",
                        help="print a single text frame and exit")
    p_dash.add_argument("--interval", type=float, default=1.0,
                        help="live view repaint interval in seconds")
    p_dash.add_argument("--store", default=None, metavar="DB",
                        help="telemetry store for the HTML report's trend "
                             "sections (default: telemetry.db next to the "
                             "event log, when present)")
    p_dash.set_defaults(func=cmd_dash)

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("number", help="figure number (5, 10-16)")
    p_fig.add_argument("--workloads", nargs="*", default=None,
                       choices=BENCHMARK_NAMES)
    p_fig.add_argument("--scale", type=float, default=0.25)
    p_fig.add_argument("--chart", action="store_true",
                       help="render as a bar chart instead of a table")
    p_fig.set_defaults(func=cmd_figure)

    p_suite = sub.add_parser("suite", help="inspect the benchmark suite")
    p_suite.add_argument("--list", action="store_true")
    p_suite.add_argument("--workloads", nargs="*", default=None,
                         choices=BENCHMARK_NAMES)
    p_suite.add_argument("--scale", type=float, default=0.25)
    p_suite.set_defaults(func=cmd_suite)

    p_wl = sub.add_parser(
        "workloads",
        help="composable suites: list patterns/templates, describe a "
             "spec, emit a trace (see docs/workloads.md)",
    )
    p_wl.add_argument("--describe", default=None, metavar="NAME|SPEC",
                      help="print the composed phase plan of a "
                           "multi-tenant template name or a JSON/TOML "
                           "spec file")
    p_wl.add_argument("--spec", default=None, metavar="PATH",
                      help="spec file to build (synonym for --describe "
                           "with a path; combine with --emit-trace)")
    p_wl.add_argument("--emit-trace", default=None, metavar="OUT",
                      help="build the spec and write a trace file "
                           "(.json = v1 document, .gz = v2 stream)")
    p_wl.add_argument("--scale", type=float, default=1.0,
                      help="build scale (buffer sizes and access counts)")
    p_wl.set_defaults(func=cmd_workloads)

    p_hw = sub.add_parser("hardware", help="print Table IX hardware costs")
    p_hw.set_defaults(func=cmd_hardware)

    p_rep = sub.add_parser("report", help="run the matrix, snapshot to JSON")
    p_rep.add_argument("--output", default="results.json")
    p_rep.add_argument("--workloads", nargs="*", default=None,
                       choices=BENCHMARK_NAMES)
    p_rep.add_argument("--scheme", nargs="+",
                       default=["naive", "pssm", "shm"])
    p_rep.add_argument("--scale", type=float, default=0.25)
    p_rep.set_defaults(func=cmd_report)

    p_repro = sub.add_parser(
        "reproduce", help="regenerate every figure into a directory"
    )
    p_repro.add_argument("--outdir", default="results")
    p_repro.add_argument("--scale", type=float, default=0.5)
    p_repro.set_defaults(func=cmd_reproduce)

    p_diff = sub.add_parser("diff", help="compare two result snapshots")
    p_diff.add_argument("old")
    p_diff.add_argument("new")
    p_diff.add_argument("--metric", default="normalized_ipc")
    p_diff.add_argument("--threshold", type=float, default=0.01,
                        help="flag deltas larger than this")
    p_diff.set_defaults(func=cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
