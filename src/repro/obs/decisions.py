"""Security decision provenance: the append-only :class:`DecisionLedger`.

The simulator's detectors and policy stacks make *decisions* — promote
a region to read-only, classify a chunk as streaming, re-encrypt a
counter line, re-check the other MAC granularity — and until now only
their aggregate :class:`~repro.common.types.PredictionStats` survived a
run.  The ledger records each decision as a typed row with a cycle
stamp, region identity, cause, and the *cost charged back to it*: the
extra DRAM bytes and transfers the decision emitted (re-encryption,
shared-counter propagation, verdict remediation, mispredict rechecks)
plus the analytic stall-cycle equivalent of that traffic.

Decisions fire at decision granularity — thousands of events per run,
not millions of accesses — so, unlike the per-access
:class:`~repro.obs.observer.Observer`, an attached ledger does **not**
force the simulator onto the legacy per-access core.  Instrumented
code snapshots ``ledger.enabled`` into a local boolean (``mee._led``)
and pays one branch per decision site; :data:`NULL_LEDGER` is the
disabled default, mirroring ``NULL_OBSERVER``.

Every row also carries the region's online **feature vector**,
recomputed at decision time from ledger-held per-region state.  The
schema is stable (see ``docs/observability.md``) because the planned
learned-policy work consumes it as training input:

``fv = [read_ratio, stride_regularity, touch_density, g0..g7]``

* ``read_ratio`` — fraction of this region's decisions triggered by
  reads (1.0 until a write-triggered decision lands);
* ``stride_regularity`` — running mean of per-verdict mask
  contiguity: 1.0 when the touched blocks form one contiguous run,
  otherwise popcount/span of the touched bits;
* ``touch_density`` — running mean of popcount(touched_mask) /
  blocks_per_chunk over this region's verdicts;
* ``g0..g7`` — normalised inter-decision gap histogram, bucket ``i``
  covering gaps in ``[4^i, 4^(i+1))`` cycles (``g7`` open-ended).

Determinism: rows are appended in issue order (cycles are globally
non-decreasing in both cores), all arithmetic is plain int/float, and
:meth:`DecisionLedger.write_jsonl` serialises with sorted keys — the
canonical export is byte-identical across cores, serial vs pool, and
under any ``PYTHONHASHSEED`` (pinned by the determinism suite).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Ledger export format version (first line of the canonical JSONL).
DECISIONS_FORMAT = 1

#: Decision taxonomy: type -> the detector/policy family it belongs to.
#: ``repro.obs.validate --decisions`` rejects unknown types.
DECISION_TYPES: Dict[str, str] = {
    "ro_mark": "readonly",          # region promoted to read-only
    "ro_clear": "readonly",         # region demoted by a host copy
    "ro_transition": "readonly",    # store hit a predicted-RO region
    "stream_verdict": "streaming",  # MAT classified a chunk
    "stream_preset": "streaming",   # oracle preloaded a verdict
    "ctr_overflow": "counter",      # minor-counter overflow re-encrypt
    "mac_recheck": "mac",           # dual-granularity stale re-check
    "learned_promote": "learned",   # model promoted a region read-only
    "learned_demote": "learned",    # store demoted a learned promotion
    "learned_verdict": "learned",   # model prediction scored at verdict
    "arm_select": "learned",        # bandit chose a protection arm
}

#: Fields present on every row (validated post hoc).
ROW_FIELDS = ("seq", "run", "cycle", "kernel", "partition", "type",
              "detector", "region", "cause", "cost_bytes",
              "cost_transfers", "stall_cycles", "fv")

#: Default cap on retained rows (a runaway workload degrades to a
#: counted drop, not unbounded memory).
MAX_ROWS = 1_000_000

#: Inter-decision gap histogram buckets (log base 4).
_GAP_BUCKETS = 8


def _noop(*_args: Any, **_kwargs: Any) -> None:
    return None


class NullDecisionLedger:
    """The disabled ledger: every record method is a shared no-op.

    Mirrors :class:`~repro.obs.observer.NullObserver` — instrumented
    code holds a ledger unconditionally and snapshots ``enabled`` into
    a local boolean, so the disabled path costs one branch per
    decision site and nothing per access.
    """

    enabled = False

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        return _noop


NULL_LEDGER = NullDecisionLedger()


class _RegionState:
    """Per-(partition, detector, region) online feature accumulator.

    Shared with :mod:`repro.core.policies.learned`: the learned
    detectors keep their own banks of these so the fv they train on is
    byte-for-byte the schema the ledger exports.
    """

    __slots__ = ("decisions", "writes", "stride_sum", "stride_n",
                 "touch_sum", "touch_n", "last_cycle", "gaps")

    def __init__(self) -> None:
        self.decisions = 0
        self.writes = 0
        self.stride_sum = 0.0
        self.stride_n = 0
        self.touch_sum = 0.0
        self.touch_n = 0
        self.last_cycle = -1.0
        self.gaps = [0] * _GAP_BUCKETS

    def observe(self, cycle: float, is_write: bool, mask: int,
                blocks_per_chunk: int) -> None:
        """Fold one decision into the accumulator (``mask < 0`` means
        the decision carries no touched-block mask)."""
        self.decisions += 1
        if is_write:
            self.writes += 1
        if mask >= 0:
            stride, popcount = _mask_features(mask)
            self.stride_sum += stride
            self.stride_n += 1
            self.touch_sum += popcount / blocks_per_chunk
            self.touch_n += 1
        if self.last_cycle >= 0.0:
            gap = int(cycle - self.last_cycle)
            bucket = 0
            while gap >= 4 and bucket < _GAP_BUCKETS - 1:
                gap >>= 2
                bucket += 1
            self.gaps[bucket] += 1
        self.last_cycle = cycle

    def features(self) -> List[float]:
        """The region's current 11-float feature vector."""
        n = self.decisions
        gap_total = n - 1
        return [
            round(1.0 - self.writes / n, 6) if n else 1.0,
            round(self.stride_sum / self.stride_n, 6)
            if self.stride_n else 0.0,
            round(self.touch_sum / self.touch_n, 6)
            if self.touch_n else 0.0,
        ] + [
            round(count / gap_total, 6) if gap_total else 0.0
            for count in self.gaps
        ]


def _mask_features(mask: int) -> Tuple[float, int]:
    """(stride_regularity, popcount) of one touched-block mask.

    Regularity is gated on popcount >= 2: a single touched block is
    not evidence of a stride, so it scores 0.0 — without the gate a
    one-block mask and a full contiguous streaming run both scored
    1.0, which the learned features cannot afford to conflate.
    """
    if mask <= 0:
        return 0.0, 0
    popcount = bin(mask).count("1")
    if popcount < 2:
        return 0.0, popcount
    tz = (mask & -mask).bit_length() - 1
    shifted = mask >> tz
    if shifted & (shifted + 1) == 0:  # one contiguous run of bits
        return 1.0, popcount
    span = shifted.bit_length()
    return popcount / span, popcount


class DecisionLedger:
    """A typed, append-only record of security-metadata decisions.

    Attach one to a :class:`~repro.sim.runner.Runner` (or pass it to
    :class:`~repro.sim.gpu.GPUSimulator`); the MEEs snapshot it at
    construction and call the ``record_*`` methods at decision sites
    on **both** execution cores.  Costs arrive pre-measured from the
    MEE's emission scope (:meth:`~repro.core.mee.MemoryEncryptionEngine`
    ``_led_begin``/``_led_end``); the ledger converts them to stall
    cycles analytically: ``transfers * request_overhead +
    bytes / bytes_per_cycle`` (charged channel occupancy, excluding
    turnarounds) — deterministic and identical across emission modes.
    """

    enabled = True

    def __init__(self, max_rows: int = MAX_ROWS) -> None:
        if max_rows < 1:
            raise ValueError("max_rows must be at least 1")
        self.max_rows = max_rows
        self.rows: List[dict] = []
        self.dropped = 0
        self._run = "?"
        self._seq = 0
        # Analytic stall parameters; GPUSimulator calls configure().
        self._request_overhead = 0.0
        self._inv_bpc = 0.0
        self._blocks_per_chunk = 1
        self._regions: Dict[Tuple[int, str, int], _RegionState] = {}

    # -- wiring --------------------------------------------------------

    def configure(self, request_overhead: float, bytes_per_cycle: float,
                  blocks_per_chunk: int) -> None:
        """Pin the analytic stall-model parameters (from
        :class:`~repro.common.config.GPUConfig` /
        :class:`~repro.common.config.DetectorConfig`)."""
        self._request_overhead = float(request_overhead)
        self._inv_bpc = (1.0 / float(bytes_per_cycle)
                         if bytes_per_cycle else 0.0)
        self._blocks_per_chunk = max(1, int(blocks_per_chunk))

    def begin_run(self, run: str) -> None:
        """Label subsequent rows with ``workload/scheme``.

        Feature vectors are per run: the region accumulators reset
        here, while rows and the sequence counter keep growing so one
        ledger can hold several back-to-back runs (``repro inspect
        --decisions`` over a scheme list) with globally contiguous
        ``seq`` and per-run cycle monotonicity."""
        self._run = run
        self._regions.clear()

    def stall_cycles(self, cost_bytes: float, cost_transfers: int) -> float:
        return (cost_transfers * self._request_overhead
                + cost_bytes * self._inv_bpc)

    # -- the append path ----------------------------------------------

    def _append(self, cycle: float, partition: int, kernel: int,
                dtype: str, region: int, cause: str, is_write: bool,
                cost_bytes: float, cost_transfers: int,
                extra: Optional[dict] = None,
                mask: int = -1) -> None:
        detector = DECISION_TYPES[dtype]
        state = self._regions.setdefault(
            (partition, detector, region), _RegionState())
        state.observe(cycle, is_write, mask, self._blocks_per_chunk)
        if len(self.rows) >= self.max_rows:
            self.dropped += 1
            return
        fv = state.features()
        row = {
            "seq": self._seq,
            "run": self._run,
            "cycle": cycle,
            "kernel": kernel,
            "partition": partition,
            "type": dtype,
            "detector": detector,
            "region": region,
            "cause": cause,
            "cost_bytes": cost_bytes,
            "cost_transfers": cost_transfers,
            "stall_cycles": round(
                self.stall_cycles(cost_bytes, cost_transfers), 6),
            "fv": fv,
        }
        if extra:
            row.update(extra)
        self._seq += 1
        self.rows.append(row)

    # -- record methods (one per decision type) ------------------------

    def ro_mark(self, cycle: float, partition: int, kernel: int,
                region: int, cause: str, evicted: int = -1) -> None:
        """A region promoted to read-only (host copy at init, the reset
        API, or the oracle); ``evicted`` names a different region whose
        bit-vector slot this promotion overwrote (aliasing)."""
        self._append(cycle, partition, kernel, "ro_mark", region, cause,
                     False, 0.0, 0, {"evicted": evicted})

    def ro_clear(self, cycle: float, partition: int, kernel: int,
                 region: int, cause: str, evicted: int = -1) -> None:
        """A region demoted (marked written) by a mid-run host copy."""
        self._append(cycle, partition, kernel, "ro_clear", region, cause,
                     True, 0.0, 0, {"evicted": evicted})

    def ro_transition(self, cycle: float, partition: int, kernel: int,
                      region: int, evicted: int, cost_bytes: float,
                      cost_transfers: int) -> None:
        """A store hit a predicted-read-only region: the detector
        transitioned and the shared counter was propagated into the
        region's counter lines (the charged cost)."""
        self._append(cycle, partition, kernel, "ro_transition", region,
                     "store", True, cost_bytes, cost_transfers,
                     {"evicted": evicted})

    def stream_verdict(self, cycle: float, partition: int, kernel: int,
                       verdict: Any, cost_bytes: float,
                       cost_transfers: int) -> None:
        """A MAT delivered a chunk classification; the charged cost is
        the verdict's remediation (MAC rebuilds, mispredict refetches).
        ``verdict`` is a :class:`~repro.core.streaming.Verdict`."""
        pattern = verdict.pattern.value
        predicted = verdict.predicted.value
        self._append(
            cycle, partition, kernel, "stream_verdict", verdict.chunk_id,
            "timeout" if verdict.timed_out else "monitor_complete",
            bool(verdict.had_write), cost_bytes, cost_transfers,
            {
                "pattern": pattern,
                "predicted": predicted,
                "flip": pattern != predicted,
                "timed_out": bool(verdict.timed_out),
                "accesses": verdict.accesses,
                "touched_mask": verdict.touched_mask,
                "evicted": verdict.evicted,
            },
            mask=verdict.touched_mask)

    def stream_preset(self, cycle: float, partition: int, kernel: int,
                      chunk: int, pattern: str) -> None:
        """The oracle preloaded a chunk verdict at a kernel boundary."""
        self._append(cycle, partition, kernel, "stream_preset", chunk,
                     "oracle", False, 0.0, 0, {"pattern": pattern})

    def ctr_overflow(self, cycle: float, partition: int, kernel: int,
                     block: int, line: int, cost_bytes: float,
                     cost_transfers: int) -> None:
        """A minor counter overflowed: the covering counter line was
        re-encrypted (read + write back every covered block)."""
        self._append(cycle, partition, kernel, "ctr_overflow", line,
                     "minor_overflow", True, cost_bytes, cost_transfers,
                     {"block": block})

    def mac_recheck(self, cycle: float, partition: int, kernel: int,
                    chunk: int, cause: str, cost_bytes: float,
                    cost_transfers: int) -> None:
        """Dual-granularity MAC read a stale granularity and fell back
        to the other one; ``cause`` is ``stale_chunk_mac`` or
        ``stale_block_macs``."""
        self._append(cycle, partition, kernel, "mac_recheck", chunk,
                     cause, False, cost_bytes, cost_transfers)

    # -- learned-policy provenance (repro.core.policies.learned) -------
    #
    # Learned rows carry zero cost: the remedial traffic a learned
    # decision triggers is already charged to its streaming/readonly
    # row, so the learned family contributes accuracy (flips), not a
    # second copy of the cost.

    def learned_promote(self, cycle: float, partition: int, kernel: int,
                        region: int, score: float) -> None:
        """The learned read-only model promoted a region the host never
        marked; ``score`` is the model's confidence at promotion."""
        self._append(cycle, partition, kernel, "learned_promote", region,
                     "model", False, 0.0, 0, {"score": score})

    def learned_demote(self, cycle: float, partition: int, kernel: int,
                       region: int) -> None:
        """A store hit a learned-promoted region: the promotion was a
        misprediction (the propagation cost rides the accompanying
        ``ro_transition`` row)."""
        self._append(cycle, partition, kernel, "learned_demote", region,
                     "store", True, 0.0, 0, {"flip": True})

    def learned_verdict(self, cycle: float, partition: int, kernel: int,
                        chunk: int, predicted: str, pattern: str,
                        score: float) -> None:
        """The learned streaming model's prediction scored against the
        MAT verdict that just landed (``score`` is the model's
        streaming probability before this verdict trained it; -1 while
        the model is still cold)."""
        self._append(cycle, partition, kernel, "learned_verdict", chunk,
                     "verdict", False, 0.0, 0,
                     {"predicted": predicted, "pattern": pattern,
                      "flip": predicted != pattern, "score": score})

    def arm_select(self, cycle: float, partition: int, kernel: int,
                   region: int, arm: str, reward: float) -> None:
        """The contextual bandit closed a region's epoch and chose its
        next protection arm; ``reward`` is the closing epoch's mean
        per-access reward (savings minus charged stall)."""
        self._append(cycle, partition, kernel, "arm_select", region,
                     "epoch", False, 0.0, 0,
                     {"arm": arm, "reward": reward})

    # -- exports -------------------------------------------------------

    def to_rows(self) -> List[dict]:
        """The rows in append (issue) order — the canonical sequence."""
        return list(self.rows)

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Canonical JSONL export: a format header line, then one row
        per line with sorted keys — byte-stable for a given run."""
        import json

        out = Path(path)
        with out.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"decisions_format": DECISIONS_FORMAT,
                 "rows": len(self.rows), "dropped": self.dropped},
                sort_keys=True, separators=(",", ":")) + "\n")
            for row in self.rows:
                handle.write(json.dumps(row, sort_keys=True,
                                        separators=(",", ":")) + "\n")
        return out

    def export_text(self) -> str:
        """The canonical export as one string (determinism tests)."""
        import json

        lines = [json.dumps(
            {"decisions_format": DECISIONS_FORMAT,
             "rows": len(self.rows), "dropped": self.dropped},
            sort_keys=True, separators=(",", ":"))]
        lines.extend(json.dumps(row, sort_keys=True,
                                separators=(",", ":"))
                     for row in self.rows)
        return "\n".join(lines) + "\n"

    def summary(self, run: Optional[str] = None) -> dict:
        """Aggregate per-detector/per-type view (JSON-safe): decision
        counts, verdict flips/timeouts, and the charged cost — the
        payload campaign cells ship and the dashboard folds.  ``run``
        restricts the aggregate to one run label when the ledger holds
        several back-to-back runs."""
        rows = (self.rows if run is None
                else [r for r in self.rows if r["run"] == run])
        by_type: Dict[str, dict] = {}
        by_detector: Dict[str, dict] = {}
        for row in rows:
            t = by_type.setdefault(row["type"], {
                "count": 0, "cost_bytes": 0.0, "stall_cycles": 0.0})
            t["count"] += 1
            t["cost_bytes"] += row["cost_bytes"]
            t["stall_cycles"] += row["stall_cycles"]
            d = by_detector.setdefault(row["detector"], {
                "decisions": 0, "flips": 0, "timeouts": 0,
                "cost_bytes": 0.0, "stall_cycles": 0.0})
            d["decisions"] += 1
            d["cost_bytes"] += row["cost_bytes"]
            d["stall_cycles"] += row["stall_cycles"]
            if row.get("flip"):
                d["flips"] += 1
            if row.get("timed_out"):
                d["timeouts"] += 1
        for block in list(by_type.values()) + list(by_detector.values()):
            block["cost_bytes"] = round(block["cost_bytes"], 6)
            block["stall_cycles"] = round(block["stall_cycles"], 6)
        return {
            "decisions_format": DECISIONS_FORMAT,
            "total": len(rows),
            "dropped": self.dropped,
            "regions": len({(r["partition"], r["detector"], r["region"])
                            for r in rows}),
            "by_type": by_type,
            "by_detector": by_detector,
        }

    def export_trace(self, tracer: Any) -> None:
        """Emit the rows into a
        :class:`~repro.obs.tracing.ChromeTracer`: decisions with a
        charged cost become complete spans (duration = charged stall),
        zero-cost decisions become instants, all on the owning
        partition's thread of the run's process track."""
        for row in self.rows:
            args = {"region": row["region"], "cause": row["cause"],
                    "detector": row["detector"]}
            if "pattern" in row:
                args["pattern"] = row["pattern"]
            if row["stall_cycles"] > 0.0:
                args["cost_bytes"] = row["cost_bytes"]
                tracer.complete(row["run"], row["partition"], row["type"],
                                row["cycle"], row["stall_cycles"],
                                cat="decision", args=args)
            else:
                tracer.instant(row["run"], row["partition"], row["type"],
                               row["cycle"], cat="decision", args=args)

    def reset(self) -> None:
        """Drop all rows and feature state (the run label survives)."""
        self.rows.clear()
        self._regions.clear()
        self.dropped = 0
        self._seq = 0
