"""The observability facade threaded through the simulator hot path.

Instrumented code holds one ``Observer`` reference and guards every
hook call with a single boolean (``self._observe`` in the hosting
object, snapshotted from ``observer.enabled`` at construction), so a
disabled observer costs one attribute check per hook site and nothing
else.  The module-level :data:`NULL_OBSERVER` is the disabled default.

An enabled :class:`Observer` fans each hook out to up to three sinks:

* a :class:`~repro.obs.metrics.MetricsRegistry` (aggregates,
  histograms for latency percentiles);
* one :class:`~repro.obs.timeseries.WindowedSeries` per run
  (cycle-window columnar samples);
* a :class:`~repro.obs.tracing.ChromeTracer` (per-partition MEE
  operation spans, frontend stalls, calibration rounds).

Observation is strictly read-only: enabling it must never change a
simulation's cycles or traffic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import WindowedSeries
from repro.obs.tracing import ChromeTracer

#: Default cycle-window size when the CLI does not pick an adaptive one.
DEFAULT_WINDOW_CYCLES = 50_000.0

#: (request kind, is_write) -> trace/metric operation name.
OP_NAMES = {
    ("ctr", False): "counter_fetch",
    ("ctr", True): "counter_writeback",
    ("mac", False): "mac_verify",
    ("mac", True): "mac_update",
    ("bmt", False): "bmt_walk",
    ("bmt", True): "bmt_update",
    ("mispred", False): "mispred_refetch",
    ("mispred", True): "mispred_rewrite",
    ("data", False): "data_refetch",
    ("data", True): "data_rewrite",
}

#: Metrics JSONL schema version (bump on breaking row changes).
METRICS_FORMAT = 1


class NullObserver:
    """The disabled observer: hook sites see ``enabled`` is False and
    skip the call, so none of the stub methods below ever run on the
    hot path — they exist so an unguarded call is still harmless."""

    enabled = False

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        return _noop


def _noop(*_args, **_kwargs) -> None:
    return None


#: Shared disabled observer (stateless, safe to share everywhere).
NULL_OBSERVER = NullObserver()


class Observer:
    """Collects metrics, cycle-window samples and trace events."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[ChromeTracer] = None,
        window_cycles: float = DEFAULT_WINDOW_CYCLES,
        timeseries: bool = True,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.window_cycles = window_cycles
        self.timeseries = timeseries
        self.series: Dict[str, WindowedSeries] = {}
        self.summaries: List[dict] = []
        self._run = ""
        self._series: Optional[WindowedSeries] = None
        self._frontend_tid = 0
        self._calibration_clock = 0.0
        self._latency_hist = self.metrics.histogram("sim.demand_read_latency")

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------

    def begin_run(self, run: str, num_partitions: int) -> None:
        """Called by the simulator before the first event of one
        (workload, scheme) run; sets up that run's tracks and series."""
        self._run = run
        self._frontend_tid = num_partitions
        if self.timeseries:
            self._series = self.series.get(run)
            if self._series is None:
                self._series = self.series[run] = WindowedSeries(
                    self.window_cycles, num_partitions, run=run
                )
        if self.tracer is not None:
            for p in range(num_partitions):
                self.tracer.name_thread(run, p, f"partition {p}")
            self.tracer.name_thread(run, num_partitions, "frontend")

    def end_run(self, result) -> None:
        """Called with the finished :class:`RunResult`; the summary row
        carries the run's exact aggregate traffic so exported window
        rows can be validated against it."""
        traffic = result.traffic
        self.summaries.append({
            "type": "summary",
            "run": self._run,
            "workload": result.workload,
            "scheme": result.scheme.value,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "dram_utilization": result.dram_utilization,
            "traffic": {
                "data": traffic.data_bytes,
                "ctr": traffic.counter_bytes,
                "mac": traffic.mac_bytes,
                "bmt": traffic.bmt_bytes,
                "mispred": traffic.misprediction_bytes,
            },
            "read_latency": {
                "avg": result.latency.average,
                "p50": result.latency.p50,
                "p95": result.latency.p95,
                "p99": result.latency.p99,
                "max": result.latency.max_cycles,
            },
        })
        self.metrics.gauge(f"run.cycles.{self._run}").set(result.cycles)

    # ------------------------------------------------------------------
    # Simulator hooks (hot path — all guarded by the caller)
    # ------------------------------------------------------------------

    def traffic(self, cycle: float, partition: int, kind: str, size: int,
                is_write: bool) -> None:
        """One DRAM transfer of ``size`` bytes of traffic class ``kind``
        (the same increment applied to the aggregate TrafficCounters)."""
        self.metrics.counter(f"traffic.{kind}_bytes").inc(size)
        if self._series is not None:
            self._series.traffic(cycle, kind, size)

    def mee_op(self, partition: int, kind: str, is_write: bool,
               start: float, end: float, critical: bool = False) -> None:
        """One MEE-caused DRAM request, from issue to completion."""
        name = OP_NAMES.get((kind, is_write), kind)
        self.metrics.histogram(f"mee.{name}_cycles").record(end - start)
        if critical:
            self.metrics.counter("mee.critical_fetches").inc()
        if self.tracer is not None:
            self.tracer.complete(
                self._run, partition, name, start, end - start, cat="mee",
                args={"critical": critical} if critical else None,
            )

    def mee_event(self, partition: int, name: str, cycle: float,
                  instant: bool = False) -> None:
        """A logical MEE event (shared-counter read, verdict, ...)."""
        self.metrics.counter(f"mee.{name}").inc()
        if instant and self.tracer is not None:
            self.tracer.instant(self._run, partition, name, cycle, cat="mee")

    def l2_access(self, cycle: float, partition: int, miss: bool) -> None:
        if self._series is not None:
            self._series.l2_access(cycle, miss)

    def mdc_access(self, cycle: float, partition: int, kind: str,
                   hit: bool) -> None:
        self.metrics.counter(f"mdc.{kind}_accesses").inc()
        if not hit:
            self.metrics.counter(f"mdc.{kind}_misses").inc()
        if self._series is not None:
            self._series.mdc_access(cycle, hit)

    def victim_probe(self, cycle: float, partition: int, hit: bool) -> None:
        self.metrics.counter("victim.probes").inc()
        if hit:
            self.metrics.counter("victim.hits").inc()
            if self.tracer is not None:
                self.tracer.instant(self._run, partition, "victim_hit",
                                    cycle, cat="mee")
        if self._series is not None:
            self._series.victim_probe(cycle, hit)

    def count(self, name: str, amount: int = 1) -> None:
        """A bare registry counter bump (no time resolution)."""
        self.metrics.counter(name).inc(amount)

    def read_latency(self, cycle: float, latency: float) -> None:
        self._latency_hist.record(latency)
        if self._series is not None:
            self._series.read_latency(cycle, latency)

    def stall(self, start: float, end: float) -> None:
        """The frontend's issue window was full for [start, end)."""
        self.metrics.histogram("frontend.stall_cycles").record(end - start)
        if self._series is not None:
            self._series.stall(start, end)
        if self.tracer is not None:
            self.tracer.complete(self._run, self._frontend_tid,
                                 "frontend_stall", start, end - start,
                                 cat="frontend")

    def dram(self, partition: int, arrival: float, start: float,
             busy_until: float, size: int, is_write: bool) -> None:
        """One DRAM channel service: queued [arrival, start), on the
        bus [start, busy_until)."""
        if self._series is not None:
            self._series.dram(partition, arrival, start, busy_until)

    def kernel(self, kernel_idx: int, cycle: float) -> None:
        self.metrics.counter("sim.kernels").inc()
        if self._series is not None:
            self._series.set_kernel(kernel_idx)
        if self.tracer is not None:
            self.tracer.instant(self._run, self._frontend_tid,
                                f"kernel {kernel_idx}", cycle, cat="frontend")

    # ------------------------------------------------------------------
    # Runner hooks
    # ------------------------------------------------------------------

    def calibration_round(self, workload: str, round_idx: int, window: int,
                          measured: float, cycles: float) -> None:
        """One MLP-calibration round; rounds are laid end to end on the
        ``calibration`` process track."""
        self.metrics.counter("runner.calibration_rounds").inc()
        if self.tracer is not None:
            self.tracer.name_thread("calibration", 0, "rounds")
            self.tracer.complete(
                "calibration", 0, f"{workload} round {round_idx}",
                self._calibration_clock, cycles, cat="runner",
                args={"window": window, "measured_utilization": measured},
            )
        self._calibration_clock += cycles

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def metrics_rows(self) -> List[dict]:
        """Every JSONL row: meta, window samples, run summaries and the
        final registry snapshot."""
        rows: List[dict] = [{
            "type": "meta",
            "format": METRICS_FORMAT,
            "window_cycles": self.window_cycles,
            "runs": sorted(self.series) or sorted(
                {s["run"] for s in self.summaries}
            ),
            "num_partitions": {
                run: series.num_partitions
                for run, series in sorted(self.series.items())
            },
        }]
        for _, series in sorted(self.series.items()):
            rows.extend(series.finalize())
        rows.extend(self.summaries)
        rows.append({"type": "metrics", "metrics": self.metrics.snapshot()})
        return rows

    def write_metrics(self, path: Union[str, Path]) -> int:
        """Write the JSONL export; returns the number of rows."""
        rows = self.metrics_rows()
        with open(path, "w") as fh:
            for row in rows:
                # sort_keys: byte-stable output for a given run, so
                # exports diff cleanly and hash identically.
                fh.write(json.dumps(row, sort_keys=True))
                fh.write("\n")
        return len(rows)

    def write_trace(self, path: Union[str, Path]) -> None:
        if self.tracer is None:
            raise ValueError("observer has no tracer attached")
        self.tracer.write(path)
