"""Metrics primitives: named counters, gauges and streaming histograms.

The registry is the aggregate half of the observability layer (the
time-resolved half lives in :mod:`repro.obs.timeseries`).  Histograms
are fixed-bucket *log* histograms: values land in geometrically spaced
buckets (four per octave, ~19 % resolution), so p50/p95/p99 come from a
few hundred integers with no sample retention — recording a value is
O(1) and memory is constant no matter how long the run is.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

#: Bucket boundaries grow by this factor: 2 ** (1/4), four per octave.
HIST_BASE = 2.0 ** 0.25
_LOG_BASE = math.log(HIST_BASE)
#: 256 buckets cover values up to HIST_BASE ** 255 ~= 1.2e19.
HIST_BUCKETS = 256


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins named measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class LogHistogram:
    """Streaming percentile estimates over log-spaced buckets.

    Bucket ``i`` (``i >= 1``) holds values in
    ``(HIST_BASE ** (i - 1), HIST_BASE ** i]``; bucket 0 holds values
    ``<= 1``.  A percentile query walks the cumulative counts and
    returns the upper bound of the bucket containing the requested
    rank, clamped to the observed min/max — the estimate is within one
    bucket width (~19 %) of the true order statistic.
    """

    __slots__ = ("name", "counts", "count", "total", "min_value", "max_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counts = [0] * HIST_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = 0.0

    @staticmethod
    def bucket_index(value: float) -> int:
        if value <= 1.0:
            return 0
        idx = int(math.log(value) / _LOG_BASE) + 1
        return idx if idx < HIST_BUCKETS else HIST_BUCKETS - 1

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        self.counts[self.bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def record_many(self, values) -> None:
        """Bulk :meth:`record`: same buckets, same running totals (the
        float sum visits the values in order), one call for a whole
        batch — the event core's per-kernel latency recording."""
        counts = self.counts
        total = self.total
        min_value = self.min_value
        max_value = self.max_value
        log = math.log
        log_base = _LOG_BASE
        top = HIST_BUCKETS - 1
        for value in values:
            if value < 0:
                raise ValueError("histogram values must be non-negative")
            if value <= 1.0:
                counts[0] += 1
            else:
                idx = int(log(value) / log_base) + 1
                counts[idx if idx < top else top] += 1
            total += value
            if value < min_value:
                min_value = value
            if value > max_value:
                max_value = value
        self.count += len(values)
        self.total = total
        self.min_value = min_value
        self.max_value = max_value

    def merge(self, other: "LogHistogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def state(self) -> dict:
        """Lossless, JSON-safe serialisation for cross-process merging.

        Bucket counts are sparse (``{index: count}``) — most of the 256
        buckets are empty for any one metric, and JSON keys are strings
        anyway.  ``min`` is ``None`` when nothing was recorded (JSON has
        no ``inf``)."""
        return {
            "counts": {str(i): n for i, n in enumerate(self.counts) if n},
            "count": self.count,
            "total": self.total,
            "min": self.min_value if self.count else None,
            "max": self.max_value,
        }

    def merge_state(self, state: dict) -> None:
        """Merge a :meth:`state` dict (e.g. from a campaign worker)."""
        for idx, n in state["counts"].items():
            self.counts[int(idx)] += n
        self.count += state["count"]
        self.total += state["total"]
        if state["min"] is not None and state["min"] < self.min_value:
            self.min_value = state["min"]
        if state["max"] > self.max_value:
            self.max_value = state["max"]

    @property
    def average(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate of the p-th percentile (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for idx, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                upper = 1.0 if idx == 0 else HIST_BASE ** idx
                return min(max(upper, self.min_value), self.max_value)
        return self.max_value

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "avg": self.average,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create store for named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> LogHistogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = LogHistogram(name)
        return h

    def names(self) -> Iterable[str]:
        """Every registered metric name, sorted within each kind so
        iteration order (and anything exported from it) is stable
        regardless of registration order."""
        yield from sorted(self._counters)
        yield from sorted(self._gauges)
        yield from sorted(self._histograms)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        Counters and histogram buckets add; gauges are last-value-wins
        (the merged-in value overwrites, matching :meth:`Gauge.set`).
        Used to aggregate campaign-worker metrics back into the parent
        process, where in-place mutation inside the worker is lost.
        """
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, g in other._gauges.items():
            self.gauge(name).set(g.value)
        for name, h in other._histograms.items():
            self.histogram(name).merge(h)

    def state(self) -> dict:
        """Lossless JSON-safe form of the registry (vs. :meth:`snapshot`
        which reduces histograms to summary percentiles)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.state() for n, h in sorted(self._histograms.items())
            },
        }

    def merge_state(self, state: dict) -> None:
        """Merge a :meth:`state` dict produced in another process."""
        for name, value in state["counters"].items():
            self.counter(name).inc(value)
        for name, value in state["gauges"].items():
            self.gauge(name).set(value)
        for name, hist_state in state["histograms"].items():
            self.histogram(name).merge_state(hist_state)

    def snapshot(self) -> dict:
        """One JSON-ready dict of every registered metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }
