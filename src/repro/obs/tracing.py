"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

The tracer collects events in the Trace Event Format's JSON object
form: ``{"traceEvents": [...]}``.  Timestamps are *simulated GPU
cycles* written into the ``ts``/``dur`` microsecond fields — absolute
wall time is meaningless for a simulator, and cycles give Perfetto's
ruler a direct cycle readout.

Track layout:

* one *process* per simulation run (``pid`` named ``workload/scheme``),
  with one *thread* per memory partition carrying that partition's MEE
  operations (counter fetch, MAC verify, BMT walk, ...) as complete
  ("X") events, plus a ``frontend`` thread carrying issue-stall spans
  and kernel-boundary instants;
* one ``calibration`` process whose spans are the runner's
  calibration rounds laid end to end.

Event volume is bounded: past ``max_events`` new events are dropped
(and counted), so a trace of a huge run stays loadable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Default cap on retained events (~100 MB of JSON worst case).
MAX_EVENTS = 500_000


class ChromeTracer:
    """An in-memory Chrome trace-event collector."""

    def __init__(self, max_events: int = MAX_EVENTS) -> None:
        if max_events < 1:
            raise ValueError("max_events must be at least 1")
        self.max_events = max_events
        self.events: List[dict] = []
        self.dropped = 0
        self._pids: Dict[str, int] = {}
        self._named_threads: Dict[Tuple[int, int], str] = {}
        # Open begin()/end() spans: (pid, tid) -> stack of (name, ts).
        self._open_spans: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}
        self._last_ts = 0.0

    # ------------------------------------------------------------------
    # Track management
    # ------------------------------------------------------------------

    def pid(self, process: str) -> int:
        """The pid of a named process track (created on first use)."""
        pid = self._pids.get(process)
        if pid is None:
            pid = self._pids[process] = len(self._pids) + 1
            self.events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        return pid

    def name_thread(self, process: str, tid: int, name: str) -> None:
        pid = self.pid(process)
        if self._named_threads.get((pid, tid)) == name:
            return
        self._named_threads[(pid, tid)] = name
        self.events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": name},
        })

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def _admit(self) -> bool:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        return True

    def complete(
        self,
        process: str,
        tid: int,
        name: str,
        ts: float,
        dur: float,
        cat: str = "sim",
        args: Optional[dict] = None,
    ) -> None:
        """A complete ("X") span: [ts, ts + dur) on one track."""
        self._last_ts = max(self._last_ts, ts + max(dur, 0.0))
        if not self._admit():
            return
        event = {
            "ph": "X", "name": name, "cat": cat, "pid": self.pid(process),
            "tid": tid, "ts": ts, "dur": max(dur, 0.0),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self,
        process: str,
        tid: int,
        name: str,
        ts: float,
        cat: str = "sim",
        args: Optional[dict] = None,
    ) -> None:
        """A thread-scoped instant ("i") event."""
        self._last_ts = max(self._last_ts, ts)
        if not self._admit():
            return
        event = {
            "ph": "i", "name": name, "cat": cat, "pid": self.pid(process),
            "tid": tid, "ts": ts, "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(
        self, process: str, name: str, ts: float, values: Dict[str, float],
        cat: str = "sim",
    ) -> None:
        """A counter ("C") sample rendered as a stacked area track."""
        self._last_ts = max(self._last_ts, ts)
        if not self._admit():
            return
        self.events.append({
            "ph": "C", "name": name, "cat": cat, "pid": self.pid(process),
            "tid": 0, "ts": ts, "args": dict(values),
        })

    def begin(
        self,
        process: str,
        tid: int,
        name: str,
        ts: float,
        cat: str = "sim",
        args: Optional[dict] = None,
    ) -> None:
        """Open a duration ("B") span; pair with :meth:`end`.

        Spans on one track nest as a stack, matching the trace-event
        format's requirement that B/E pairs be properly nested.
        """
        self._last_ts = max(self._last_ts, ts)
        key = (self.pid(process), tid)
        self._open_spans.setdefault(key, []).append((name, ts))
        if not self._admit():
            return
        event = {
            "ph": "B", "name": name, "cat": cat, "pid": key[0],
            "tid": tid, "ts": ts,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def end(self, process: str, tid: int, ts: float,
            cat: str = "sim") -> None:
        """Close the innermost open span on a track.

        Ends without a matching begin are ignored (the trace stays
        well-formed rather than corrupting Perfetto's span nesting).
        """
        self._last_ts = max(self._last_ts, ts)
        key = (self.pid(process), tid)
        stack = self._open_spans.get(key)
        if not stack:
            return
        stack.pop()
        if not self._admit():
            return
        self.events.append({
            "ph": "E", "cat": cat, "pid": key[0], "tid": tid, "ts": ts,
        })

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Export the trace, auto-closing any still-open spans.

        Unclosed spans are terminated at the latest timestamp the
        tracer has seen, so a trace flushed mid-run (or after a crash)
        still loads instead of rendering infinite spans.
        """
        events = list(self.events)
        for (pid, tid), stack in sorted(self._open_spans.items()):
            for _name, ts in reversed(stack):
                events.append({
                    "ph": "E", "cat": "sim", "pid": pid, "tid": tid,
                    "ts": max(self._last_ts, ts),
                })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated GPU cycles (in the us field)",
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: Union[str, Path]) -> None:
        # sort_keys makes the byte stream deterministic for a given
        # event sequence, so traces diff cleanly across runs.
        Path(path).write_text(json.dumps(self.to_dict(), sort_keys=True))
