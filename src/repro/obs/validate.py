"""Validate observability exports (used by CI's smoke job).

Checks that a ``--trace`` file is well-formed Chrome trace-event JSON
with MEE operation events on every secure partition, and that a
``--metrics-out`` JSONL file's window rows sum back to each run
summary's aggregate traffic counters exactly.

Usage::

    python -m repro.obs.validate --trace t.json --metrics m.jsonl
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Union


class ValidationError(Exception):
    """An export failed an invariant."""


def load_jsonl(path: Union[str, Path]) -> List[dict]:
    rows = []
    for line_no, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path}:{line_no}: bad JSON: {exc}") from exc
    return rows


def validate_trace(path: Union[str, Path],
                   expect_partitions: Optional[int] = None) -> dict:
    """Load a trace file; raise :class:`ValidationError` on problems.

    Returns ``{"events": N, "mee_partitions": [...]}``.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValidationError(f"{path}: traceEvents missing or empty")
    for event in events:
        if "ph" not in event or "pid" not in event:
            raise ValidationError(f"{path}: malformed event: {event!r}")
    mee_tids = sorted({
        event["tid"] for event in events
        if event.get("cat") == "mee" and event["ph"] in ("X", "i")
    })
    if expect_partitions is not None:
        missing = [p for p in range(expect_partitions) if p not in mee_tids]
        if missing:
            raise ValidationError(
                f"{path}: no MEE events on partitions {missing}"
            )
    return {"events": len(events), "mee_partitions": mee_tids}


def validate_metrics(path: Union[str, Path]) -> dict:
    """Check window-row sums against each run summary's traffic.

    Returns ``{"rows": N, "runs": {run: window_count}}``.
    """
    rows = load_jsonl(path)
    if not rows or rows[0].get("type") != "meta":
        raise ValidationError(f"{path}: first row must be the meta row")
    windows: dict = {}
    summaries: dict = {}
    for row in rows:
        if row.get("type") == "window":
            windows.setdefault(row["run"], []).append(row)
        elif row.get("type") == "summary":
            summaries[row["run"]] = row
    if not summaries:
        raise ValidationError(f"{path}: no summary rows")
    for run, summary in summaries.items():
        sums = {kind: 0 for kind in ("data", "ctr", "mac", "bmt", "mispred")}
        for row in windows.get(run, []):
            for kind in sums:
                sums[kind] += row[f"{kind}_bytes"]
        expected = summary["traffic"]
        for kind, total in sums.items():
            if total != expected[kind]:
                raise ValidationError(
                    f"{path}: run {run!r}: window {kind} bytes sum to "
                    f"{total}, summary says {expected[kind]}"
                )
    return {"rows": len(rows),
            "runs": {run: len(w) for run, w in windows.items()}}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate repro observability exports")
    parser.add_argument("--trace", default=None)
    parser.add_argument("--metrics", default=None)
    parser.add_argument("--partitions", type=int, default=None,
                        help="require MEE events on partitions 0..N-1")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("nothing to validate: pass --trace and/or --metrics")
    try:
        if args.trace:
            info = validate_trace(args.trace, args.partitions)
            print(f"{args.trace}: ok ({info['events']} events, MEE on "
                  f"partitions {info['mee_partitions']})")
        if args.metrics:
            info = validate_metrics(args.metrics)
            print(f"{args.metrics}: ok ({info['rows']} rows, "
                  f"windows per run: {info['runs']})")
    except ValidationError as exc:
        print(f"FAIL: {exc}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
