"""Validate observability exports (used by CI's smoke jobs).

Checks that a ``--trace`` file is well-formed Chrome trace-event JSON
with MEE operation events on every secure partition, that a
``--metrics-out`` JSONL file's window rows sum back to each run
summary's aggregate traffic counters exactly, and that an ``--events``
campaign event log honours the taxonomy (known types, required
payload fields, monotonic sequence numbers, a terminal event for
every started cell).

Usage::

    python -m repro.obs.validate --trace t.json --metrics m.jsonl
    python -m repro.obs.validate --events tel/events.jsonl
    python -m repro.obs.validate --decisions decisions.jsonl
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Union


class ValidationError(Exception):
    """An export failed an invariant."""


def load_jsonl(path: Union[str, Path]) -> List[dict]:
    rows = []
    for line_no, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path}:{line_no}: bad JSON: {exc}") from exc
    return rows


def validate_trace(path: Union[str, Path],
                   expect_partitions: Optional[int] = None) -> dict:
    """Load a trace file; raise :class:`ValidationError` on problems.

    Returns ``{"events": N, "mee_partitions": [...]}``.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValidationError(f"{path}: traceEvents missing or empty")
    for event in events:
        if "ph" not in event or "pid" not in event:
            raise ValidationError(f"{path}: malformed event: {event!r}")
    mee_tids = sorted({
        event["tid"] for event in events
        if event.get("cat") == "mee" and event["ph"] in ("X", "i")
    })
    if expect_partitions is not None:
        missing = [p for p in range(expect_partitions) if p not in mee_tids]
        if missing:
            raise ValidationError(
                f"{path}: no MEE events on partitions {missing}"
            )
    return {"events": len(events), "mee_partitions": mee_tids}


def validate_metrics(path: Union[str, Path]) -> dict:
    """Check window-row sums against each run summary's traffic.

    Returns ``{"rows": N, "runs": {run: window_count}}``.
    """
    rows = load_jsonl(path)
    if not rows or rows[0].get("type") != "meta":
        raise ValidationError(f"{path}: first row must be the meta row")
    windows: dict = {}
    summaries: dict = {}
    for row in rows:
        if row.get("type") == "window":
            windows.setdefault(row["run"], []).append(row)
        elif row.get("type") == "summary":
            summaries[row["run"]] = row
    if not summaries:
        raise ValidationError(f"{path}: no summary rows")
    for run, summary in summaries.items():
        sums = {kind: 0 for kind in ("data", "ctr", "mac", "bmt", "mispred")}
        for row in windows.get(run, []):
            for kind in sums:
                sums[kind] += row[f"{kind}_bytes"]
        expected = summary["traffic"]
        for kind, total in sums.items():
            if total != expected[kind]:
                raise ValidationError(
                    f"{path}: run {run!r}: window {kind} bytes sum to "
                    f"{total}, summary says {expected[kind]}"
                )
    return {"rows": len(rows),
            "runs": {run: len(w) for run, w in windows.items()}}


def validate_events(path: Union[str, Path]) -> dict:
    """Check a campaign event log against the taxonomy.

    Enforces, per row: parseable JSON (strict — a *finished* log has no
    torn lines), a known event type, every required payload field, the
    ``cell`` correlation ID on cell-scoped events, and a monotonically
    increasing ``seq``.  Per log: every started (non-cached) cell must
    reach a terminal event — ``cell_completed`` or ``cell_failed`` —
    so a crashed campaign cannot masquerade as a clean one.

    Returns ``{"rows": N, "types": {type: count}, "cells": N}``.
    """
    from repro.obs.events import CELL_SCOPED, EVENT_TYPES

    try:
        rows = [json.loads(line) for line in
                Path(path).read_text(encoding="utf-8").splitlines()
                if line.strip()]
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: bad JSON line: {exc}") from exc
    if not rows:
        raise ValidationError(f"{path}: empty event log")

    types: dict = {}
    last_seq = -1
    started: set = set()
    terminal: set = set()
    for i, row in enumerate(rows):
        kind = row.get("type")
        if kind not in EVENT_TYPES:
            raise ValidationError(f"{path}: row {i}: unknown type {kind!r}")
        for field in ("seq", "ts", "campaign"):
            if field not in row:
                raise ValidationError(
                    f"{path}: row {i} ({kind}): missing envelope "
                    f"field {field!r}")
        missing = [f for f in EVENT_TYPES[kind] if f not in row]
        if missing:
            raise ValidationError(
                f"{path}: row {i} ({kind}): missing required "
                f"field(s) {', '.join(missing)}")
        if kind in CELL_SCOPED and not row.get("cell"):
            raise ValidationError(
                f"{path}: row {i} ({kind}): cell correlation ID required")
        seq = row["seq"]
        if not isinstance(seq, int) or seq <= last_seq:
            raise ValidationError(
                f"{path}: row {i}: seq {seq!r} not monotonically "
                f"increasing (previous {last_seq})")
        last_seq = seq
        types[kind] = types.get(kind, 0) + 1
        if kind == "cell_started":
            started.add(row["cell"])
        elif kind in ("cell_completed", "cell_failed", "cell_cached"):
            terminal.add(row["cell"])
    dangling = started - terminal
    if dangling:
        raise ValidationError(
            f"{path}: {len(dangling)} started cell(s) never reached a "
            f"terminal event: {sorted(dangling)[:3]}...")
    return {"rows": len(rows), "types": types,
            "cells": len(started | terminal)}


def validate_decisions(path: Union[str, Path]) -> dict:
    """Check a decision-ledger JSONL export (``--decisions``).

    Enforces the format header (``decisions_format`` + an accurate row
    count), then per row: a known decision type whose ``detector``
    matches the taxonomy, every :data:`~repro.obs.decisions.ROW_FIELDS`
    field present, non-negative numeric cost fields, the 11-float
    feature vector, a contiguous ``seq`` and a monotonically
    non-decreasing ``cycle`` within each ``run`` (one export may hold
    several workload/scheme runs back to back).

    Returns ``{"rows": N, "dropped": N, "types": {type: count},
    "regions": N}``.
    """
    from repro.obs.decisions import (
        DECISION_TYPES,
        DECISIONS_FORMAT,
        ROW_FIELDS,
    )

    lines = load_jsonl(path)
    if not lines:
        raise ValidationError(f"{path}: empty decisions export")
    header = lines[0]
    if header.get("decisions_format") != DECISIONS_FORMAT:
        raise ValidationError(
            f"{path}: bad/missing decisions_format "
            f"(expected {DECISIONS_FORMAT}, "
            f"got {header.get('decisions_format')!r})")
    rows = lines[1:]
    if header.get("rows") != len(rows):
        raise ValidationError(
            f"{path}: header says {header.get('rows')} rows, "
            f"file has {len(rows)}")

    types: dict = {}
    regions: set = set()
    last_cycle: dict = {}
    for i, row in enumerate(rows):
        kind = row.get("type")
        if kind not in DECISION_TYPES:
            raise ValidationError(
                f"{path}: row {i}: unknown decision type {kind!r}")
        missing = [f for f in ROW_FIELDS if f not in row]
        if missing:
            raise ValidationError(
                f"{path}: row {i} ({kind}): missing field(s) "
                f"{', '.join(missing)}")
        if row["detector"] != DECISION_TYPES[kind]:
            raise ValidationError(
                f"{path}: row {i} ({kind}): detector "
                f"{row['detector']!r} does not match the taxonomy "
                f"({DECISION_TYPES[kind]!r})")
        for field in ("cost_bytes", "cost_transfers", "stall_cycles"):
            value = row[field]
            if not isinstance(value, (int, float)) or value < 0:
                raise ValidationError(
                    f"{path}: row {i} ({kind}): {field} must be a "
                    f"non-negative number, got {value!r}")
        fv = row["fv"]
        if not isinstance(fv, list) or len(fv) != 11 or not all(
                isinstance(v, (int, float)) for v in fv):
            raise ValidationError(
                f"{path}: row {i} ({kind}): fv must be the 11-float "
                f"feature vector (see docs/observability.md)")
        if row["seq"] != i:
            raise ValidationError(
                f"{path}: row {i}: seq {row['seq']!r} not contiguous")
        run = row["run"]
        cycle = row["cycle"]
        prev = last_cycle.get(run, float("-inf"))
        if not isinstance(cycle, (int, float)) or cycle < prev:
            raise ValidationError(
                f"{path}: row {i}: cycle {cycle!r} not monotonically "
                f"non-decreasing within run {run!r} (previous {prev})")
        last_cycle[run] = cycle
        types[kind] = types.get(kind, 0) + 1
        regions.add((row["partition"], row["detector"], row["region"]))
    return {"rows": len(rows), "dropped": header.get("dropped", 0),
            "types": types, "regions": len(regions)}


def validate_workload_trace(path: Union[str, Path]) -> dict:
    """Check a workload trace file (v1 JSON or v2 gzip JSONL stream).

    Loads it through :mod:`repro.workloads.trace_io` (which enforces
    format_version, array shapes, kernel ``seq`` continuity and the v2
    end-record totals), then re-runs the workload model's own
    invariants — every access inside a declared buffer, positive
    sector counts — via ``Workload.validate``.

    Returns ``{"format_version", "name", "kernels", "accesses",
    "buffers"}``.
    """
    from repro.workloads.trace_io import (
        TraceFormatError,
        load_workload,
        trace_info,
    )

    try:
        info = trace_info(path)
        load_workload(path)  # full parse + Workload.validate
    except TraceFormatError as exc:
        raise ValidationError(str(exc)) from exc
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ValidationError(f"{path}: bad workload trace: {exc}") from exc
    return info


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate repro observability exports")
    parser.add_argument("--trace", default=None)
    parser.add_argument("--metrics", default=None)
    parser.add_argument("--events", default=None,
                        help="campaign event log (JSONL) to validate")
    parser.add_argument("--decisions", default=None, metavar="PATH",
                        help="decision-ledger JSONL export to validate "
                             "(repro inspect --decisions --decisions-out)")
    parser.add_argument("--workload-trace", default=None, metavar="PATH",
                        help="workload trace file (v1 JSON or v2 gzip "
                             "JSONL) to validate")
    parser.add_argument("--partitions", type=int, default=None,
                        help="require MEE events on partitions 0..N-1")
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.events or args.decisions
            or args.workload_trace):
        parser.error("nothing to validate: pass --trace, --metrics, "
                     "--events, --decisions and/or --workload-trace")
    try:
        if args.trace:
            info = validate_trace(args.trace, args.partitions)
            print(f"{args.trace}: ok ({info['events']} events, MEE on "
                  f"partitions {info['mee_partitions']})")
        if args.metrics:
            info = validate_metrics(args.metrics)
            print(f"{args.metrics}: ok ({info['rows']} rows, "
                  f"windows per run: {info['runs']})")
        if args.events:
            info = validate_events(args.events)
            counts = ", ".join(f"{k}={v}"
                               for k, v in sorted(info["types"].items()))
            print(f"{args.events}: ok ({info['rows']} events over "
                  f"{info['cells']} cells: {counts})")
        if args.decisions:
            info = validate_decisions(args.decisions)
            counts = ", ".join(f"{k}={v}"
                               for k, v in sorted(info["types"].items()))
            print(f"{args.decisions}: ok ({info['rows']} decisions over "
                  f"{info['regions']} regions, {info['dropped']} dropped"
                  f"{': ' + counts if counts else ''})")
        if args.workload_trace:
            info = validate_workload_trace(args.workload_trace)
            print(f"{args.workload_trace}: ok (v{info['format_version']} "
                  f"trace {info['name']!r}: {info['kernels']} kernels, "
                  f"{info['accesses']:,} accesses, "
                  f"{info['buffers']} buffers)")
    except ValidationError as exc:
        print(f"FAIL: {exc}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
