"""The persistent cross-run telemetry store (sqlite-backed).

Campaign results used to vanish into per-campaign manifest files and
the perf trajectory lived in hand-committed ``BENCH_*.json`` files.
:class:`TelemetryStore` gives both a queryable history: every campaign
cell and every ``repro bench`` run lands as a row keyed by content
address, config/code version and timestamp, so "has this cell ever
failed", "what is the rolling bench median" and "how did fig12's
averages move across the last month" become SQL, not archaeology.

Concurrency: the store is written by *parents* only (pool workers
never touch it — a cell's row is inserted after its terminal outcome,
inside one transaction, so a killed worker can never leave a partial
row).  Multiple parent processes (parallel campaigns, bench runs on a
shared store) are safe: the database runs in WAL mode with a busy
timeout, and every write transaction additionally holds an exclusive
``flock`` on a sidecar lock file — belt and braces, because WAL's
writer lock does not queue fairly under heavy contention on all
filesystems.

Determinism: :meth:`export` emits the store's durable content (cells,
campaigns, bench medians) with volatile columns (timestamps, host
runtimes, row IDs) excluded and rows canonically ordered, so the same
campaign recorded serially or via the pool exports byte-identically —
covered by the determinism suite alongside the event log.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

try:  # POSIX only; the store degrades to WAL-only safety elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Telemetry-store schema version (``PRAGMA user_version``).  Version
#: 2 added the nullable ``cells.decisions`` column (decision-ledger
#: summaries from ``--cell-decisions`` campaigns); a version-1 store is
#: migrated in place on open.
STORE_FORMAT = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign TEXT NOT NULL,
    created_ts REAL NOT NULL,
    code_version TEXT NOT NULL,
    scale REAL NOT NULL,
    experiments TEXT NOT NULL,     -- JSON list of experiment names
    totals TEXT NOT NULL,          -- JSON totals block of the manifest
    elapsed_s REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES campaigns(id),
    campaign TEXT NOT NULL,
    key TEXT NOT NULL,             -- content address (cell_key)
    experiment TEXT NOT NULL,
    workload TEXT NOT NULL,
    scheme TEXT NOT NULL,
    kind TEXT NOT NULL,
    series TEXT NOT NULL,
    status TEXT NOT NULL,
    cached INTEGER NOT NULL,
    attempts INTEGER NOT NULL,
    runtime_s REAL NOT NULL,
    code_version TEXT NOT NULL,
    created_ts REAL NOT NULL,
    decisions TEXT                 -- JSON ledger summary, NULL when off
);
CREATE INDEX IF NOT EXISTS idx_cells_key ON cells(key);
CREATE INDEX IF NOT EXISTS idx_cells_campaign ON cells(campaign);
CREATE TABLE IF NOT EXISTS bench_runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    git_rev TEXT NOT NULL,
    created_ts REAL NOT NULL,
    smoke INTEGER NOT NULL,
    environment TEXT NOT NULL      -- JSON environment fingerprint
);
CREATE TABLE IF NOT EXISTS bench_samples (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES bench_runs(id),
    name TEXT NOT NULL,
    kind TEXT NOT NULL,
    unit TEXT NOT NULL,
    median REAL NOT NULL,
    min REAL NOT NULL,
    mad REAL NOT NULL,
    mean REAL NOT NULL,
    max REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_bench_name ON bench_samples(name);
"""


class TelemetryStore:
    """Sqlite-backed persistent telemetry: campaign cells + bench runs.

    One instance per parent process; connections are opened lazily and
    every write runs inside :meth:`_write` (flock + ``BEGIN IMMEDIATE``
    + commit/rollback), so rows are all-or-nothing.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection management ----------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.path), timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                # Fresh database: executescript created the current
                # schema, just stamp it.
                conn.execute(f"PRAGMA user_version={STORE_FORMAT}")
            elif version == 1:
                # v1 -> v2: the cells table predates the decisions
                # column (CREATE IF NOT EXISTS left it untouched).
                conn.execute("ALTER TABLE cells ADD COLUMN decisions TEXT")
                conn.execute(f"PRAGMA user_version={STORE_FORMAT}")
            elif version != STORE_FORMAT:
                conn.close()
                raise ValueError(
                    f"{self.path}: telemetry store format {version} "
                    f"(this build reads {STORE_FORMAT})"
                )
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @contextmanager
    def _write(self) -> Iterator[sqlite3.Connection]:
        """One atomic write transaction under the cross-process lock."""
        conn = self._connect()
        lock_path = self.path.with_name(self.path.name + ".lock")
        lock = open(lock_path, "a+")
        try:
            if fcntl is not None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            conn.execute("BEGIN IMMEDIATE")
            try:
                yield conn
            except BaseException:
                conn.rollback()
                raise
            conn.commit()
        finally:
            if fcntl is not None:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
            lock.close()

    # -- campaign telemetry -------------------------------------------

    def record_campaign(self, manifest: dict, campaign: str,
                        created_ts: Optional[float] = None) -> int:
        """Insert one campaign run (manifest totals + every cell row)
        atomically; returns the campaign row ID.

        Cells referenced by several experiments land once per
        *reference* (the experiment column disambiguates), mirroring
        the manifest's per-experiment cell lists.
        """
        now = time.time() if created_ts is None else created_ts
        with self._write() as conn:
            cursor = conn.execute(
                "INSERT INTO campaigns (campaign, created_ts, code_version,"
                " scale, experiments, totals, elapsed_s)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (campaign, now, manifest["code_version"],
                 manifest["scale"],
                 json.dumps(list(manifest["experiments"]), sort_keys=True),
                 json.dumps(manifest["totals"], sort_keys=True),
                 manifest["elapsed_seconds"]),
            )
            run_id = cursor.lastrowid
            for name in sorted(manifest["experiments"]):
                for cell in manifest["experiments"][name]["cells"]:
                    decisions = cell.get("decisions")
                    conn.execute(
                        "INSERT INTO cells (run_id, campaign, key,"
                        " experiment, workload, scheme, kind, series,"
                        " status, cached, attempts, runtime_s,"
                        " code_version, created_ts, decisions)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                        " ?, ?)",
                        (run_id, campaign, cell["key"], name,
                         cell["workload"], cell["scheme"], cell["kind"],
                         cell.get("series", ""), cell["status"],
                         int(cell["cached"]), cell["attempts"],
                         cell["runtime_s"], manifest["code_version"], now,
                         json.dumps(decisions, sort_keys=True)
                         if decisions else None),
                    )
        return int(run_id)

    def campaign_history(self, limit: int = 20) -> List[dict]:
        """Most recent campaign runs, newest first."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT * FROM campaigns ORDER BY created_ts DESC, id DESC"
            " LIMIT ?", (limit,)).fetchall()
        return [{
            "campaign": r["campaign"],
            "created_ts": r["created_ts"],
            "code_version": r["code_version"],
            "scale": r["scale"],
            "experiments": json.loads(r["experiments"]),
            "totals": json.loads(r["totals"]),
            "elapsed_s": r["elapsed_s"],
        } for r in rows]

    def cell_history(self, key: str, limit: int = 20) -> List[dict]:
        """Every recorded run of one content-addressed cell, newest
        first — the audit trail behind "has this cell ever flaked"."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT * FROM cells WHERE key = ?"
            " ORDER BY created_ts DESC, id DESC LIMIT ?",
            (key, limit)).fetchall()
        return [dict(r) for r in rows]

    def cell_count(self) -> int:
        return int(self._connect().execute(
            "SELECT COUNT(*) FROM cells").fetchone()[0])

    # -- bench telemetry ----------------------------------------------

    def record_bench(self, doc: dict,
                     created_ts: Optional[float] = None) -> int:
        """Insert one ``bench_format`` document as a run + one sample
        row per benchmark; returns the bench run ID."""
        now = time.time() if created_ts is None else created_ts
        environment = doc.get("environment", {})
        with self._write() as conn:
            cursor = conn.execute(
                "INSERT INTO bench_runs (git_rev, created_ts, smoke,"
                " environment) VALUES (?, ?, ?, ?)",
                (environment.get("git_sha", ""), now,
                 int(bool(doc.get("config", {}).get("smoke"))),
                 json.dumps(environment, sort_keys=True)),
            )
            run_id = cursor.lastrowid
            for name in sorted(doc["benchmarks"]):
                entry = doc["benchmarks"][name]
                stats = entry["stats"]
                conn.execute(
                    "INSERT INTO bench_samples (run_id, name, kind, unit,"
                    " median, min, mad, mean, max)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (run_id, name, entry["kind"], entry["unit"],
                     stats["median"], stats["min"], stats["mad"],
                     stats["mean"], stats["max"]),
                )
        return int(run_id)

    def bench_names(self) -> List[str]:
        conn = self._connect()
        return [r[0] for r in conn.execute(
            "SELECT DISTINCT name FROM bench_samples ORDER BY name")]

    def bench_history(self, name: str, limit: int = 50) -> List[dict]:
        """Stored medians of one benchmark, newest first, with the run
        fingerprint attached."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT s.name, s.unit, s.kind, s.median, s.min, s.mad,"
            " r.git_rev, r.created_ts, r.smoke"
            " FROM bench_samples s JOIN bench_runs r ON s.run_id = r.id"
            " WHERE s.name = ? ORDER BY r.created_ts DESC, r.id DESC"
            " LIMIT ?", (name, limit)).fetchall()
        return [dict(r) for r in rows]

    def rolling_median(self, name: str, window: int = 5) -> Optional[float]:
        """Median of the last ``window`` stored medians of ``name`` —
        the store-backed regression baseline (robust to one noisy
        recorded run the way one run's median is robust to one noisy
        sample)."""
        history = self.bench_history(name, limit=window)
        if not history:
            return None
        medians = sorted(row["median"] for row in history)
        n = len(medians)
        mid = n // 2
        if n % 2:
            return medians[mid]
        return (medians[mid - 1] + medians[mid]) / 2.0

    def rolling_baseline(self, window: int = 5) -> dict:
        """A synthetic ``bench_format`` baseline document built from
        rolling medians, directly comparable by
        :func:`repro.perf.compare.compare_docs`."""
        benchmarks: Dict[str, dict] = {}
        for name in self.bench_names():
            history = self.bench_history(name, limit=1)
            rolling = self.rolling_median(name, window)
            if not history or rolling is None:
                continue
            benchmarks[name] = {
                "kind": history[0]["kind"],
                "unit": history[0]["unit"],
                "stats": {"median": rolling},
            }
        return {
            "bench_format": 1,
            "environment": {"git_sha": f"store:{self.path.name}"},
            "config": {"window": window},
            "benchmarks": benchmarks,
        }

    # -- deterministic export -----------------------------------------

    def export(self) -> dict:
        """The store's durable content as one deterministic document.

        Volatile columns (timestamps, runtimes, row IDs, elapsed) are
        excluded and rows are canonically ordered, so identical
        campaigns recorded in any execution mode export identically.
        Bench medians are included as stored — they are host wall
        times, deterministic only per recording.
        """
        conn = self._connect()
        campaigns = [{
            "campaign": r["campaign"],
            "code_version": r["code_version"],
            "scale": r["scale"],
            "experiments": json.loads(r["experiments"]),
            "totals": {k: v for k, v in
                       json.loads(r["totals"]).items()},
        } for r in conn.execute(
            "SELECT * FROM campaigns ORDER BY campaign, code_version, id")]
        cells = [{
            "campaign": r["campaign"],
            "key": r["key"],
            "experiment": r["experiment"],
            "workload": r["workload"],
            "scheme": r["scheme"],
            "kind": r["kind"],
            "series": r["series"],
            "status": r["status"],
            "cached": bool(r["cached"]),
            "attempts": r["attempts"],
            "code_version": r["code_version"],
            **({"decisions": json.loads(r["decisions"])}
               if r["decisions"] else {}),
        } for r in conn.execute(
            "SELECT * FROM cells"
            " ORDER BY campaign, experiment, key, series, id")]
        bench = [{
            "git_rev": r["git_rev"],
            "name": r["name"],
            "kind": r["kind"],
            "unit": r["unit"],
            "median": r["median"],
        } for r in conn.execute(
            "SELECT s.*, r.git_rev FROM bench_samples s"
            " JOIN bench_runs r ON s.run_id = r.id"
            " ORDER BY r.git_rev, s.name, s.id")]
        return {
            "store_format": STORE_FORMAT,
            "campaigns": campaigns,
            "cells": cells,
            "bench": bench,
        }

    def export_text(self) -> str:
        """The canonical export serialised byte-stably."""
        return json.dumps(self.export(), sort_keys=True, indent=1) + "\n"

    def write_export(self, path: Union[str, Path]) -> Path:
        out = Path(path)
        out.write_text(self.export_text(), encoding="utf-8")
        return out
