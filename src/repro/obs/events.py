"""The structured campaign event log: typed, append-only, crash-safe.

Single runs got deep observability in PR 1 (metrics, traces); this
module gives the *fleet* layer — the campaign engine and its worker
pool — an auditable record.  Every notable state change lands as one
JSON line in an append-only **event log**:

* a fixed **taxonomy** of event types (:data:`EVENT_TYPES`), each with
  its required payload fields, enforced by :class:`EventLog` at emit
  time and by :func:`repro.obs.validate.validate_events` after the
  fact;
* an **envelope** common to every event — monotonic ``seq``, wall
  ``ts``, ``type``, and correlation IDs (``campaign``, ``cell``,
  ``worker``) — so one ``grep``/filter reconstructs any cell's or
  worker's life;
* **worker spools**: pool workers cannot append to the parent's log
  (interleaved writes from dying processes would corrupt it), so each
  worker appends to its own spool file (:func:`spool_event`), flushed
  per line; the parent merges the spools with :func:`merge_spool`,
  which tolerates the truncated trailing line a killed worker leaves
  behind — crash telemetry must survive the crash it is reporting;
* a **canonical export** (:func:`canonical_events` /
  :func:`write_canonical`): the same campaign replayed serially or on
  a pool, under any ``PYTHONHASHSEED``, canonicalises to byte-identical
  output — volatile fields (timestamps, worker IDs, runtimes) are
  stripped and events are re-ordered by their deterministic identity,
  which is what makes event logs diffable across runs and machines.

The log is plain JSONL: one ``json.loads`` per line, no trailing
commas, no framing, so a partially written log is readable up to its
last complete line.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Union

#: Event-log schema version (validate/inspect key off this).
EVENTS_FORMAT = 1

#: The taxonomy: event type -> payload fields required beyond the
#: envelope.  ``cell`` correlation is required for every ``cell_*`` and
#: worker event; campaign-scope events carry only the campaign ID.
EVENT_TYPES: Dict[str, tuple] = {
    # campaign scope
    "campaign_started": ("experiments", "cells", "scale", "code_version"),
    "campaign_finished": ("totals",),
    # cell lifecycle
    "cell_cached": ("workload", "scheme"),
    "cell_started": (),
    "cell_completed": ("workload", "scheme", "attempts"),
    "cell_failed": ("workload", "scheme", "reason", "attempts"),
    # decision provenance (per executed cell, --cell-decisions)
    "cell_decisions": ("workload", "scheme", "summary"),
    # fault telemetry (one event per affected attempt)
    "cell_retry": ("attempt", "reason"),
    "worker_died": ("attempt",),
    "cell_timeout": ("attempt",),
    # host-performance telemetry (repro bench)
    "bench_recorded": ("git_rev", "benchmarks"),
    "regression_flagged": ("benchmark", "old_median", "new_median", "ratio"),
}

#: Types whose ``cell`` correlation ID must be set.
CELL_SCOPED = frozenset(t for t in EVENT_TYPES if t.startswith("cell_")
                        or t == "worker_died")

#: Envelope/payload fields stripped by the canonical export: anything
#: that varies run-to-run for the *same* campaign (wall clock, worker
#: identity, host runtimes, pool width).  ``seq`` is re-assigned after
#: the deterministic re-ordering.
VOLATILE_FIELDS = ("ts", "seq", "worker", "runtime", "elapsed_seconds",
                   "workers", "eta_seconds")

#: Lifecycle rank used by the canonical ordering: within one cell,
#: events sort start -> faults -> terminal, regardless of the wall
#: order they were observed in.
_TYPE_RANK = {
    "campaign_started": 0,
    "cell_cached": 1,
    "cell_started": 1,
    "worker_died": 2,
    "cell_timeout": 3,
    "cell_retry": 4,
    "cell_completed": 5,
    "cell_decisions": 5,
    "cell_failed": 5,
    "bench_recorded": 6,
    "regression_flagged": 7,
    "campaign_finished": 8,
}


class EventSchemaError(ValueError):
    """An event violates the taxonomy (unknown type / missing field)."""


def _check(event_type: str, fields: Dict[str, Any],
           cell: Optional[str]) -> None:
    required = EVENT_TYPES.get(event_type)
    if required is None:
        raise EventSchemaError(
            f"unknown event type {event_type!r}; known: "
            f"{', '.join(sorted(EVENT_TYPES))}"
        )
    missing = [name for name in required if name not in fields]
    if missing:
        raise EventSchemaError(
            f"{event_type}: missing required field(s) {', '.join(missing)}"
        )
    if event_type in CELL_SCOPED and not cell:
        raise EventSchemaError(f"{event_type}: cell correlation ID required")


def encode_event(row: dict) -> str:
    """One event as its canonical JSON line (sorted keys, compact)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


class EventLog:
    """Append-only JSONL event writer with monotonic sequence numbers.

    Opened lazily on first emit; every line is flushed so the log is
    live-tailable (``repro dash``) and loses at most the event being
    written when the process dies.  Not safe for concurrent writers —
    pool workers use :func:`spool_event` and the parent merges.
    """

    def __init__(self, path: Union[str, Path],
                 campaign: Optional[str] = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.path = Path(path)
        self.campaign = campaign
        self.seq = 0
        self._clock = clock
        self._handle: Optional[IO[str]] = None

    @property
    def spool_dir(self) -> Path:
        """Where this log's pool workers spool their events
        (``<log>.spool/`` next to the log file)."""
        return self.path.with_name(self.path.name + ".spool")

    def _ensure_open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Appending to an existing log (a resumed campaign reusing
            # its --telemetry dir) must continue its sequence, not
            # restart at 0 — monotonic seq is a validated invariant of
            # the whole file, not of one writer's lifetime.
            if self.seq == 0 and self.path.exists():
                for row in read_events(self.path, strict=False):
                    if isinstance(row.get("seq"), int):
                        self.seq = max(self.seq, row["seq"] + 1)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def emit(self, event_type: str, cell: Optional[str] = None,
             worker: Optional[Union[int, str]] = None,
             ts: Optional[float] = None, **fields: Any) -> dict:
        """Validate, stamp and append one event; returns the row."""
        _check(event_type, fields, cell)
        handle = self._ensure_open()  # may fast-forward seq (resume)
        row: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self._clock() if ts is None else ts,
            "type": event_type,
            "campaign": self.campaign,
        }
        if cell is not None:
            row["cell"] = cell
        if worker is not None:
            row["worker"] = worker
        row.update(fields)
        handle.write(encode_event(row) + "\n")
        handle.flush()
        self.seq += 1
        return row

    def append_row(self, row: dict) -> dict:
        """Append a pre-built row (a merged spool event), re-stamping
        its ``seq`` so the log's sequence stays monotonic."""
        handle = self._ensure_open()  # may fast-forward seq (resume)
        row = dict(row)
        row["seq"] = self.seq
        row.setdefault("campaign", self.campaign)
        handle.write(encode_event(row) + "\n")
        handle.flush()
        self.seq += 1
        return row

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_events(path: Union[str, Path],
                strict: bool = True) -> List[dict]:
    """Load an event log.  ``strict=False`` skips unparseable lines
    (a live log's in-flight last line, a crashed writer's torn tail)
    instead of raising."""
    rows: List[dict] = []
    for line_no, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            if strict:
                raise EventSchemaError(f"{path}:{line_no}: bad JSON line")
    return rows


# ---------------------------------------------------------------------------
# Worker spools (pool workers cannot share the parent's file handle)
# ---------------------------------------------------------------------------

def spool_event(spool_dir: Union[str, Path], event_type: str,
                cell: Optional[str] = None, **fields: Any) -> None:
    """Append one event to this process's private spool file.

    Opened per call in append mode and flushed by close, so the worst a
    killed worker leaves behind is one truncated final line — which
    :func:`merge_spool` skips.  Sequence numbers are assigned at merge
    time; the spool row carries only (ts, type, cell, worker, payload).
    """
    _check(event_type, fields, cell)
    spool = Path(spool_dir)
    spool.mkdir(parents=True, exist_ok=True)
    row: Dict[str, Any] = {"ts": time.time(), "type": event_type,
                           "worker": os.getpid()}
    if cell is not None:
        row["cell"] = cell
    row.update(fields)
    with open(spool / f"worker-{os.getpid()}.jsonl", "a",
              encoding="utf-8") as handle:
        handle.write(encode_event(row) + "\n")


def merge_spool(log: EventLog,
                spool_dir: Optional[Union[str, Path]] = None) -> int:
    """Fold every worker spool file into ``log`` and remove the spools.

    Crash-safe: unparseable lines (a worker died mid-write) are
    dropped, never fatal.  Rows are merged in (ts, worker) order so the
    merged log approximates wall order; returns the merged row count.
    """
    spool = Path(spool_dir) if spool_dir is not None else log.spool_dir
    if not spool.exists():
        return 0
    rows: List[dict] = []
    for part in sorted(spool.glob("worker-*.jsonl")):
        rows.extend(read_events(part, strict=False))
    rows.sort(key=lambda r: (r.get("ts", 0.0), str(r.get("worker", ""))))
    for row in rows:
        log.append_row(row)
    for part in sorted(spool.glob("worker-*.jsonl")):
        try:
            part.unlink()
        except OSError:
            pass
    try:
        spool.rmdir()
    except OSError:
        pass
    return len(rows)


# ---------------------------------------------------------------------------
# Canonical (deterministic) export
# ---------------------------------------------------------------------------

def canonical_events(rows: Sequence[dict]) -> List[dict]:
    """The deterministic view of an event log.

    Strips :data:`VOLATILE_FIELDS`, then orders events by their
    identity — lifecycle rank within campaign scope, then cell ID, then
    the canonical JSON of what remains — and re-assigns ``seq``.  Two
    logs of the same campaign (serial vs. pool, any hash seed) export
    byte-identically; the determinism suite enforces this.
    """
    cleaned = []
    for row in rows:
        kept = {k: v for k, v in row.items() if k not in VOLATILE_FIELDS}
        cleaned.append(kept)
    cleaned.sort(key=lambda r: (
        _TYPE_RANK.get(r.get("type", ""), 9),
        str(r.get("cell", "")),
        encode_event(r),
    ))
    for seq, row in enumerate(cleaned):
        row["seq"] = seq
    return cleaned


def write_canonical(rows: Sequence[dict], path: Union[str, Path]) -> int:
    """Write the canonical export as JSONL; returns the row count."""
    canonical = canonical_events(rows)
    Path(path).write_text(
        "".join(encode_event(row) + "\n" for row in canonical),
        encoding="utf-8",
    )
    return len(canonical)
