"""Cycle-window samplers: the time-resolved half of observability.

A :class:`WindowedSeries` buckets instrumentation events into fixed
cycle windows and keeps, per window, a compact columnar accumulator:
per-kind DRAM bytes, L2 and MDC hit counts, victim-cache probes,
demand-read latency sums, frontend stall cycles and per-partition DRAM
busy/wait cycles.  Events may arrive out of cycle order (completions
overtake issues in the simulator); rows are keyed by window index and
sorted once at :meth:`finalize`.

The per-kind byte columns are *exact*: every site that increments the
run's aggregate :class:`~repro.common.types.TrafficCounters` also adds
the same amount here, so summing the rows of a run reconstructs its
aggregate traffic byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List

#: Scalar columns accumulated per window.
SCALAR_COLUMNS = (
    "data_bytes",
    "ctr_bytes",
    "mac_bytes",
    "bmt_bytes",
    "mispred_bytes",
    "l2_accesses",
    "l2_misses",
    "mdc_accesses",
    "mdc_misses",
    "victim_probes",
    "victim_hits",
    "reads",
    "read_latency_sum",
    "stall_cycles",
)

#: Per-partition columns (lists of length ``num_partitions``).
PARTITION_COLUMNS = ("dram_busy", "dram_wait", "dram_requests")

#: Traffic kind -> column.  Unknown kinds count as demand data.
KIND_COLUMNS = {
    "data": "data_bytes",
    "ctr": "ctr_bytes",
    "mac": "mac_bytes",
    "bmt": "bmt_bytes",
    "mispred": "mispred_bytes",
}


class WindowedSeries:
    """Per-window accumulators for one simulation run."""

    def __init__(self, window_cycles: float, num_partitions: int,
                 run: str = "") -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if num_partitions < 1:
            raise ValueError("num_partitions must be at least 1")
        self.window_cycles = float(window_cycles)
        self.num_partitions = num_partitions
        self.run = run
        self.kernel = 0
        self._rows: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _row(self, cycle: float) -> dict:
        idx = int(cycle // self.window_cycles) if cycle > 0 else 0
        row = self._rows.get(idx)
        if row is None:
            row = {name: 0 for name in SCALAR_COLUMNS}
            for name in PARTITION_COLUMNS:
                row[name] = [0.0] * self.num_partitions
            row["kernel"] = self.kernel
            self._rows[idx] = row
        return row

    def set_kernel(self, kernel_idx: int) -> None:
        """Subsequent windows are attributed to this kernel."""
        self.kernel = kernel_idx

    def traffic(self, cycle: float, kind: str, size: int) -> None:
        row = self._row(cycle)
        row[KIND_COLUMNS.get(kind, "data_bytes")] += size

    def l2_access(self, cycle: float, miss: bool) -> None:
        row = self._row(cycle)
        row["l2_accesses"] += 1
        if miss:
            row["l2_misses"] += 1

    def mdc_access(self, cycle: float, hit: bool) -> None:
        row = self._row(cycle)
        row["mdc_accesses"] += 1
        if not hit:
            row["mdc_misses"] += 1

    def victim_probe(self, cycle: float, hit: bool) -> None:
        row = self._row(cycle)
        row["victim_probes"] += 1
        if hit:
            row["victim_hits"] += 1

    def read_latency(self, cycle: float, latency: float) -> None:
        row = self._row(cycle)
        row["reads"] += 1
        row["read_latency_sum"] += latency

    def stall(self, start: float, end: float) -> None:
        # The whole stall is attributed to the window it started in;
        # stalls are short against any sane window size.
        self._row(start)["stall_cycles"] += end - start

    def dram(self, partition: int, arrival: float, start: float,
             busy_until: float) -> None:
        row = self._row(start)
        row["dram_busy"][partition] += busy_until - start
        row["dram_wait"][partition] += start - arrival
        row["dram_requests"][partition] += 1

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def finalize(self) -> List[dict]:
        """Sorted, JSON-ready window rows with derived rates attached."""
        rows = []
        w = self.window_cycles
        for idx in sorted(self._rows):
            acc = self._rows[idx]
            row = {
                "type": "window",
                "run": self.run,
                "window": idx,
                "start_cycle": idx * w,
                "end_cycle": (idx + 1) * w,
                "kernel": acc["kernel"],
            }
            for name in SCALAR_COLUMNS:
                row[name] = acc[name]
            for name in PARTITION_COLUMNS:
                row[name] = list(acc[name])
            row["l2_miss_rate"] = (
                acc["l2_misses"] / acc["l2_accesses"] if acc["l2_accesses"] else 0.0
            )
            row["mdc_hit_rate"] = (
                1.0 - acc["mdc_misses"] / acc["mdc_accesses"]
                if acc["mdc_accesses"] else 0.0
            )
            row["avg_read_latency"] = (
                acc["read_latency_sum"] / acc["reads"] if acc["reads"] else 0.0
            )
            busy = acc["dram_busy"]
            row["dram_utilization"] = [min(1.0, b / w) for b in busy]
            row["dram_utilization_mean"] = (
                sum(row["dram_utilization"]) / len(busy) if busy else 0.0
            )
            rows.append(row)
        return rows

    def columns(self) -> Dict[str, list]:
        """The same data pivoted columnar: column name -> list."""
        rows = self.finalize()
        if not rows:
            return {}
        return {key: [row[key] for row in rows] for key in rows[0]}

    def totals(self) -> Dict[str, int]:
        """Across-window sums of the per-kind byte columns."""
        out = {name: 0 for name in KIND_COLUMNS.values()}
        for acc in self._rows.values():
            for name in out:
                out[name] += acc[name]
        return out
