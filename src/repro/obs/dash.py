"""The campaign dashboard: fold the event log, render TUI or HTML.

``repro dash`` watches a campaign's event log (:mod:`repro.obs.events`)
and renders live progress — completed/failed/cached counts, a progress
bar, per-worker health, throughput and ETA, and a runtime sparkline —
as a full-screen text UI.  ``repro dash --html`` emits the same state
as a static, self-contained HTML report (inline CSS + SVG, no external
assets, light and dark mode) suitable for CI artifacts; with a
telemetry store attached the report adds per-benchmark trend
sparklines from the stored bench history.

The renderer is deliberately split from the state: :class:`DashboardState`
folds events into counters and is pure (feed it rows in any order —
merged pool spools land ``cell_started`` rows *after* the terminal
events, and the fold must not care), and both renderers take an
explicit ``now`` so tests can pin the clock.
"""

from __future__ import annotations

import html as html_mod
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: Cell-terminal event types (a cell is "done" after any of these).
_TERMINAL = ("cell_completed", "cell_failed", "cell_cached")

#: Unicode block ramp for text sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


@dataclass
class WorkerHealth:
    """Per-worker counters folded from the event log."""

    worker: str
    started: int = 0
    deaths: int = 0
    last_ts: float = 0.0


@dataclass
class DashboardState:
    """Counters and series folded from one campaign's event log.

    Feed events in any order via :meth:`fold` (or build from a list
    with :meth:`from_events`); every derived quantity — running cells,
    throughput, ETA — is computed on read, so the fold itself stays a
    pure accumulation.
    """

    campaign: Optional[str] = None
    experiments: List[str] = field(default_factory=list)
    scale: Optional[float] = None
    code_version: Optional[str] = None
    total_cells: int = 0
    completed: int = 0
    failed: int = 0
    cached: int = 0
    retries: int = 0
    deaths: int = 0
    timeouts: int = 0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    totals: Optional[dict] = None
    last_ts: float = 0.0
    runtimes: List[float] = field(default_factory=list)
    workers: Dict[str, WorkerHealth] = field(default_factory=dict)
    #: detector -> folded decision-provenance counters (from
    #: ``cell_decisions`` events; see repro.obs.decisions.summary()).
    decisions: Dict[str, dict] = field(default_factory=dict)
    #: Executed cells that shipped a decision summary.
    decision_cells: int = 0
    _started: set = field(default_factory=set)
    _terminal: Dict[str, str] = field(default_factory=dict)

    # -- folding -------------------------------------------------------

    @classmethod
    def from_events(cls, rows: Sequence[dict]) -> "DashboardState":
        state = cls()
        for row in rows:
            state.fold(row)
        return state

    def fold(self, row: dict) -> None:
        """Apply one event row to the state."""
        kind = row.get("type")
        ts = float(row.get("ts") or 0.0)
        self.last_ts = max(self.last_ts, ts)
        if self.campaign is None and row.get("campaign"):
            self.campaign = row["campaign"]
        cell = row.get("cell")
        if kind == "campaign_started":
            if self.started_ts is not None:
                # A resumed campaign appended to the same log: the new
                # run supersedes the old one's per-run state (counts,
                # workers, runtimes) — show the latest run, not a sum.
                fresh = DashboardState()
                fresh.last_ts = self.last_ts
                self.__dict__.update(fresh.__dict__)
            if row.get("campaign"):
                self.campaign = row["campaign"]
            self.experiments = list(row.get("experiments", []))
            self.scale = row.get("scale")
            self.code_version = row.get("code_version")
            self.total_cells = int(row.get("cells", 0))
            self.started_ts = ts or None
        elif kind == "campaign_finished":
            self.finished_ts = ts or None
            self.totals = row.get("totals")
        elif kind == "cell_started":
            self._started.add(cell)
            worker = str(row.get("worker", "main"))
            health = self.workers.setdefault(worker, WorkerHealth(worker))
            health.started += 1
            health.last_ts = max(health.last_ts, ts)
        elif kind in _TERMINAL:
            self._terminal[cell] = kind
            if kind == "cell_completed":
                self.completed += 1
                runtime = row.get("runtime")
                if runtime is not None:
                    self.runtimes.append(float(runtime))
            elif kind == "cell_failed":
                self.failed += 1
            else:
                self.cached += 1
        elif kind == "cell_decisions":
            # Order-tolerant pure accumulation, like every other fold:
            # a merged spool may land these before cell_started rows.
            self.decision_cells += 1
            summary = row.get("summary") or {}
            for name, block in (summary.get("by_detector") or {}).items():
                acc = self.decisions.setdefault(name, {
                    "decisions": 0, "flips": 0, "timeouts": 0,
                    "cost_bytes": 0.0, "stall_cycles": 0.0})
                for counter in acc:
                    acc[counter] += block.get(counter, 0)
        elif kind == "cell_retry":
            self.retries += 1
        elif kind == "worker_died":
            self.deaths += 1
        elif kind == "cell_timeout":
            self.timeouts += 1

    # -- derived quantities --------------------------------------------

    @property
    def done(self) -> int:
        return self.completed + self.failed + self.cached

    @property
    def running(self) -> int:
        """Cells started but not yet terminal."""
        return len([c for c in self._started if c not in self._terminal])

    @property
    def finished(self) -> bool:
        return self.finished_ts is not None

    def elapsed(self, now: Optional[float] = None) -> float:
        if self.started_ts is None:
            return 0.0
        end = self.finished_ts if self.finished_ts is not None else (
            time.time() if now is None else now)
        return max(0.0, end - self.started_ts)

    def throughput(self, now: Optional[float] = None) -> float:
        """Executed (non-cached) terminal cells per second of wall."""
        elapsed = self.elapsed(now)
        executed = self.completed + self.failed
        return executed / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Projected seconds to finish the remaining cells (None until
        the throughput is measurable or when already finished)."""
        if self.finished or self.total_cells <= 0:
            return None
        remaining = self.total_cells - self.done
        rate = self.throughput(now)
        if remaining <= 0 or rate <= 0:
            return None
        return remaining / rate


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """A unicode block sparkline, downsampled to ``width`` points."""
    points = [float(v) for v in values]
    if not points:
        return ""
    if len(points) > width:
        # Average fixed-size buckets so the shape survives downsampling.
        step = len(points) / width
        points = [
            sum(points[int(i * step):max(int(i * step) + 1,
                                         int((i + 1) * step))]) /
            max(1, int((i + 1) * step) - int(i * step))
            for i in range(width)
        ]
    low, high = min(points), max(points)
    span = high - low
    if span <= 0:
        return _BLOCKS[0] * len(points)
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1,
                    int((value - low) / span * len(_BLOCKS)))]
        for value in points
    )


# ---------------------------------------------------------------------------
# Text (TUI) renderer
# ---------------------------------------------------------------------------

def _bar(done: int, total: int, width: int) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(round(width * min(1.0, done / total)))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_text(state: DashboardState, now: Optional[float] = None,
                width: int = 72) -> str:
    """The dashboard as plain text (one frame of the TUI)."""
    lines = []
    head = f"campaign {state.campaign or '?'}"
    if state.code_version:
        head += f"  code {state.code_version}"
    if state.scale is not None:
        head += f"  scale {state.scale}"
    lines.append(head)
    if state.experiments:
        lines.append("experiments: " + ", ".join(state.experiments))
    lines.append("")

    done, total = state.done, state.total_cells
    pct = (100.0 * done / total) if total else 0.0
    status = "finished" if state.finished else "running"
    lines.append(f"{_bar(done, total, width - 24)} {done}/{total} "
                 f"({pct:.0f}%) {status}")
    lines.append(
        f"ok {state.completed}  failed {state.failed}  "
        f"cached {state.cached}  in-flight {state.running}  "
        f"retries {state.retries} "
        f"(deaths {state.deaths}, timeouts {state.timeouts})"
    )
    lines.append(
        f"elapsed {_fmt_eta(state.elapsed(now))}  "
        f"throughput {state.throughput(now):.2f} cells/s  "
        f"eta {_fmt_eta(state.eta_seconds(now))}"
    )
    if state.runtimes:
        lines.append(f"cell runtime  {sparkline(state.runtimes)}  "
                     f"last {state.runtimes[-1]:.2f}s")
    if state.workers:
        lines.append("")
        lines.append(f"{'worker':>10s} {'cells':>6s} {'deaths':>7s}")
        for name in sorted(state.workers):
            health = state.workers[name]
            lines.append(f"{name:>10s} {health.started:6d} "
                         f"{health.deaths:7d}")
    if state.decisions:
        lines.append("")
        lines.append(f"decisions ({state.decision_cells} cell(s)):")
        lines.append(f"{'detector':>10s} {'count':>8s} {'flips':>6s} "
                     f"{'t/o':>5s} {'acc':>7s} {'cost KB':>9s} "
                     f"{'stall':>10s}")
        for name in sorted(state.decisions):
            acc = state.decisions[name]
            accuracy = (1.0 - acc["flips"] / acc["decisions"]
                        if acc["decisions"] else 1.0)
            lines.append(
                f"{name:>10s} {acc['decisions']:8d} {acc['flips']:6d} "
                f"{acc['timeouts']:5d} {accuracy:7.1%} "
                f"{acc['cost_bytes'] / 1024:9.1f} "
                f"{acc['stall_cycles']:10,.0f}")
    return "\n".join(lines)


def follow(path: Union[str, Path], interval: float = 1.0,
           frames: Optional[int] = None, out=None) -> DashboardState:
    """Tail the event log, repainting the TUI until the campaign
    finishes (or ``frames`` repaints in tests)."""
    import sys

    from repro.obs.events import read_events

    out = sys.stdout if out is None else out
    painted = 0
    state = DashboardState()
    while True:
        if Path(path).exists():
            state = DashboardState.from_events(
                read_events(path, strict=False))
        frame = render_text(state)
        out.write("\x1b[2J\x1b[H" + frame + "\n")
        out.flush()
        painted += 1
        if state.finished or (frames is not None and painted >= frames):
            return state
        time.sleep(interval)


# ---------------------------------------------------------------------------
# HTML renderer (static, self-contained; see docs/observability.md)
# ---------------------------------------------------------------------------

# Reference palette roles (light / dark), per the data-viz method:
# marks wear the series hue, text wears ink tokens, status colors are
# reserved and always paired with a glyph, never color alone.
_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: #f9f9f7; color: #0b0b0b;
  --surface: #fcfcfb; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series: #2a78d6; --series-dim: #9ec5f4;
  --good: #0ca30c; --critical: #d03b3b; --warning: #fab219;
}
@media (prefers-color-scheme: dark) {
  body {
    background: #0d0d0d; color: #ffffff;
    --surface: #1a1a19; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series: #3987e5; --series-dim: #184f95;
  }
}
h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--ink2); font-size: 13px; margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 108px;
}
.tile .label { color: var(--ink2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.meter {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 20px;
}
.meter .track {
  height: 10px; border-radius: 5px; background: var(--series-dim);
  overflow: hidden;
}
.meter .fill { height: 100%; background: var(--series); }
.meter .caption { color: var(--ink2); font-size: 13px; margin-top: 8px; }
section { margin-bottom: 20px; }
h2 { font-size: 14px; font-weight: 600; margin: 0 0 8px; }
table {
  border-collapse: collapse; font-size: 13px;
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px;
}
th, td { padding: 6px 12px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--muted); font-weight: 500;
     border-bottom: 1px solid var(--grid); }
td { font-variant-numeric: tabular-nums; }
.status-ok { color: var(--good); }
.status-bad { color: var(--critical); }
.spark-row td.spark { padding: 2px 12px; }
svg .line { fill: none; stroke: var(--series); stroke-width: 2;
            stroke-linejoin: round; stroke-linecap: round; }
svg .dot { fill: var(--series); stroke: var(--surface); stroke-width: 2; }
footer { color: var(--muted); font-size: 12px; }
"""


def _svg_sparkline(values: Sequence[float], width: int = 140,
                   height: int = 32) -> str:
    """One series as an inline SVG sparkline: 2px line, 8px end-dot
    with a 2px surface ring (per the mark specs)."""
    points = [float(v) for v in values]
    if not points:
        return ""
    pad = 5.0
    low, high = min(points), max(points)
    span = high - low or 1.0
    n = len(points)
    coords = [
        (pad + (width - 2 * pad) * (i / max(1, n - 1)),
         pad + (height - 2 * pad) * (1.0 - (v - low) / span))
        for i, v in enumerate(points)
    ]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    end_x, end_y = coords[-1]
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline class="line" points="{path}"/>'
        f'<circle class="dot" cx="{end_x:.1f}" cy="{end_y:.1f}" r="4"/>'
        f"</svg>"
    )


def _esc(value: object) -> str:
    return html_mod.escape(str(value))


def render_html(state: DashboardState, store=None,
                now: Optional[float] = None,
                bench_window: int = 12) -> str:
    """The dashboard as one static, self-contained HTML document.

    ``store`` (a :class:`repro.obs.store.TelemetryStore`) is optional;
    when given, the report appends per-benchmark trend sparklines from
    the stored bench history and the stored campaign history table.
    """
    done, total = state.done, state.total_cells
    pct = (100.0 * done / total) if total else 0.0
    status = "finished" if state.finished else "running"

    tiles = [
        ("cells", f"{total}"),
        ("ok", f"{state.completed}"),
        ("failed", f"{state.failed}"),
        ("cached", f"{state.cached}"),
        ("retries", f"{state.retries}"),
        ("elapsed", _fmt_eta(state.elapsed(now))),
        ("cells/s", f"{state.throughput(now):.2f}"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div></div>'
        for label, value in tiles
    )

    worker_rows = "".join(
        f"<tr><td>{_esc(name)}</td>"
        f"<td>{state.workers[name].started}</td>"
        f"<td>{state.workers[name].deaths}</td></tr>"
        for name in sorted(state.workers)
    )
    worker_html = (
        f"<section><h2>Worker health</h2><table>"
        f"<tr><th>worker</th><th>cells started</th><th>deaths</th></tr>"
        f"{worker_rows}</table></section>"
    ) if state.workers else ""

    runtime_html = ""
    if state.runtimes:
        runtime_html = (
            f"<section><h2>Cell runtimes</h2>"
            f"{_svg_sparkline(state.runtimes, width=420, height=48)}"
            f'<div class="sub">{len(state.runtimes)} executed cells, '
            f"median-ish shape left to right; last "
            f"{state.runtimes[-1]:.2f}s</div></section>"
        )

    decision_html = ""
    if state.decisions:
        decision_rows = []
        for name in sorted(state.decisions):
            acc = state.decisions[name]
            accuracy = (1.0 - acc["flips"] / acc["decisions"]
                        if acc["decisions"] else 1.0)
            decision_rows.append(
                f"<tr><td>{_esc(name)}</td>"
                f"<td>{acc['decisions']}</td>"
                f"<td>{acc['flips']}</td>"
                f"<td>{acc['timeouts']}</td>"
                f"<td>{accuracy:.1%}</td>"
                f"<td>{acc['cost_bytes'] / 1024:.1f}</td>"
                f"<td>{acc['stall_cycles']:,.0f}</td></tr>"
            )
        decision_html = (
            f"<section><h2>Decision provenance "
            f"({state.decision_cells} cell(s) with a ledger)</h2><table>"
            f"<tr><th>detector</th><th>decisions</th><th>flips</th>"
            f"<th>timeouts</th><th>accuracy</th><th>mispred cost KB</th>"
            f"<th>stall cycles</th></tr>"
            f"{''.join(decision_rows)}</table></section>"
        )

    store_html = ""
    if store is not None:
        rows = []
        for name in store.bench_names():
            history = store.bench_history(name, limit=bench_window)
            medians = [h["median"] for h in reversed(history)]
            if not medians:
                continue
            rows.append(
                f'<tr class="spark-row"><td>{_esc(name)}</td>'
                f"<td>{medians[-1]:.1f} "
                f"{_esc(history[0]['unit'])}</td>"
                f'<td class="spark">{_svg_sparkline(medians)}</td></tr>'
            )
        if rows:
            store_html += (
                f"<section><h2>Bench trend (stored medians, last "
                f"{bench_window} runs)</h2><table>"
                f"<tr><th>benchmark</th><th>latest</th><th>trend</th></tr>"
                f"{''.join(rows)}</table></section>"
            )
        campaigns = store.campaign_history(limit=10)
        if campaigns:
            campaign_rows = "".join(
                f"<tr><td>{_esc(c['campaign'])}</td>"
                f"<td>{_esc(c['code_version'])}</td>"
                f"<td>{_esc(', '.join(c['experiments']))}</td>"
                f"<td>{c['totals'].get('cells', '-')}</td>"
                f"<td>{c['totals'].get('failed', '-')}</td></tr>"
                for c in campaigns
            )
            store_html += (
                f"<section><h2>Stored campaign history</h2><table>"
                f"<tr><th>campaign</th><th>code</th><th>experiments</th>"
                f"<th>cells</th><th>failed</th></tr>"
                f"{campaign_rows}</table></section>"
            )

    # Status wears icon + label, never color alone.
    verdict = ('<span class="status-bad">&#10007; '
               f"{state.failed} failed</span>" if state.failed else
               '<span class="status-ok">&#10003; all ok</span>')

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro dash &mdash; campaign {_esc(state.campaign or '?')}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>Campaign {_esc(state.campaign or '?')}</h1>
<div class="sub">code {_esc(state.code_version or '?')} &middot;
scale {_esc(state.scale if state.scale is not None else '?')} &middot;
experiments: {_esc(', '.join(state.experiments) or '?')} &middot;
{status} &middot; {verdict}</div>
<div class="tiles">{tile_html}</div>
<div class="meter">
  <div class="track"><div class="fill" style="width:{pct:.1f}%"></div></div>
  <div class="caption">{done} of {total} cells terminal ({pct:.0f}%);
  in-flight {state.running}; eta {_esc(_fmt_eta(state.eta_seconds(now)))}
  </div>
</div>
{runtime_html}
{worker_html}
{decision_html}
{store_html}
<footer>generated by repro dash &middot; events format 1</footer>
</body>
</html>
"""


def write_html(state: DashboardState, path: Union[str, Path],
               store=None, now: Optional[float] = None) -> Path:
    out = Path(path)
    out.write_text(render_html(state, store=store, now=now),
                   encoding="utf-8")
    return out
