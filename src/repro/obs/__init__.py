"""Observability: metrics registry, cycle-window time series and
Chrome-trace export for the MEE/DRAM contention path.

The package is zero-overhead when disabled: instrumented code holds an
:class:`~repro.obs.observer.Observer` (default
:data:`~repro.obs.observer.NULL_OBSERVER`) and guards each hook behind
one boolean check.  See ``docs/observability.md``.
"""

from repro.obs.metrics import Counter, Gauge, LogHistogram, MetricsRegistry
from repro.obs.observer import (
    DEFAULT_WINDOW_CYCLES,
    NULL_OBSERVER,
    NullObserver,
    Observer,
)
from repro.obs.timeseries import WindowedSeries
from repro.obs.tracing import ChromeTracer

__all__ = [
    "ChromeTracer",
    "Counter",
    "DEFAULT_WINDOW_CYCLES",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "WindowedSeries",
]
