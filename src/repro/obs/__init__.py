"""Observability: metrics registry, cycle-window time series,
Chrome-trace export for the MEE/DRAM contention path, the security
decision-provenance ledger (:mod:`repro.obs.decisions`), and the fleet
telemetry layer — campaign event logs (:mod:`repro.obs.events`), the
persistent cross-run store (:mod:`repro.obs.store`) and the dashboard
(:mod:`repro.obs.dash`).

The package is zero-overhead when disabled: instrumented code holds an
:class:`~repro.obs.observer.Observer` (default
:data:`~repro.obs.observer.NULL_OBSERVER`) and guards each hook behind
one boolean check; campaign telemetry likewise only exists when an
:class:`~repro.obs.events.EventLog` / store is passed in.  See
``docs/observability.md``.
"""

from repro.obs.dash import DashboardState
from repro.obs.decisions import (
    DECISION_TYPES,
    DecisionLedger,
    NULL_LEDGER,
    NullDecisionLedger,
)
from repro.obs.events import EventLog, canonical_events, read_events
from repro.obs.metrics import Counter, Gauge, LogHistogram, MetricsRegistry
from repro.obs.observer import (
    DEFAULT_WINDOW_CYCLES,
    NULL_OBSERVER,
    NullObserver,
    Observer,
)
from repro.obs.store import TelemetryStore
from repro.obs.timeseries import WindowedSeries
from repro.obs.tracing import ChromeTracer

__all__ = [
    "ChromeTracer",
    "Counter",
    "DECISION_TYPES",
    "DEFAULT_WINDOW_CYCLES",
    "DashboardState",
    "DecisionLedger",
    "EventLog",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_LEDGER",
    "NULL_OBSERVER",
    "NullDecisionLedger",
    "NullObserver",
    "Observer",
    "TelemetryStore",
    "WindowedSeries",
    "canonical_events",
    "read_events",
]
