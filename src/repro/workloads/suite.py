"""Synthetic models of the paper's 16 benchmarks (Table VII).

Each function builds a :class:`repro.workloads.base.Workload` whose
address stream reproduces the published characteristics that drive the
paper's results: DRAM bandwidth utilisation (Table VII), the fraction
of accesses to read-only data and to streaming-accessed chunks
(Fig. 5), write intensity, memory-space usage (constant/texture) and
multi-kernel structure.  Absolute trace lengths scale with ``scale``.

These are *models*, not ports: the real CUDA kernels are unavailable
here (see DESIGN.md's substitution table).  What matters downstream —
detector behaviour, metadata traffic, cache pressure — depends only on
the address stream, which these generators control precisely.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.types import MemorySpace
from repro.workloads import patterns as pat
from repro.workloads.base import Workload, WorkloadBuilder

MB = 1 << 20
KB = 1 << 10

#: Canonical order, matching Table VII.
BENCHMARK_NAMES = [
    "atax", "backprop", "bfs", "b+tree", "cfd", "fdtd2d", "kmeans", "mvt",
    "histo", "lbm", "mri-gridding", "sad", "stencil", "srad", "srad_v2",
    "streamcluster",
]


def _n(count: float) -> int:
    return max(1, int(count))


def _span(nbytes: float) -> int:
    """Round an access-span length down to whole cache lines."""
    lines = max(1, int(nbytes) // 128)
    return lines * 128


def atax(scale: float = 1.0) -> Workload:
    """y = A^T (A x): two kernels streaming the read-only matrix."""
    b = WorkloadBuilder("atax", bandwidth_utilization=0.23,
                        description="matrix transpose / vector product (Polybench)")
    A = b.alloc("A", _n(2.25 * MB * scale))
    x = b.alloc("x", 192 * KB, space=MemorySpace.CONSTANT)
    tmp = b.alloc("tmp", 192 * KB, host_init=False)
    y = b.alloc("y", 192 * KB, host_init=False)
    out_span = min(tmp.size, _span(96 * KB * scale))
    k1 = pat.interleave(b.rng, [
        pat.stream_read(A.address, A.size),
        pat.hotspot_read(b.rng, x.address, x.size, _n(1200 * scale), 32 * KB),
        pat.stream_write(tmp.address, out_span),
    ])
    k2 = pat.interleave(b.rng, [
        pat.stream_read(A.address, A.size),
        pat.hotspot_read(b.rng, tmp.address, out_span, _n(1200 * scale),
                         min(out_span, 32 * KB)),
        pat.stream_write(y.address, min(y.size, out_span)),
    ])
    b.kernel("atax_kernel1", k1)
    b.kernel("atax_kernel2", k2)
    return b.build()


def mvt(scale: float = 1.0) -> Workload:
    """Two matrix-vector products over one read-only matrix."""
    b = WorkloadBuilder("mvt", bandwidth_utilization=0.22,
                        description="matrix-vector product and transpose (Polybench)")
    A = b.alloc("A", _n(2.25 * MB * scale))
    y1 = b.alloc("y1", 192 * KB, space=MemorySpace.CONSTANT)
    y2 = b.alloc("y2", 192 * KB, space=MemorySpace.CONSTANT)
    x1 = b.alloc("x1", 192 * KB, host_init=False)
    x2 = b.alloc("x2", 192 * KB, host_init=False)
    out_span = min(x1.size, _span(96 * KB * scale))
    k1 = pat.interleave(b.rng, [
        pat.stream_read(A.address, A.size),
        pat.hotspot_read(b.rng, y1.address, y1.size, _n(1000 * scale), 32 * KB),
        pat.stream_write(x1.address, out_span),
    ])
    k2 = pat.interleave(b.rng, [
        pat.stream_read(A.address, A.size),
        pat.hotspot_read(b.rng, y2.address, y2.size, _n(1000 * scale), 32 * KB),
        pat.stream_write(x2.address, out_span),
    ])
    b.kernel("mvt_kernel1", k1)
    b.kernel("mvt_kernel2", k2)
    return b.build()


def backprop(scale: float = 1.0) -> Workload:
    """Forward + weight-adjust passes of a two-layer network."""
    b = WorkloadBuilder("backprop", bandwidth_utilization=0.40,
                        description="neural-net training (Rodinia)")
    weights = b.alloc("weights", _n(1.5 * MB * scale))
    inputs = b.alloc("inputs", _n(0.75 * MB * scale))
    consts = b.alloc("params", 192 * KB, space=MemorySpace.CONSTANT)
    hidden = b.alloc("hidden", _n(0.375 * MB * scale), host_init=False)
    deltas = b.alloc("deltas", _n(0.375 * MB * scale), host_init=False)
    forward = pat.interleave(b.rng, [
        pat.stream_read(weights.address, weights.size),
        pat.stream_read(inputs.address, inputs.size),
        pat.hotspot_read(b.rng, consts.address, consts.size, _n(800 * scale), 16 * KB),
        pat.stream_write(hidden.address, hidden.size),
    ])
    backward = pat.interleave(b.rng, [
        pat.stream_read(hidden.address, hidden.size),
        pat.stream_read_write(weights.address, weights.size),  # weight update
        pat.stream_write(deltas.address, deltas.size),
    ])
    b.kernel("layerforward", forward)
    b.kernel("adjust_weights", backward)
    return b.build()


def bfs(scale: float = 1.0) -> Workload:
    """Frontier-based breadth-first search: random, write-heavy,
    multi-kernel."""
    b = WorkloadBuilder("bfs", bandwidth_utilization=0.35,
                        description="breadth-first search (Rodinia)")
    edges = b.alloc("edges", _n(3 * MB * scale))
    nodes = b.alloc("nodes", _n(0.75 * MB * scale))
    params = b.alloc("params", 192 * KB, space=MemorySpace.CONSTANT)
    mask = b.alloc("mask", _n(0.375 * MB * scale), host_init=False)
    cost = b.alloc("cost", _n(0.75 * MB * scale), host_init=False)
    per_level = _n(5600 * scale)
    for level in range(5):
        trace = pat.interleave(b.rng, [
            pat.gather_read(b.rng, edges.address, edges.size, per_level, locality=0.4),
            pat.gather_read(b.rng, nodes.address, nodes.size, per_level // 2, locality=0.2),
            pat.random_read(b.rng, mask.address, mask.size, per_level // 2),
            pat.random_write(b.rng, mask.address, mask.size, per_level // 2),
            pat.random_write(b.rng, cost.address, cost.size, per_level // 2),
            pat.hotspot_read(b.rng, params.address, params.size, per_level // 8, 8 * KB),
        ])
        b.kernel(f"bfs_level{level}", trace)
    return b.build()


def btree(scale: float = 1.0) -> Workload:
    """Batched B+tree lookups: pointer-chasing reads over a read-only
    tree, few writes."""
    b = WorkloadBuilder("b+tree", bandwidth_utilization=0.14,
                        description="B+tree queries (Rodinia)")
    tree = b.alloc("tree", _n(3 * MB * scale))
    keys = b.alloc("keys", _n(0.375 * MB * scale), space=MemorySpace.CONSTANT)
    results = b.alloc("results", _n(0.375 * MB * scale), host_init=False)
    trace = pat.interleave(b.rng, [
        pat.gather_read(b.rng, tree.address, tree.size, _n(26000 * scale), locality=0.5),
        pat.stream_read(keys.address, keys.size),
        pat.random_write(b.rng, results.address, results.size, _n(2500 * scale)),
        pat.hotspot_read(b.rng, tree.address, tree.size, _n(8000 * scale), 64 * KB),
    ])
    b.kernel("findK", trace)
    return b.build()


def cfd(scale: float = 1.0) -> Workload:
    """Unstructured-grid flux computation: streaming element state plus
    gathered neighbour reads, iterated."""
    b = WorkloadBuilder("cfd", bandwidth_utilization=0.50,
                        description="computational fluid dynamics (Rodinia)")
    neighbors = b.alloc("neighbors", _n(1.125 * MB * scale))
    areas = b.alloc("areas", _n(0.375 * MB * scale), space=MemorySpace.CONSTANT)
    variables = b.alloc("variables", _n(1.125 * MB * scale), host_init=False)
    fluxes = b.alloc("fluxes", _n(1.125 * MB * scale), host_init=False)
    for it in range(2):
        trace = pat.interleave(b.rng, [
            pat.stream_read(variables.address, variables.size),
            pat.stream_read(neighbors.address, neighbors.size),
            pat.gather_read(b.rng, variables.address, variables.size,
                            _n(3000 * scale), locality=0.3),
            pat.hotspot_read(b.rng, areas.address, areas.size, _n(900 * scale), 32 * KB),
            pat.stream_write(fluxes.address, fluxes.size),
        ])
        b.kernel(f"compute_flux_{it}", trace)
        update = pat.interleave(b.rng, [
            pat.stream_read(fluxes.address, fluxes.size),
            pat.stream_read_write(variables.address, variables.size),
        ])
        b.kernel(f"time_step_{it}", update)
    return b.build()


def fdtd2d(scale: float = 1.0) -> Workload:
    """2-D finite-difference time domain: near-perfect streaming over
    large read-only field coefficients (99.9% read-only accesses)."""
    b = WorkloadBuilder("fdtd2d", bandwidth_utilization=0.92,
                        description="finite-difference time domain (Polybench)")
    fict = b.alloc("fict", 192 * KB, space=MemorySpace.CONSTANT)
    ez = b.alloc("ez", _n(1.875 * MB * scale))
    hx = b.alloc("hx", _n(1.875 * MB * scale))
    hy = b.alloc("hy", _n(1.875 * MB * scale))
    out = b.alloc("out", 192 * KB, host_init=False)
    out_span = min(out.size, _span(24 * KB * scale))
    k1 = pat.interleave(b.rng, [
        pat.stream_read(ez.address, ez.size),
        pat.stream_read(hx.address, hx.size),
        pat.hotspot_read(b.rng, fict.address, fict.size, _n(400 * scale), 16 * KB),
        pat.stream_write(out.address, out_span),
    ])
    k2 = pat.interleave(b.rng, [
        pat.stream_read(hy.address, hy.size),
        pat.stream_read(ez.address, ez.size),
        pat.stream_write(out.address, out_span),
    ])
    k3 = pat.interleave(b.rng, [
        pat.stream_read(hx.address, hx.size),
        pat.stream_read(hy.address, hy.size),
    ])
    b.kernel("fdtd_step1", k1)
    b.kernel("fdtd_step2", k2)
    b.kernel("fdtd_step3", k3)
    return b.build()


def kmeans(scale: float = 1.0) -> Workload:
    """K-means clustering: read-only feature matrix bound as texture,
    heavy reuse of the small cluster centres."""
    b = WorkloadBuilder("kmeans", bandwidth_utilization=0.74,
                        description="k-means clustering (Rodinia)")
    features = b.alloc("features", _n(2.25 * MB * scale), space=MemorySpace.TEXTURE)
    centers = b.alloc("centers", 192 * KB, space=MemorySpace.CONSTANT)
    membership = b.alloc("membership", _n(0.375 * MB * scale), host_init=False)
    member_span = min(membership.size, _span(0.1 * MB * scale))
    for it in range(2):
        trace = pat.interleave(b.rng, [
            pat.stream_read(features.address, features.size),
            pat.hotspot_read(b.rng, centers.address, centers.size,
                             _n(2500 * scale), 16 * KB),
            pat.stream_write(membership.address, member_span),
        ])
        b.kernel(f"kmeans_iter{it}", trace)
    return b.build()


def histo(scale: float = 1.0) -> Workload:
    """Histogramming: streamed read-only input, random histogram
    updates."""
    b = WorkloadBuilder("histo", bandwidth_utilization=0.55,
                        description="histogram (Parboil)")
    image = b.alloc("image", _n(1.875 * MB * scale))
    lut = b.alloc("lut", 192 * KB, space=MemorySpace.CONSTANT)
    bins = b.alloc("bins", _n(1.125 * MB * scale), host_init=False)
    trace = pat.interleave(b.rng, [
        pat.stream_read(image.address, image.size),
        pat.hotspot_read(b.rng, lut.address, lut.size, _n(1000 * scale), 8 * KB),
        pat.random_write(b.rng, bins.address, bins.size, _n(9000 * scale)),
        pat.random_read(b.rng, bins.address, bins.size, _n(4000 * scale)),
    ])
    b.kernel("histo_main", trace)
    return b.build()


def lbm(scale: float = 1.0) -> Workload:
    """Lattice-Boltzmann: write-intensive ping-pong grids with
    scattered neighbour reads and a thrashing L2."""
    b = WorkloadBuilder("lbm", bandwidth_utilization=0.95,
                        description="lattice-Boltzmann method (Parboil)")
    src = b.alloc("src_grid", _n(2.25 * MB * scale))
    dst = b.alloc("dst_grid", _n(2.25 * MB * scale), host_init=False)
    flags = b.alloc("flags", 192 * KB, space=MemorySpace.CONSTANT)
    step0 = pat.interleave(b.rng, [
        pat.stream_read(src.address, src.size),
        pat.random_read(b.rng, src.address, src.size, _n(2500 * scale)),
        pat.stream_write(dst.address, dst.size),
        pat.random_write(b.rng, dst.address, dst.size, _n(1500 * scale)),
        pat.hotspot_read(b.rng, flags.address, flags.size, _n(500 * scale), 16 * KB),
    ])
    step1 = pat.interleave(b.rng, [
        pat.stream_read(dst.address, dst.size),
        pat.random_read(b.rng, dst.address, dst.size, _n(2500 * scale)),
        pat.stream_write(src.address, src.size),
        pat.random_write(b.rng, src.address, src.size, _n(1500 * scale)),
    ])
    b.kernel("lbm_step0", step0)
    b.kernel("lbm_step1", step1)
    return b.build()


def mri_gridding(scale: float = 1.0) -> Workload:
    """MRI gridding: streamed samples scattered into a random-access
    grid — random and write intensive."""
    b = WorkloadBuilder("mri-gridding", bandwidth_utilization=0.40,
                        description="MRI gridding (Parboil)")
    samples = b.alloc("samples", _n(1.125 * MB * scale))
    traj = b.alloc("trajectory", 192 * KB, space=MemorySpace.CONSTANT)
    grid = b.alloc("grid", _n(3 * MB * scale), host_init=False)
    trace = pat.interleave(b.rng, [
        pat.stream_read(samples.address, samples.size),
        pat.hotspot_read(b.rng, traj.address, traj.size, _n(800 * scale), 16 * KB),
        pat.random_write(b.rng, grid.address, grid.size, _n(16000 * scale)),
        pat.random_read(b.rng, grid.address, grid.size, _n(9000 * scale)),
    ])
    b.kernel("gridding", trace)
    return b.build()


def sad(scale: float = 1.0) -> Workload:
    """Sum of absolute differences: texture-bound frames, scattered
    block matching with little reuse (very high L2 miss rate)."""
    b = WorkloadBuilder("sad", bandwidth_utilization=0.17,
                        description="sum of absolute differences (Parboil)")
    ref = b.alloc("ref_frame", _n(4.5 * MB * scale), space=MemorySpace.TEXTURE)
    cur = b.alloc("cur_frame", _n(1.125 * MB * scale))
    params = b.alloc("search_params", 192 * KB, space=MemorySpace.CONSTANT)
    result = b.alloc("sad_results", _n(0.75 * MB * scale), host_init=False)
    trace = pat.interleave(b.rng, [
        pat.gather_read(b.rng, ref.address, ref.size, _n(30000 * scale), locality=0.35),
        pat.stream_read(cur.address, cur.size),
        pat.hotspot_read(b.rng, params.address, params.size, _n(600 * scale), 8 * KB),
        pat.random_write(b.rng, result.address, result.size, _n(3000 * scale)),
    ])
    b.kernel("mb_sad_calc", trace)
    return b.build()


def stencil(scale: float = 1.0) -> Workload:
    """7-point stencil: shifted streaming reads with L2 reuse, streamed
    output."""
    b = WorkloadBuilder("stencil", bandwidth_utilization=0.30,
                        description="3-D stencil (Parboil)")
    a_in = b.alloc("input", _n(1.5 * MB * scale))
    coeff = b.alloc("coeff", 192 * KB, space=MemorySpace.CONSTANT)
    a_out = b.alloc("output", _n(1.5 * MB * scale), host_init=False)
    plane = 64 * KB
    trace = pat.interleave(b.rng, [
        pat.stream_read(a_in.address, a_in.size),
        pat.stream_read(a_in.address + plane, a_in.size - plane),
        pat.stream_read(a_in.address + 2 * plane, a_in.size - 2 * plane),
        pat.hotspot_read(b.rng, coeff.address, coeff.size, _n(600 * scale), 8 * KB),
        pat.stream_write(a_out.address, a_out.size),
    ])
    b.kernel("block2D_reg_tiling", trace)
    return b.build()


def srad(scale: float = 1.0) -> Workload:
    """Speckle-reducing anisotropic diffusion: two kernels per
    iteration; the image flips from read-only to read-write."""
    b = WorkloadBuilder("srad", bandwidth_utilization=0.21,
                        description="speckle-reducing anisotropic diffusion (Rodinia)")
    image = b.alloc("image", _n(1.125 * MB * scale))
    params = b.alloc("params", 192 * KB, space=MemorySpace.CONSTANT)
    dn = b.alloc("dN", _n(1.125 * MB * scale), host_init=False)
    for it in range(2):
        k1 = pat.interleave(b.rng, [
            pat.stream_read(image.address, image.size),
            pat.hotspot_read(b.rng, params.address, params.size, _n(500 * scale), 8 * KB),
            pat.stream_write(dn.address, dn.size),
        ])
        k2 = pat.interleave(b.rng, [
            pat.stream_read(dn.address, dn.size),
            pat.stream_read_write(image.address, image.size),
        ])
        b.kernel(f"srad_cuda_1_it{it}", k1)
        b.kernel(f"srad_cuda_2_it{it}", k2)
    return b.build()


def srad_v2(scale: float = 1.0) -> Workload:
    """The denser srad variant: same structure, bandwidth bound."""
    b = WorkloadBuilder("srad_v2", bandwidth_utilization=0.75,
                        description="srad v2 (Rodinia)")
    image = b.alloc("image", _n(1.5 * MB * scale))
    params = b.alloc("params", 192 * KB, space=MemorySpace.CONSTANT)
    c = b.alloc("c", _n(1.5 * MB * scale), host_init=False)
    for it in range(2):
        k1 = pat.interleave(b.rng, [
            pat.stream_read(image.address, image.size),
            pat.hotspot_read(b.rng, params.address, params.size, _n(400 * scale), 8 * KB),
            pat.stream_write(c.address, c.size),
        ])
        k2 = pat.interleave(b.rng, [
            pat.stream_read(c.address, c.size),
            pat.stream_read_write(image.address, image.size),
        ])
        b.kernel(f"srad2_k1_it{it}", k1)
        b.kernel(f"srad2_k2_it{it}", k2)
    return b.build()


def streamcluster(scale: float = 1.0) -> Workload:
    """Streaming clustering: repeated streaming passes over read-only
    points with hot cluster centres."""
    b = WorkloadBuilder("streamcluster", bandwidth_utilization=0.78,
                        description="online clustering (Rodinia)")
    points = b.alloc("points", _n(2.25 * MB * scale))
    weights = b.alloc("weights", 192 * KB, space=MemorySpace.CONSTANT)
    assign = b.alloc("assign", _n(0.375 * MB * scale), host_init=False)
    assign_span = min(assign.size, _span(0.1 * MB * scale))
    for it in range(2):
        trace = pat.interleave(b.rng, [
            pat.stream_read(points.address, points.size),
            pat.hotspot_read(b.rng, weights.address, weights.size,
                             _n(1500 * scale), 16 * KB),
            pat.stream_write(assign.address, assign_span),
        ])
        b.kernel(f"pgain_{it}", trace)
    return b.build()


#: name -> builder.
BENCHMARKS: Dict[str, Callable[[float], Workload]] = {
    "atax": atax,
    "backprop": backprop,
    "bfs": bfs,
    "b+tree": btree,
    "cfd": cfd,
    "fdtd2d": fdtd2d,
    "kmeans": kmeans,
    "mvt": mvt,
    "histo": histo,
    "lbm": lbm,
    "mri-gridding": mri_gridding,
    "sad": sad,
    "stencil": stencil,
    "srad": srad,
    "srad_v2": srad_v2,
    "streamcluster": streamcluster,
}


def build(name: str, scale: float = 1.0) -> Workload:
    """Build one benchmark by its Table VII name."""
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"known: {sorted(BENCHMARKS)}") from None
    return builder(scale)


def build_suite(scale: float = 1.0, names: List[str] = None) -> Dict[str, Workload]:
    """Build the whole suite (or a named subset)."""
    selected = names if names is not None else BENCHMARK_NAMES
    return {name: build(name, scale) for name in selected}
