"""The multi-tenant traffic model: N concurrent tenant streams merged
into one address stream.

This is the workload class the adaptive detectors are *not* stressed
by anywhere in the paper: many independent clients (think inference
requests from millions of users) time-sharing one GPU, each with its
own buffers, each flipping access patterns on its own schedule.  Under
contention the per-region security metadata of one tenant evicts
another's metadata-cache lines and detector state, which is exactly
where per-region scheme selection pays — or thrashes.

Model, in the spec's terms (``suite_format: 1`` with a ``tenants``
list and a ``multi_tenant`` block):

* **Tenancy** — every tenant owns a private slab of the address
  space: a host-initialised ``<tenant>/data`` buffer (its working set)
  and an uninitialised ``<tenant>/out`` buffer (its results).  Slabs
  are allocated by the standard :class:`WorkloadBuilder` allocator, so
  they are disjoint and 192 KB-aligned — no two tenants ever share a
  16 KB detector region or a 4 KB MAC chunk (isolation is by
  construction, contention is only through the shared caches).
* **Arrival** — tenants issue *bursts* of ``burst_accesses`` accesses
  on a logical slot timeline (one slot = one issue opportunity).
  ``arrival: "poisson"`` draws exponential inter-burst gaps at
  ``rate`` bursts/slot (open-loop, bursts may pile up);
  ``arrival: "closed_loop"`` issues the next burst ``think_slots``
  after the previous one finishes (self-throttling clients).
* **Phase churn** — at every epoch boundary each tenant re-rolls with
  probability ``phase_churn`` and switches to a different pattern from
  its ``patterns`` list (sequential -> zipfian, ...).  Epochs lower to
  kernels, so churn points are barriers — the detector-relearn case.
* **Interleaving** — every access is stamped with its burst's arrival
  time plus its in-burst offset; the global merge sorts by
  ``(timestamp, tenant index, per-tenant sequence)``.  All randomness
  derives from per-tenant ``random.Random`` instances seeded by
  CRC-32 of ``(suite seed, tenant name)``, so the merged stream is
  byte-identical across processes and ``PYTHONHASHSEED`` values.

Streaming patterns keep a per-tenant cursor across bursts (a burst
continues the sweep where the last one stopped), so streaming-detector
behaviour is preserved even though the tenant's stream arrives
shredded into bursts.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.workloads import patterns as pat
from repro.workloads.base import Buffer, Workload, WorkloadBuilder

ARRIVALS = ("poisson", "closed_loop")

#: Patterns a tenant may cycle through (burst-windowed variants of the
#: compose primitives; ``hotspot``/``gather`` ride on ``zipfian`` /
#: ``random`` here because bursts are short).
TENANT_PATTERNS = ("sequential", "snake", "stride", "random", "zipfian")

_MT_DEFAULTS: Dict[str, Any] = {
    "arrival": "poisson",
    "rate": 0.02,
    "think_slots": 64,
    "epochs": 3,
    "slots_per_epoch": 8192,
    "burst_accesses": 96,
    "phase_churn": 0.0,
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        from repro.workloads.compose import SpecError
        raise SpecError(message)


def validate_multi_tenant_spec(spec: Dict[str, Any]) -> None:
    """Validate the ``multi_tenant`` block and the ``tenants`` list
    (called from :func:`repro.workloads.compose.validate_spec`)."""
    from repro.workloads.compose import parse_size

    mt = dict(_MT_DEFAULTS)
    mt.update(spec.get("multi_tenant", {}))
    unknown = set(spec.get("multi_tenant", {})) - set(_MT_DEFAULTS)
    _require(not unknown,
             f"multi_tenant: unknown key(s) {sorted(unknown)}; "
             f"accepted: {sorted(_MT_DEFAULTS)}")
    _require(mt["arrival"] in ARRIVALS,
             f"multi_tenant: unknown arrival {mt['arrival']!r}; "
             f"choose from {ARRIVALS}")
    _require(mt["rate"] > 0, "multi_tenant: rate must be positive")
    _require(int(mt["epochs"]) >= 1, "multi_tenant: epochs must be >= 1")
    _require(int(mt["slots_per_epoch"]) >= 1,
             "multi_tenant: slots_per_epoch must be >= 1")
    _require(int(mt["burst_accesses"]) >= 1,
             "multi_tenant: burst_accesses must be >= 1")
    _require(0.0 <= float(mt["phase_churn"]) <= 1.0,
             "multi_tenant: phase_churn must be in [0, 1]")
    tenants = spec.get("tenants")
    _require(isinstance(tenants, list) and tenants,
             "multi-tenant spec needs a non-empty 'tenants' list")
    names = set()
    for tenant in tenants:
        _require(bool(tenant.get("name")), "every tenant needs a 'name'")
        _require(tenant["name"] not in names,
                 f"duplicate tenant name {tenant['name']!r}")
        names.add(tenant["name"])
        parse_size(tenant.get("footprint", 0))
        patterns = tenant.get("patterns", ["sequential"])
        _require(isinstance(patterns, list) and patterns,
                 f"tenant {tenant['name']!r}: 'patterns' must be a "
                 f"non-empty list")
        unknown_p = set(patterns) - set(TENANT_PATTERNS)
        _require(not unknown_p,
                 f"tenant {tenant['name']!r}: unknown pattern(s) "
                 f"{sorted(unknown_p)}; known: {list(TENANT_PATTERNS)}")
        wf = tenant.get("write_fraction", 0.1)
        _require(0.0 <= float(wf) < 1.0,
                 f"tenant {tenant['name']!r}: write_fraction must be "
                 f"in [0, 1)")


# ---------------------------------------------------------------------------
# Per-tenant burst generation
# ---------------------------------------------------------------------------

@dataclass
class _Tenant:
    """Execution state of one tenant stream during generation."""

    index: int
    name: str
    rng: random.Random
    data: Buffer
    out: Buffer
    patterns: List[str]
    write_fraction: float
    active: int = 0      # index into ``patterns``
    cursor: int = 0      # streaming byte offset into ``data``
    direction: int = 1   # snake sweep direction

    def churn(self, probability: float) -> bool:
        """Maybe switch the active pattern; returns True on a switch."""
        if len(self.patterns) < 2 or self.rng.random() >= probability:
            return False
        choices = [i for i in range(len(self.patterns)) if i != self.active]
        self.active = self.rng.choice(choices)
        return True

    def burst(self, count: int) -> List[pat.Access]:
        """``count`` accesses of the active pattern; streaming patterns
        continue from the cursor, so consecutive bursts form one sweep."""
        reads = max(1, count - int(count * self.write_fraction))
        writes = count - reads
        pattern = self.patterns[self.active]
        if pattern == "sequential":
            body = self._window(reads, snake=False)
        elif pattern == "snake":
            body = self._window(reads, snake=True)
        elif pattern == "stride":
            body = pat.strided_read(self.data.address, self.data.size,
                                    stride=4096, count=reads)
        elif pattern == "random":
            body = pat.random_read(self.rng, self.data.address,
                                   self.data.size, reads)
        else:  # zipfian
            body = pat.zipfian(self.rng, self.data.address, self.data.size,
                               reads)
        if writes:
            body = pat.interleave(self.rng, [
                body,
                pat.random_write(self.rng, self.out.address, self.out.size,
                                 writes),
            ])
        return body

    def _window(self, lines: int, snake: bool) -> List[pat.Access]:
        out: List[pat.Access] = []
        for _ in range(lines):
            out.append((self.data.address + self.cursor, False, pat.SECTORS))
            nxt = self.cursor + self.direction * pat.LINE
            if 0 <= nxt < self.data.size:
                self.cursor = nxt
            elif snake:
                self.direction = -self.direction
                self.cursor += self.direction * pat.LINE
                self.cursor = max(0, min(self.data.size - pat.LINE,
                                         self.cursor))
            else:
                self.cursor = 0
        return out


def _burst_times(tenant: _Tenant, mt: Dict[str, Any]) -> List[float]:
    """Arrival times (slots) of one tenant's bursts within one epoch."""
    horizon = float(mt["slots_per_epoch"])
    burst = int(mt["burst_accesses"])
    times: List[float] = []
    if mt["arrival"] == "poisson":
        t = tenant.rng.expovariate(float(mt["rate"]))
        while t < horizon:
            times.append(t)
            t += tenant.rng.expovariate(float(mt["rate"]))
    else:  # closed_loop: next burst starts think_slots after the last ends
        t = float(tenant.rng.randrange(int(mt["think_slots"]) + 1))
        while t < horizon:
            times.append(t)
            t += burst + float(mt["think_slots"])
    return times


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

def build_multi_tenant(spec: Dict[str, Any], scale: float = 1.0) -> Workload:
    """Lower a multi-tenant spec to a :class:`Workload`: one kernel per
    epoch, each the timestamp-sorted merge of every tenant's bursts."""
    from repro.workloads.compose import parse_size

    mt = dict(_MT_DEFAULTS)
    mt.update(spec.get("multi_tenant", {}))
    seed = spec.get("seed", 0) or zlib.crc32(spec["name"].encode())
    builder = WorkloadBuilder(
        spec["name"], spec["bandwidth_utilization"], seed=seed,
        description=spec.get("description", ""),
    )
    tenants: List[_Tenant] = []
    for index, decl in enumerate(spec["tenants"]):
        footprint = max(1, int(parse_size(decl.get("footprint", 1 << 20))
                               * scale))
        data = builder.alloc(f"{decl['name']}/data", footprint)
        out = builder.alloc(f"{decl['name']}/out",
                            max(1, footprint // 4), host_init=False)
        tenants.append(_Tenant(
            index=index, name=decl["name"],
            rng=random.Random(zlib.crc32(
                f"{seed}:{decl['name']}".encode())),
            data=data, out=out,
            patterns=list(decl.get("patterns", ["sequential"])),
            write_fraction=float(decl.get("write_fraction", 0.1)),
        ))

    burst_count = max(1, int(int(mt["burst_accesses"]) * scale))
    churn = float(mt["phase_churn"])
    for epoch in range(int(mt["epochs"])):
        if epoch > 0:
            for tenant in tenants:
                tenant.churn(churn)
        # (timestamp, tenant index, per-tenant sequence, access)
        timeline: List[Tuple[float, int, int, pat.Access]] = []
        for tenant in tenants:
            seq = 0
            for start in _burst_times(tenant, mt):
                for offset, access in enumerate(tenant.burst(burst_count)):
                    timeline.append((start + offset, tenant.index, seq,
                                     access))
                    seq += 1
        timeline.sort(key=lambda item: item[:3])
        builder.kernel(f"epoch{epoch}",
                       [access for _, _, _, access in timeline])
    return builder.build()


def describe_tenants(spec: Dict[str, Any], scale: float = 1.0) -> List[str]:
    """Per-tenant lines for ``repro workloads --describe``."""
    mt = dict(_MT_DEFAULTS)
    mt.update(spec.get("multi_tenant", {}))
    lines = [f"  multi-tenant: {len(spec['tenants'])} tenants, "
             f"{mt['arrival']} arrivals, {mt['epochs']} epochs x "
             f"{mt['slots_per_epoch']} slots, "
             f"burst {mt['burst_accesses']}, "
             f"phase churn {float(mt['phase_churn']):.0%}"]
    workload = build_multi_tenant(spec, scale)
    slabs = {b.name: b for b in workload.buffers}
    for decl in spec["tenants"]:
        data = slabs[f"{decl['name']}/data"]
        out = slabs[f"{decl['name']}/out"]
        lines.append(
            f"  tenant {decl['name']:12s} slab "
            f"[{data.address:#x}, {out.end:#x}) "
            f"{(data.size + out.size) >> 10:6,} KB  "
            f"patterns {'/'.join(decl.get('patterns', ['sequential']))}  "
            f"writes {float(decl.get('write_fraction', 0.1)):.0%}")
    for kernel in workload.kernels:
        writes = sum(1 for _, w, _ in kernel.accesses if w)
        lines.append(f"  {kernel.name:20s} {len(kernel.accesses):8,} "
                     f"accesses {writes / max(1, len(kernel.accesses)):5.1%} "
                     f"writes")
    return lines


# ---------------------------------------------------------------------------
# Spec templates (what the campaign experiments and CI sweep)
# ---------------------------------------------------------------------------

def contention_spec(n_tenants: int = 4, *, seed: int = 1701,
                    phase_churn: float = 0.0, arrival: str = "poisson",
                    footprint: str = "1.5MB",
                    bandwidth_utilization: float = 0.6) -> Dict[str, Any]:
    """A symmetric N-tenant contention suite: every tenant streams and
    zipf-reads its own slab, so the only interaction is through the
    shared metadata caches and detectors.  Tenant count is the knob."""
    from repro.workloads.compose import SUITE_FORMAT

    patterns = [["sequential", "zipfian"], ["zipfian", "random"],
                ["snake", "sequential"], ["stride", "zipfian"]]
    name = f"mt{n_tenants}"
    if arrival != "poisson":
        name += f"_{arrival}"
    return {
        "suite_format": SUITE_FORMAT,
        "name": name,
        "description": f"{n_tenants}-tenant metadata-contention suite",
        "bandwidth_utilization": bandwidth_utilization,
        "seed": seed,
        "multi_tenant": {
            "arrival": arrival,
            "rate": 0.02,
            "epochs": 3,
            "slots_per_epoch": 8192,
            "burst_accesses": 96,
            "phase_churn": phase_churn,
        },
        "tenants": [
            {"name": f"t{i}", "footprint": footprint,
             "patterns": patterns[i % len(patterns)],
             "write_fraction": 0.08 + 0.04 * (i % 3)}
            for i in range(n_tenants)
        ],
    }


def phase_churn_spec(churn: float, n_tenants: int = 4, *,
                     seed: int = 2241) -> Dict[str, Any]:
    """The churn sweep's suite: a fixed 4-tenant mix whose tenants
    re-roll their pattern each epoch with probability ``churn`` — at 0
    the detectors converge once, at 1 every epoch is a cold start."""
    spec = contention_spec(n_tenants, seed=seed, phase_churn=churn)
    spec["name"] = f"mt{n_tenants}_churn{int(round(churn * 100))}"
    spec["description"] = (f"{n_tenants}-tenant suite, "
                           f"{churn:.0%} per-epoch phase churn")
    spec["multi_tenant"]["epochs"] = 4
    return spec


#: name -> zero-argument spec factory (``repro workloads`` lists these).
TEMPLATES: Dict[str, Any] = {
    "mt2": lambda: contention_spec(2),
    "mt4": lambda: contention_spec(4),
    "mt8": lambda: contention_spec(8),
    "mt4_closed_loop": lambda: contention_spec(4, arrival="closed_loop"),
    "mt4_churn50": lambda: phase_churn_spec(0.5),
    "mt4_churn100": lambda: phase_churn_spec(1.0),
}
