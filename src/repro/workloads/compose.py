"""The composable workload language: declarative suites over pattern
primitives.

A *suite spec* is a plain JSON/TOML-serialisable dict (``suite_format:
1``) naming buffers, phases and pattern steps; :func:`build_workload`
lowers it onto the existing :class:`repro.workloads.base.Workload` /
:class:`~repro.workloads.base.Kernel` model, so every scheme, policy
stack and figure driver runs composed suites unchanged.  The
:class:`Composer` builder API produces the same spec programmatically
— ``Composer(...).build()`` and ``build_workload(composer.to_spec())``
are definitionally identical (the builder lowers *through* its spec).

Semantics:

* **Phases** are the composition unit: each phase lowers to one kernel
  launch, and a kernel boundary is a *barrier* — the simulator drains
  all in-flight requests before the next phase issues.  A phase with
  ``barrier: false`` is a pure *phase marker*: its composed accesses
  are appended to the previous kernel so the stream changes character
  mid-kernel with no drain (the detector-thrash case).
* **Steps** inside a phase model concurrently resident warps: with
  ``compose: "interleave"`` (default) they merge probabilistically by
  remaining length, ``"chunked"`` merges in 16-access bursts, and
  ``"concat"`` runs them back to back.
* **Timestamps** are logical issue slots.  Within one phase the
  composed order *is* the timestamp order; the multi-tenant model
  (:mod:`repro.workloads.multitenant`) makes them explicit, stamping
  every access with an arrival-process time before the global merge.
* **Determinism**: all randomness flows from one ``random.Random``
  seeded by the spec's ``seed`` (default: CRC-32 of the suite name,
  the :class:`~repro.workloads.base.WorkloadBuilder` idiom), so a spec
  builds the same byte-identical trace in every process regardless of
  ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.types import MemorySpace
from repro.workloads import patterns as pat
from repro.workloads.base import Buffer, Workload, WorkloadBuilder

#: Version of the suite-spec schema (validated on load).
SUITE_FORMAT = 1

KB = 1 << 10
MB = 1 << 20

_SIZE_UNITS = {"": 1, "B": 1, "KB": KB, "MB": MB, "GB": 1 << 30}


class SpecError(ValueError):
    """A suite spec failed validation (bad format, unknown name, ...)."""


def parse_size(value: Union[int, float, str]) -> int:
    """``"1.5MB"`` / ``"192KB"`` / ``4096`` -> bytes."""
    if isinstance(value, (int, float)):
        return int(value)
    text = value.strip().upper().replace(" ", "")
    for unit in ("GB", "MB", "KB", "B"):
        if text.endswith(unit):
            try:
                return int(float(text[: -len(unit)]) * _SIZE_UNITS[unit])
            except ValueError:
                break
    try:
        return int(float(text))
    except ValueError:
        raise SpecError(f"unparseable size {value!r} "
                        f"(use bytes or e.g. '1.5MB', '192KB')") from None


# ---------------------------------------------------------------------------
# The primitive registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Primitive:
    """One registered access-pattern primitive.

    ``generate(rng, base, size, **params)`` returns the access list;
    ``params`` documents the accepted step keys and their defaults,
    and ``scaled`` names the params multiplied by the build scale.
    """

    name: str
    summary: str
    params: Dict[str, Any]
    generate: Callable[..., List[pat.Access]]
    scaled: Tuple[str, ...] = ("count",)


def _g_sequential(rng: random.Random, base: int, size: int, *,
                  passes: int = 1, write: bool = False,
                  stride: Optional[int] = None) -> List[pat.Access]:
    if write:
        if stride is not None:
            raise SpecError("sequential: stride only applies to reads")
        return pat.stream_write(base, size, passes)
    return pat.stream_read(base, size, passes, stride or pat.LINE)


def _g_random(rng: random.Random, base: int, size: int, *,
              count: int = 1024, write: bool = False) -> List[pat.Access]:
    if write:
        return pat.random_write(rng, base, size, count)
    return pat.random_read(rng, base, size, count)


def _g_stride(rng: random.Random, base: int, size: int, *,
              stride: int = 4 * KB, count: int = 1024,
              write: bool = False) -> List[pat.Access]:
    out = pat.strided_read(base, size, stride, count)
    if write:
        out = [(addr, True, n) for addr, _, n in out]
    return out


def _g_snake(rng: random.Random, base: int, size: int, *,
             passes: int = 2, write: bool = False,
             stride: Optional[int] = None) -> List[pat.Access]:
    return pat.snake(base, size, passes, write, stride or pat.LINE)


def _g_zipfian(rng: random.Random, base: int, size: int, *,
               count: int = 1024, alpha: float = 0.9,
               write: bool = False) -> List[pat.Access]:
    return pat.zipfian(rng, base, size, count, alpha, write)


def _g_hotspot(rng: random.Random, base: int, size: int, *,
               count: int = 1024, hot_bytes: int = 16 * KB) -> List[pat.Access]:
    return pat.hotspot_read(rng, base, size, count, hot_bytes)


def _g_gather(rng: random.Random, base: int, size: int, *,
              count: int = 1024, locality: float = 0.0) -> List[pat.Access]:
    return pat.gather_read(rng, base, size, count, locality)


#: name -> primitive; what ``repro workloads`` lists and step
#: ``pattern`` keys resolve against.
PRIMITIVES: Dict[str, Primitive] = {
    p.name: p for p in [
        Primitive("sequential",
                  "line-grain streaming sweep (reads or writes)",
                  {"passes": 1, "write": False, "stride": None},
                  _g_sequential, scaled=()),
        Primitive("random",
                  "uniform random sector-grain accesses",
                  {"count": 1024, "write": False}, _g_random),
        Primitive("stride",
                  "fixed-stride sector-grain walk, wrapping at the end",
                  {"stride": 4 * KB, "count": 1024, "write": False},
                  _g_stride),
        Primitive("snake",
                  "boustrophedon sweep: alternate forward/backward passes",
                  {"passes": 2, "write": False, "stride": None},
                  _g_snake, scaled=()),
        Primitive("zipfian",
                  "power-law sector accesses (hot head, random tail)",
                  {"count": 1024, "alpha": 0.9, "write": False}, _g_zipfian),
        Primitive("hotspot",
                  "uniform random reads confined to a hot subset",
                  {"count": 1024, "hot_bytes": 16 * KB}, _g_hotspot),
        Primitive("gather",
                  "pointer-chase reads with optional spatial locality",
                  {"count": 1024, "locality": 0.0}, _g_gather),
    ]
}

COMPOSE_MODES = ("interleave", "chunked", "concat")


# ---------------------------------------------------------------------------
# Spec validation and lowering
# ---------------------------------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def validate_spec(spec: Dict[str, Any]) -> None:
    """Structural validation with actionable errors (no generation)."""
    _require(isinstance(spec, dict), "suite spec must be a JSON object")
    version = spec.get("suite_format")
    _require(version == SUITE_FORMAT,
             f"unsupported suite_format {version!r} "
             f"(this build reads suite_format {SUITE_FORMAT})")
    _require(bool(spec.get("name")), "suite spec needs a 'name'")
    util = spec.get("bandwidth_utilization")
    _require(isinstance(util, (int, float)) and 0.0 < util <= 1.0,
             "'bandwidth_utilization' must be in (0, 1]")
    if "tenants" in spec:
        from repro.workloads.multitenant import validate_multi_tenant_spec
        validate_multi_tenant_spec(spec)
        return
    buffers = spec.get("buffers")
    _require(isinstance(buffers, list) and buffers,
             "suite spec needs a non-empty 'buffers' list")
    names = set()
    for buf in buffers:
        _require(bool(buf.get("name")), "every buffer needs a 'name'")
        _require(buf["name"] not in names,
                 f"duplicate buffer name {buf['name']!r}")
        names.add(buf["name"])
        parse_size(buf.get("size", 0))
        space = buf.get("space", "global")
        _require(space in [s.value for s in MemorySpace],
                 f"buffer {buf['name']!r}: unknown space {space!r}")
    phases = spec.get("phases")
    _require(isinstance(phases, list) and phases,
             "suite spec needs a non-empty 'phases' list")
    _require(phases[0].get("barrier", True) is not False,
             "the first phase cannot have barrier=false "
             "(there is no previous kernel to extend)")
    for phase in phases:
        _require(bool(phase.get("name")), "every phase needs a 'name'")
        mode = phase.get("compose", "interleave")
        _require(mode in COMPOSE_MODES,
                 f"phase {phase['name']!r}: unknown compose mode {mode!r}; "
                 f"choose from {COMPOSE_MODES}")
        steps = phase.get("steps")
        _require(isinstance(steps, list) and steps,
                 f"phase {phase['name']!r} needs a non-empty 'steps' list")
        for ref in list(phase.get("copies", ())) + \
                list(phase.get("readonly_resets", ())):
            _require(ref in names,
                     f"phase {phase['name']!r}: unknown buffer {ref!r}")
        for step in steps:
            pattern = step.get("pattern")
            _require(pattern in PRIMITIVES,
                     f"phase {phase['name']!r}: unknown pattern "
                     f"{pattern!r}; known: {sorted(PRIMITIVES)}")
            _require(step.get("buffer") in names,
                     f"phase {phase['name']!r}: step targets unknown "
                     f"buffer {step.get('buffer')!r}")
            extra = set(step) - {"pattern", "buffer"} - \
                set(PRIMITIVES[pattern].params)
            _require(not extra,
                     f"phase {phase['name']!r}: pattern {pattern!r} does "
                     f"not accept {sorted(extra)}; accepted: "
                     f"{sorted(PRIMITIVES[pattern].params)}")


def _step_accesses(rng: random.Random, step: Dict[str, Any], buf: Buffer,
                   scale: float) -> List[pat.Access]:
    primitive = PRIMITIVES[step["pattern"]]
    params = dict(primitive.params)
    params.update({k: v for k, v in step.items()
                   if k not in ("pattern", "buffer")})
    for key in primitive.scaled:
        if key in params and params[key] is not None:
            params[key] = max(1, int(params[key] * scale))
    if "hot_bytes" in params:
        params["hot_bytes"] = min(parse_size(params["hot_bytes"]), buf.size)
    if "stride" in params and params["stride"] is not None:
        params["stride"] = parse_size(params["stride"])
    return primitive.generate(rng, buf.address, buf.size, **params)


def _compose(rng: random.Random, mode: str,
             sources: Sequence[List[pat.Access]]) -> List[pat.Access]:
    if mode == "concat":
        return [access for source in sources for access in source]
    if mode == "chunked":
        return pat.chunked_interleave(rng, sources)
    return pat.interleave(rng, sources)


def build_workload(spec: Dict[str, Any], scale: float = 1.0) -> Workload:
    """Lower a suite spec onto the :class:`Workload`/:class:`Kernel`
    model.  ``scale`` multiplies buffer sizes and per-step access
    counts together (the suite-wide convention), leaving the
    access-to-footprint ratio invariant.
    """
    validate_spec(spec)
    if "tenants" in spec:
        from repro.workloads.multitenant import build_multi_tenant
        return build_multi_tenant(spec, scale)

    builder = WorkloadBuilder(
        spec["name"], spec["bandwidth_utilization"],
        seed=spec.get("seed", 0), description=spec.get("description", ""),
    )
    buffers: Dict[str, Buffer] = {}
    for buf in spec["buffers"]:
        size = parse_size(buf["size"])
        if not buf.get("fixed_size", False):
            size = max(1, int(size * scale))
        buffers[buf["name"]] = builder.alloc(
            buf["name"], size,
            space=MemorySpace(buf.get("space", "global")),
            host_init=buf.get("host_init", True),
        )
    for phase in spec["phases"]:
        sources = [
            _step_accesses(builder.rng, step, buffers[step["buffer"]], scale)
            for step in phase["steps"]
        ]
        accesses = _compose(builder.rng, phase.get("compose", "interleave"),
                            sources)
        for _ in range(int(phase.get("repeat", 1)) - 1):
            more = [
                _step_accesses(builder.rng, step, buffers[step["buffer"]],
                               scale)
                for step in phase["steps"]
            ]
            accesses += _compose(
                builder.rng, phase.get("compose", "interleave"), more)
        if phase.get("barrier", True) is False:
            # Phase marker, not a barrier: extend the previous kernel.
            builder._kernels[-1].accesses.extend(accesses)
            continue
        builder.kernel(
            phase["name"], accesses,
            copies=[buffers[b] for b in phase.get("copies", ())],
            readonly_resets=[buffers[b]
                             for b in phase.get("readonly_resets", ())],
        )
    workload = builder.build()
    if spec.get("instructions_per_access"):
        workload.instructions_per_access = int(
            spec["instructions_per_access"])
    return workload


def load_spec(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a suite spec from a ``.json`` or ``.toml`` file.

    TOML needs :mod:`tomllib` (Python 3.11+); on older interpreters a
    clear error suggests the JSON form instead of crashing on import.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:
            raise SpecError(
                f"{path}: TOML specs need Python 3.11+ (tomllib); "
                f"convert to JSON or upgrade") from None
        try:
            spec = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    validate_spec(spec)
    return spec


# ---------------------------------------------------------------------------
# The builder API (lowers through its own spec)
# ---------------------------------------------------------------------------

@dataclass
class _PhaseDecl:
    name: str
    steps: List[Dict[str, Any]]
    compose: str = "interleave"
    barrier: bool = True
    repeat: int = 1
    copies: List[str] = field(default_factory=list)
    readonly_resets: List[str] = field(default_factory=list)


def step(pattern: str, buffer: str, **params: Any) -> Dict[str, Any]:
    """One pattern step for :meth:`Composer.phase` (validated at
    build time against the primitive's accepted params)."""
    return {"pattern": pattern, "buffer": buffer, **params}


class Composer:
    """Programmatic suite construction; ``to_spec()`` emits the exact
    JSON form, and ``build()`` lowers through it, so the two authoring
    routes can never drift apart."""

    def __init__(self, name: str, bandwidth_utilization: float,
                 seed: int = 0, description: str = "") -> None:
        self.name = name
        self.bandwidth_utilization = bandwidth_utilization
        self.seed = seed
        self.description = description
        self._buffers: List[Dict[str, Any]] = []
        self._phases: List[_PhaseDecl] = []

    def buffer(self, name: str, size: Union[int, str],
               space: str = "global", host_init: bool = True,
               fixed_size: bool = False) -> "Composer":
        decl: Dict[str, Any] = {"name": name, "size": size}
        if space != "global":
            decl["space"] = space
        if not host_init:
            decl["host_init"] = False
        if fixed_size:
            decl["fixed_size"] = True
        self._buffers.append(decl)
        return self

    def phase(self, name: str, *steps: Dict[str, Any],
              compose: str = "interleave", barrier: bool = True,
              repeat: int = 1, copies: Sequence[str] = (),
              readonly_resets: Sequence[str] = ()) -> "Composer":
        self._phases.append(_PhaseDecl(
            name=name, steps=list(steps), compose=compose, barrier=barrier,
            repeat=repeat, copies=list(copies),
            readonly_resets=list(readonly_resets),
        ))
        return self

    def to_spec(self) -> Dict[str, Any]:
        phases = []
        for decl in self._phases:
            entry: Dict[str, Any] = {"name": decl.name, "steps": decl.steps}
            if decl.compose != "interleave":
                entry["compose"] = decl.compose
            if not decl.barrier:
                entry["barrier"] = False
            if decl.repeat != 1:
                entry["repeat"] = decl.repeat
            if decl.copies:
                entry["copies"] = decl.copies
            if decl.readonly_resets:
                entry["readonly_resets"] = decl.readonly_resets
            phases.append(entry)
        spec: Dict[str, Any] = {
            "suite_format": SUITE_FORMAT,
            "name": self.name,
            "bandwidth_utilization": self.bandwidth_utilization,
            "buffers": list(self._buffers),
            "phases": phases,
        }
        if self.seed:
            spec["seed"] = self.seed
        if self.description:
            spec["description"] = self.description
        return spec

    def build(self, scale: float = 1.0) -> Workload:
        return build_workload(self.to_spec(), scale)


# ---------------------------------------------------------------------------
# Introspection (repro workloads --describe)
# ---------------------------------------------------------------------------

def describe(spec: Dict[str, Any], scale: float = 1.0) -> str:
    """The composed phase plan as human-readable text: buffers, then
    per-phase step lists with materialised access counts and the write
    fraction — what the spec *means* before a scheme ever runs it."""
    validate_spec(spec)
    workload = build_workload(spec, scale)
    lines = [f"suite {spec['name']!r} @ scale {scale:g}: "
             f"{len(workload.buffers)} buffers, "
             f"{len(workload.kernels)} kernels, "
             f"{workload.total_accesses:,} accesses, "
             f"util target {workload.bandwidth_utilization:.0%}"]
    if "tenants" in spec:
        from repro.workloads.multitenant import describe_tenants
        lines += describe_tenants(spec, scale)
    else:
        for buf in workload.buffers:
            lines.append(f"  buffer {buf.name:16s} {buf.size >> 10:8,} KB "
                         f"{buf.space.value:8s} "
                         f"{'host-init' if buf.host_init else 'uninit'}")
        specs_by_name = {p["name"]: p for p in spec["phases"]}
        for kernel in workload.kernels:
            writes = sum(1 for _, w, _ in kernel.accesses if w)
            phase = specs_by_name.get(kernel.name, {})
            steps = ", ".join(
                f"{s['pattern']}({s['buffer']})" for s in
                phase.get("steps", ()))
            lines.append(
                f"  phase {kernel.name:20s} {len(kernel.accesses):8,} "
                f"accesses {writes / max(1, len(kernel.accesses)):5.1%} "
                f"writes  [{phase.get('compose', 'interleave')}] {steps}")
    return "\n".join(lines)
