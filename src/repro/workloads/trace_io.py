"""Trace serialisation: save and reload workloads as JSON.

Lets users snapshot a generated (or hand-built) workload, inspect or
edit it, and replay it byte-identically — and lets external tools feed
their own address traces into the simulator without touching the
generator API.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.common.types import MemorySpace
from repro.workloads.base import Buffer, HostEvent, Kernel, Workload

FORMAT_VERSION = 1


def workload_to_dict(workload: Workload) -> dict:
    """A JSON-serialisable snapshot of a workload."""
    return {
        "format_version": FORMAT_VERSION,
        "name": workload.name,
        "description": workload.description,
        "bandwidth_utilization": workload.bandwidth_utilization,
        "instructions_per_access": workload.instructions_per_access,
        "buffers": [
            {
                "name": b.name,
                "address": b.address,
                "size": b.size,
                "space": b.space.value,
                "host_init": b.host_init,
            }
            for b in workload.buffers
        ],
        "kernels": [
            {
                "name": k.name,
                "host_events": [
                    {"kind": e.kind, "start": e.start, "size": e.size}
                    for e in k.host_events
                ],
                # Compact parallel arrays keep large traces small.
                "addresses": [a for a, _, _ in k.accesses],
                "writes": [1 if w else 0 for _, w, _ in k.accesses],
                "sectors": [n for _, _, n in k.accesses],
            }
            for k in workload.kernels
        ],
    }


def workload_from_dict(data: dict) -> Workload:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    buffers = [
        Buffer(
            name=b["name"],
            address=b["address"],
            size=b["size"],
            space=MemorySpace(b["space"]),
            host_init=b["host_init"],
        )
        for b in data["buffers"]
    ]
    kernels = []
    for k in data["kernels"]:
        n = len(k["addresses"])
        if len(k["writes"]) != n or len(k["sectors"]) != n:
            raise ValueError(f"kernel {k['name']!r}: ragged trace arrays")
        accesses = list(zip(k["addresses"],
                            (bool(w) for w in k["writes"]),
                            k["sectors"]))
        events = [HostEvent(e["kind"], e["start"], e["size"])
                  for e in k["host_events"]]
        kernels.append(Kernel(k["name"], accesses, events))
    workload = Workload(
        name=data["name"],
        kernels=kernels,
        buffers=buffers,
        bandwidth_utilization=data["bandwidth_utilization"],
        description=data.get("description", ""),
        instructions_per_access=data.get("instructions_per_access", 12),
    )
    workload.validate()
    return workload


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(workload_to_dict(workload)))


def load_workload(path: Union[str, Path]) -> Workload:
    return workload_from_dict(json.loads(Path(path).read_text()))
