"""Trace serialisation: save and reload workloads, in two formats.

Lets users snapshot a generated (or hand-built) workload, inspect or
edit it, and replay it byte-identically — and lets external tools feed
their own address traces into the simulator without touching the
generator API.

Two on-disk formats:

* **v1** (``format_version: 1``) — one JSON document with compact
  parallel arrays per kernel.  Human-editable; the whole trace must
  fit in memory twice over (text + objects).
* **v2** (``format_version: 2``) — gzip-compressed JSONL, streamed:
  a header line (buffers + workload metadata), then per kernel a
  ``kernel`` line followed by chunked ``accesses`` lines, then an
  ``end`` line carrying totals so truncation is detectable.  Written
  and read incrementally — :func:`iter_kernels` replays traces larger
  than memory one kernel at a time.

:func:`load_workload` sniffs the format (gzip magic bytes), so readers
never need to know which version wrote a file.  Kernels carry an
explicit ``seq`` ordinal in both formats and are re-sorted by it on
load: launch order is simulation-significant (detector state persists
across kernels), so replay stays byte-identical even if an external
tool re-orders the kernel records.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.common.types import MemorySpace
from repro.workloads.base import Buffer, HostEvent, Kernel, Workload

#: The version this build writes by default (the streaming format).
FORMAT_VERSION = 2
#: The legacy single-document JSON format (still written on request
#: and always readable).
V1_FORMAT_VERSION = 1
SUPPORTED_VERSIONS = (V1_FORMAT_VERSION, FORMAT_VERSION)

#: Accesses per ``accesses`` line in the v2 stream (bounds the memory
#: high-water mark of both writer and reader).
CHUNK_ACCESSES = 8192

_GZIP_MAGIC = b"\x1f\x8b"


class TraceFormatError(ValueError):
    """A trace file failed format validation (bad version, truncated
    stream, ragged arrays, ...).  Subclasses :class:`ValueError` so
    pre-v2 callers keep working."""


def _check_version(version: Any, where: str) -> int:
    if version is None:
        raise TraceFormatError(
            f"{where}: missing format_version "
            f"(not a repro trace file? this build reads versions "
            f"{list(SUPPORTED_VERSIONS)})")
    if version not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"{where}: unsupported trace format_version {version!r}; "
            f"this build reads {list(SUPPORTED_VERSIONS)} "
            f"(written by a different repro version?)")
    return int(version)


# ---------------------------------------------------------------------------
# Shared pieces
# ---------------------------------------------------------------------------

def _buffer_to_dict(b: Buffer) -> dict:
    return {"name": b.name, "address": b.address, "size": b.size,
            "space": b.space.value, "host_init": b.host_init}


def _buffer_from_dict(b: dict) -> Buffer:
    return Buffer(name=b["name"], address=b["address"], size=b["size"],
                  space=MemorySpace(b["space"]), host_init=b["host_init"])


def _events_to_dicts(events: List[HostEvent]) -> List[dict]:
    return [{"kind": e.kind, "start": e.start, "size": e.size}
            for e in events]


def _events_from_dicts(events: List[dict]) -> List[HostEvent]:
    return [HostEvent(e["kind"], e["start"], e["size"]) for e in events]


def _accesses_from_arrays(name: str, addresses: List[int],
                          writes: List[int], sectors: List[int]) -> list:
    n = len(addresses)
    if len(writes) != n or len(sectors) != n:
        raise TraceFormatError(f"kernel {name!r}: ragged trace arrays")
    return list(zip(addresses, (bool(w) for w in writes), sectors))


def _workload_from_parts(meta: dict, buffers: List[Buffer],
                         kernels: List[Kernel]) -> Workload:
    workload = Workload(
        name=meta["name"],
        kernels=kernels,
        buffers=buffers,
        bandwidth_utilization=meta["bandwidth_utilization"],
        description=meta.get("description", ""),
        instructions_per_access=meta.get("instructions_per_access", 12),
    )
    workload.validate()
    return workload


# ---------------------------------------------------------------------------
# v1: one JSON document
# ---------------------------------------------------------------------------

def workload_to_dict(workload: Workload) -> dict:
    """A JSON-serialisable snapshot of a workload (v1 format)."""
    return {
        "format_version": V1_FORMAT_VERSION,
        "name": workload.name,
        "description": workload.description,
        "bandwidth_utilization": workload.bandwidth_utilization,
        "instructions_per_access": workload.instructions_per_access,
        "buffers": [_buffer_to_dict(b) for b in workload.buffers],
        "kernels": [
            {
                "seq": seq,
                "name": k.name,
                "host_events": _events_to_dicts(k.host_events),
                # Compact parallel arrays keep large traces small.
                "addresses": [a for a, _, _ in k.accesses],
                "writes": [1 if w else 0 for _, w, _ in k.accesses],
                "sectors": [n for _, _, n in k.accesses],
            }
            for seq, k in enumerate(workload.kernels)
        ],
    }


def workload_from_dict(data: dict) -> Workload:
    _check_version(data.get("format_version"), "trace document")
    buffers = [_buffer_from_dict(b) for b in data["buffers"]]
    # Launch order is simulation-significant: honour the explicit seq
    # ordinal when present (pre-seq v1 files fall back to list order).
    records = sorted(
        enumerate(data["kernels"]),
        key=lambda pair: (pair[1].get("seq", pair[0]), pair[0]),
    )
    kernels = []
    for _, k in records:
        kernels.append(Kernel(
            k["name"],
            _accesses_from_arrays(k["name"], k["addresses"], k["writes"],
                                  k["sectors"]),
            _events_from_dicts(k["host_events"]),
        ))
    return _workload_from_parts(data, buffers, kernels)


# ---------------------------------------------------------------------------
# v2: streamed gzip JSONL
# ---------------------------------------------------------------------------

def _write_stream(workload: Workload, stream: IO[str]) -> None:
    def emit(obj: dict) -> None:
        stream.write(json.dumps(obj, separators=(",", ":")) + "\n")

    emit({
        "format_version": FORMAT_VERSION,
        "type": "header",
        "name": workload.name,
        "description": workload.description,
        "bandwidth_utilization": workload.bandwidth_utilization,
        "instructions_per_access": workload.instructions_per_access,
        "buffers": [_buffer_to_dict(b) for b in workload.buffers],
    })
    total = 0
    for seq, kernel in enumerate(workload.kernels):
        emit({"type": "kernel", "seq": seq, "name": kernel.name,
              "accesses": len(kernel.accesses),
              "host_events": _events_to_dicts(kernel.host_events)})
        for lo in range(0, len(kernel.accesses), CHUNK_ACCESSES):
            chunk = kernel.accesses[lo:lo + CHUNK_ACCESSES]
            emit({"type": "accesses", "seq": seq,
                  "addresses": [a for a, _, _ in chunk],
                  "writes": [1 if w else 0 for _, w, _ in chunk],
                  "sectors": [n for _, _, n in chunk]})
        total += len(kernel.accesses)
    emit({"type": "end", "kernels": len(workload.kernels),
          "total_accesses": total})


def _open_stream(path: Path) -> Tuple[IO[str], bool]:
    """Open ``path`` for text reading; returns (handle, is_gzip)."""
    raw = open(path, "rb")
    magic = raw.read(2)
    raw.seek(0)
    if magic == _GZIP_MAGIC:
        return io.TextIOWrapper(gzip.GzipFile(fileobj=raw),
                                encoding="utf-8"), True
    return io.TextIOWrapper(raw, encoding="utf-8"), False


def _gzip_lines(stream: IO[str], path: Path) -> Iterator[str]:
    """Iterate a gzip text stream, turning a premature end of the
    compressed data (EOFError from the gzip layer) into a
    :class:`TraceFormatError` instead of a raw traceback."""
    try:
        yield from stream
    except EOFError as exc:
        raise TraceFormatError(
            f"{path}: truncated gzip stream: {exc}") from exc


def read_header(path: Union[str, Path]) -> dict:
    """The v2 header line (workload metadata + buffers) without
    reading the access stream; raises on v1 files."""
    path = Path(path)
    stream, is_gzip = _open_stream(path)
    with stream:
        if not is_gzip:
            raise TraceFormatError(
                f"{path}: not a v2 stream (no gzip magic); v1 documents "
                f"have no separable header — use load_workload")
        try:
            line = stream.readline()
        except EOFError as exc:
            raise TraceFormatError(
                f"{path}: truncated gzip stream: {exc}") from exc
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: bad header line: {exc}") from exc
        _check_version(header.get("format_version"), str(path))
        if header.get("type") != "header":
            raise TraceFormatError(f"{path}: first record is "
                                   f"{header.get('type')!r}, not 'header'")
        return header


def iter_kernels(path: Union[str, Path]) -> Iterator[Kernel]:
    """Stream a v2 trace one kernel at a time (constant memory in the
    trace length); validates chunk continuity and the end-line totals,
    so a truncated file raises instead of replaying short."""
    path = Path(path)
    stream, is_gzip = _open_stream(path)
    if not is_gzip:
        # v1 fallback: parse the document, yield in (sorted) order.
        with stream:
            data = json.loads(stream.read())
        for kernel in workload_from_dict(data).kernels:
            yield kernel
        return
    with stream:
        read_header(path)  # cheap re-validation of line 1
        stream.readline()  # skip the header we just validated
        current: Optional[dict] = None
        accesses: list = []
        kernels_seen = 0
        total = 0
        finished = False
        expected_seq = 0

        def flush() -> Kernel:
            declared = current.get("accesses")
            if declared is not None and declared != len(accesses):
                raise TraceFormatError(
                    f"{path}: kernel {current['name']!r} declares "
                    f"{declared} accesses, stream carries {len(accesses)}")
            return Kernel(current["name"], list(accesses),
                          _events_from_dicts(current["host_events"]))

        for line_no, line in enumerate(_gzip_lines(stream, path), 2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: bad JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "kernel":
                if current is not None:
                    yield flush()
                if record.get("seq") != expected_seq:
                    raise TraceFormatError(
                        f"{path}:{line_no}: kernel seq "
                        f"{record.get('seq')!r}, expected {expected_seq} "
                        f"(reordered or truncated stream)")
                expected_seq += 1
                current = record
                accesses = []
                kernels_seen += 1
            elif kind == "accesses":
                if current is None or record.get("seq") != current["seq"]:
                    raise TraceFormatError(
                        f"{path}:{line_no}: accesses record outside its "
                        f"kernel (seq {record.get('seq')!r})")
                chunk = _accesses_from_arrays(
                    current["name"], record["addresses"], record["writes"],
                    record["sectors"])
                accesses.extend(chunk)
                total += len(chunk)
            elif kind == "end":
                if current is not None:
                    yield flush()
                    current = None
                if (record.get("kernels") != kernels_seen
                        or record.get("total_accesses") != total):
                    raise TraceFormatError(
                        f"{path}: end record declares "
                        f"{record.get('kernels')} kernels / "
                        f"{record.get('total_accesses')} accesses, stream "
                        f"carries {kernels_seen} / {total}")
                finished = True
            else:
                raise TraceFormatError(
                    f"{path}:{line_no}: unknown record type {kind!r}")
        if not finished:
            raise TraceFormatError(
                f"{path}: truncated v2 stream (no end record)")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def save_workload(workload: Workload, path: Union[str, Path],
                  version: Optional[int] = None) -> None:
    """Write ``workload`` to ``path``.

    ``version`` picks the format explicitly; by default ``.gz`` paths
    get the v2 stream and anything else the v1 JSON document, so
    existing ``save_workload(w, "trace.json")`` callers are untouched.
    """
    path = Path(path)
    if version is None:
        version = (FORMAT_VERSION if path.name.endswith(".gz")
                   else V1_FORMAT_VERSION)
    if version == V1_FORMAT_VERSION:
        path.write_text(json.dumps(workload_to_dict(workload)))
    elif version == FORMAT_VERSION:
        with gzip.open(path, "wt", encoding="utf-8", compresslevel=6) as f:
            _write_stream(workload, f)
    else:
        raise TraceFormatError(
            f"cannot write trace format_version {version!r}; "
            f"this build writes {list(SUPPORTED_VERSIONS)}")


def load_workload(path: Union[str, Path]) -> Workload:
    """Load a trace of either format (sniffed, not suffix-guessed)."""
    path = Path(path)
    stream, is_gzip = _open_stream(path)
    if not is_gzip:
        with stream:
            text = stream.read()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path}: neither a gzip v2 stream nor a JSON "
                f"document: {exc}") from exc
        return workload_from_dict(data)
    stream.close()
    header = read_header(path)
    buffers = [_buffer_from_dict(b) for b in header["buffers"]]
    kernels = list(iter_kernels(path))
    return _workload_from_parts(header, buffers, kernels)


def trace_info(path: Union[str, Path]) -> Dict[str, Any]:
    """Cheap metadata about a trace file: format version, name,
    kernel/access/buffer counts (streams v2 without materialising)."""
    path = Path(path)
    stream, is_gzip = _open_stream(path)
    stream.close()
    if is_gzip:
        header = read_header(path)
        kernels = accesses = 0
        for kernel in iter_kernels(path):
            kernels += 1
            accesses += len(kernel.accesses)
        return {"format_version": FORMAT_VERSION, "name": header["name"],
                "buffers": len(header["buffers"]), "kernels": kernels,
                "accesses": accesses}
    workload = load_workload(path)
    return {"format_version": V1_FORMAT_VERSION, "name": workload.name,
            "buffers": len(workload.buffers),
            "kernels": len(workload.kernels),
            "accesses": workload.total_accesses}
