"""Workload substrate: pattern generators, builders, the benchmark suite."""

from repro.workloads.base import (
    ALLOC_ALIGN,
    Buffer,
    HostEvent,
    Kernel,
    Workload,
    WorkloadBuilder,
)
from repro.workloads.compose import (
    PRIMITIVES,
    Composer,
    SpecError,
    build_workload,
    describe,
    load_spec,
    step,
    validate_spec,
)
from repro.workloads.extended import EXTENDED, EXTENDED_NAMES, build_extended
from repro.workloads.multitenant import (
    TEMPLATES,
    build_multi_tenant,
    contention_spec,
    phase_churn_spec,
)
from repro.workloads.patterns import warp_accesses
from repro.workloads.suite import BENCHMARK_NAMES, BENCHMARKS, build, build_suite
from repro.workloads.trace_io import (
    TraceFormatError,
    iter_kernels,
    load_workload,
    save_workload,
    trace_info,
)

__all__ = [
    "ALLOC_ALIGN",
    "Buffer",
    "HostEvent",
    "Kernel",
    "Workload",
    "WorkloadBuilder",
    "BENCHMARK_NAMES",
    "BENCHMARKS",
    "build",
    "build_suite",
    "EXTENDED",
    "EXTENDED_NAMES",
    "build_extended",
    "warp_accesses",
    "PRIMITIVES",
    "Composer",
    "SpecError",
    "build_workload",
    "describe",
    "load_spec",
    "step",
    "validate_spec",
    "TEMPLATES",
    "build_multi_tenant",
    "contention_spec",
    "phase_churn_spec",
    "TraceFormatError",
    "iter_kernels",
    "load_workload",
    "save_workload",
    "trace_info",
]
