"""Workload substrate: pattern generators, builders, the benchmark suite."""

from repro.workloads.base import (
    ALLOC_ALIGN,
    Buffer,
    HostEvent,
    Kernel,
    Workload,
    WorkloadBuilder,
)
from repro.workloads.extended import EXTENDED, EXTENDED_NAMES, build_extended
from repro.workloads.patterns import warp_accesses
from repro.workloads.suite import BENCHMARK_NAMES, BENCHMARKS, build, build_suite
from repro.workloads.trace_io import load_workload, save_workload

__all__ = [
    "ALLOC_ALIGN",
    "Buffer",
    "HostEvent",
    "Kernel",
    "Workload",
    "WorkloadBuilder",
    "BENCHMARK_NAMES",
    "BENCHMARKS",
    "build",
    "build_suite",
    "EXTENDED",
    "EXTENDED_NAMES",
    "build_extended",
    "warp_accesses",
    "load_workload",
    "save_workload",
]
