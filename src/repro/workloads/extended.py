"""Extended workload set: modern GPU applications beyond Table VII.

The paper's intro motivates secure GPU memory with cloud ML and
scientific computing; its evaluation uses 2009-2015-era suites.  These
models extend the evaluation to the workload classes the motivation
names, using the same generator substrate — a check that the adaptive
design generalises (weights/embeddings are read-only and streaming;
attention KV-caches and sort buffers are not).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.types import MemorySpace
from repro.workloads import patterns as pat
from repro.workloads.base import Workload, WorkloadBuilder

MB = 1 << 20
KB = 1 << 10

EXTENDED_NAMES = ["transformer-infer", "pagerank", "radix-sort"]


def _n(count: float) -> int:
    return max(1, int(count))


def transformer_infer(scale: float = 1.0) -> Workload:
    """Transformer inference: huge read-only weights streamed per
    layer, a growing read-write KV cache, small activations.

    The paper's best case generalised: weight traffic (the bulk) rides
    the shared counter + chunk MACs; only the KV cache pays freshness.
    """
    b = WorkloadBuilder("transformer-infer", bandwidth_utilization=0.85,
                        seed=21, description="LLM decoder inference")
    weights = b.alloc("weights", _n(4.5 * MB * scale))
    embed = b.alloc("embeddings", _n(0.75 * MB * scale))
    kv = b.alloc("kv_cache", _n(0.75 * MB * scale), host_init=False)
    act = b.alloc("activations", 192 * KB, host_init=False)
    for layer in range(2):
        half = weights.size // 2
        trace = pat.interleave(b.rng, [
            pat.stream_read(weights.address + layer * half, half),
            pat.gather_read(b.rng, embed.address, embed.size,
                            _n(1500 * scale), locality=0.3),
            # Attention: read the KV prefix, append new entries.
            pat.stream_read(kv.address, max(128, kv.size // 2)),
            pat.stream_write(kv.address + kv.size // 2, kv.size // 4),
            pat.stream_write(act.address, 64 * KB),
        ])
        b.kernel(f"decoder_layer{layer}", trace)
    return b.build()


def pagerank(scale: float = 1.0) -> Workload:
    """PageRank iterations: read-only graph structure gathered
    randomly, dense rank vectors ping-ponged each iteration."""
    b = WorkloadBuilder("pagerank", bandwidth_utilization=0.45,
                        seed=22, description="graph analytics")
    edges = b.alloc("edges", _n(3 * MB * scale))
    offsets = b.alloc("offsets", _n(0.375 * MB * scale))
    ranks_a = b.alloc("ranks_a", _n(0.375 * MB * scale))
    ranks_b = b.alloc("ranks_b", _n(0.375 * MB * scale), host_init=False)
    src_buf, dst_buf = ranks_a, ranks_b
    for it in range(3):
        trace = pat.interleave(b.rng, [
            pat.gather_read(b.rng, edges.address, edges.size,
                            _n(5000 * scale), locality=0.5),
            pat.stream_read(offsets.address, offsets.size),
            pat.random_read(b.rng, src_buf.address, src_buf.size,
                            _n(2500 * scale)),
            pat.stream_write(dst_buf.address, dst_buf.size),
        ])
        b.kernel(f"pagerank_it{it}", trace)
        src_buf, dst_buf = dst_buf, src_buf
    return b.build()


def radix_sort(scale: float = 1.0) -> Workload:
    """Radix sort passes: streaming reads, scattered writes into the
    destination — a freshness-heavy worst case for the read-only
    optimisation (nothing stays read-only for long)."""
    b = WorkloadBuilder("radix-sort", bandwidth_utilization=0.70,
                        seed=23, description="key-value sorting")
    keys_a = b.alloc("keys_a", _n(1.5 * MB * scale))
    keys_b = b.alloc("keys_b", _n(1.5 * MB * scale), host_init=False)
    hist = b.alloc("histogram", 192 * KB, host_init=False)
    src_buf, dst_buf = keys_a, keys_b
    for digit in range(2):
        count = pat.interleave(b.rng, [
            pat.stream_read(src_buf.address, src_buf.size),
            pat.random_write(b.rng, hist.address, hist.size, _n(2000 * scale)),
        ])
        scatter = pat.interleave(b.rng, [
            pat.stream_read(src_buf.address, src_buf.size),
            pat.hotspot_read(b.rng, hist.address, hist.size,
                             _n(1000 * scale), 8 * KB),
            pat.random_write(b.rng, dst_buf.address, dst_buf.size,
                             _n(src_buf.size // 128 * scale ** 0)),
        ])
        b.kernel(f"count_d{digit}", count)
        b.kernel(f"scatter_d{digit}", scatter)
        src_buf, dst_buf = dst_buf, src_buf
    return b.build()


EXTENDED: Dict[str, Callable[[float], Workload]] = {
    "transformer-infer": transformer_infer,
    "pagerank": pagerank,
    "radix-sort": radix_sort,
}


def build_extended(name: str, scale: float = 1.0) -> Workload:
    try:
        return EXTENDED[name](scale)
    except KeyError:
        raise KeyError(f"unknown extended workload {name!r}; "
                       f"known: {sorted(EXTENDED)}") from None
