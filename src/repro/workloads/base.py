"""Workload abstractions: buffers, kernels, traces.

A :class:`Workload` is a sequence of :class:`Kernel` traces plus the
host-side events between them (H2D copies, ``input_read_only_reset``
calls).  Buffers are allocated at addresses aligned so that their
partition-local footprints fall on 16 KB read-only-region boundaries in
every partition (``ALLOC_ALIGN`` = interleave × partitions × 64), which
mirrors how real allocators align large GPU buffers to page boundaries.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.common import constants
from repro.common.types import MemorySpace
from repro.workloads.patterns import Access

#: Allocation alignment keeping local offsets region-aligned (192 KB
#: with the default 256 B interleave across 12 partitions).
ALLOC_ALIGN = 256 * constants.NUM_PARTITIONS * 64


@dataclass(frozen=True)
class Buffer:
    """A device-memory allocation."""

    name: str
    address: int
    size: int
    space: MemorySpace = MemorySpace.GLOBAL
    #: Copied from the host at context initialisation (arms the
    #: read-only detector).
    host_init: bool = True

    @property
    def end(self) -> int:
        return self.address + self.size


@dataclass
class HostEvent:
    """A host-side action between kernels."""

    kind: str  # "copy" or "readonly_reset"
    start: int
    size: int


@dataclass
class Kernel:
    """One kernel launch: its trace and the host events preceding it."""

    name: str
    accesses: List[Access]
    host_events: List[HostEvent] = field(default_factory=list)


@dataclass
class Workload:
    """A complete GPU application model."""

    name: str
    kernels: List[Kernel]
    buffers: List[Buffer]
    #: Target DRAM bandwidth utilisation of the unprotected run
    #: (Table VII); the runner calibrates the issue rate to hit it.
    bandwidth_utilization: float
    description: str = ""
    #: Instructions per memory access (sets the IPC scale only).
    instructions_per_access: int = 12

    @property
    def total_accesses(self) -> int:
        return sum(len(k.accesses) for k in self.kernels)

    @property
    def instructions(self) -> int:
        return self.total_accesses * self.instructions_per_access

    @property
    def spaces(self) -> Set[MemorySpace]:
        return {b.space for b in self.buffers}

    def init_copies(self) -> List[HostEvent]:
        """Context-initialisation H2D copies (arm the RO detector)."""
        return [
            HostEvent("copy", b.address, b.size)
            for b in self.buffers
            if b.host_init
        ]

    def validate(self) -> None:
        """Sanity-check that every access falls inside a buffer."""
        spans = sorted((b.address, b.end) for b in self.buffers)
        for kernel in self.kernels:
            for addr, _, _ in kernel.accesses[:: max(1, len(kernel.accesses) // 64)]:
                if not any(lo <= addr < hi for lo, hi in spans):
                    raise ValueError(
                        f"{self.name}/{kernel.name}: access {addr:#x} outside buffers"
                    )


class WorkloadBuilder:
    """Incremental construction of a workload's buffers and kernels."""

    def __init__(self, name: str, bandwidth_utilization: float,
                 seed: int = 0, description: str = "") -> None:
        if not 0.0 < bandwidth_utilization <= 1.0:
            raise ValueError("bandwidth_utilization must be in (0, 1]")
        self.name = name
        self.bandwidth_utilization = bandwidth_utilization
        self.description = description
        # zlib.crc32, unlike hash(), is stable across processes: traces
        # must be byte-identical between runs for reproducibility.
        self.rng = random.Random(seed if seed else zlib.crc32(name.encode()))
        self._buffers: List[Buffer] = []
        self._kernels: List[Kernel] = []
        self._next_address = 0

    def alloc(
        self,
        name: str,
        size: int,
        space: MemorySpace = MemorySpace.GLOBAL,
        host_init: bool = True,
    ) -> Buffer:
        size = -(-size // ALLOC_ALIGN) * ALLOC_ALIGN
        buf = Buffer(name, self._next_address, size, space, host_init)
        self._next_address += size
        self._buffers.append(buf)
        return buf

    def kernel(
        self,
        name: str,
        accesses: List[Access],
        copies: Sequence[Buffer] = (),
        readonly_resets: Sequence[Buffer] = (),
    ) -> Kernel:
        """Add a kernel; ``copies`` are mid-run H2D copies before the
        launch (they clear RO bits) and ``readonly_resets`` invoke the
        paper's new API (they set RO bits and raise the shared
        counter)."""
        events = [HostEvent("copy", b.address, b.size) for b in copies]
        events += [
            HostEvent("readonly_reset", b.address, b.size) for b in readonly_resets
        ]
        k = Kernel(name, accesses, events)
        self._kernels.append(k)
        return k

    def build(self) -> Workload:
        workload = Workload(
            name=self.name,
            kernels=self._kernels,
            buffers=self._buffers,
            bandwidth_utilization=self.bandwidth_utilization,
            description=self.description,
        )
        workload.validate()
        return workload
