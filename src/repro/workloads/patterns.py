"""Access-pattern generators.

A trace is a list of ``(address, is_write, n_sectors)`` tuples — the
SM-side memory requests of one kernel.  Streaming requests are
line-grain (a fully coalesced warp touches all four 32 B sectors of a
128 B line); random requests are sector-grain (one 32 B sector of a
line, the case the sectored L2 exists for).

Generators are pure functions of a :class:`random.Random` instance so
traces are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from repro.common import constants

Access = Tuple[int, bool, int]

LINE = constants.BLOCK_SIZE
SECTOR = constants.SECTOR_SIZE
SECTORS = constants.SECTORS_PER_BLOCK


def stream_read(base: int, size: int, passes: int = 1, stride: int = LINE) -> List[Access]:
    """Sequential line-grain reads over [base, base+size), repeated."""
    _check(base, size)
    out = []
    for _ in range(passes):
        for addr in range(base, base + size, stride):
            out.append((addr, False, SECTORS))
    return out


def stream_write(base: int, size: int, passes: int = 1) -> List[Access]:
    """Sequential line-grain writes (a fully written output buffer)."""
    _check(base, size)
    out = []
    for _ in range(passes):
        for addr in range(base, base + size, LINE):
            out.append((addr, True, SECTORS))
    return out


def stream_read_write(base: int, size: int, passes: int = 1) -> List[Access]:
    """Read-modify-write streams (in-place update of a buffer)."""
    _check(base, size)
    out = []
    for _ in range(passes):
        for addr in range(base, base + size, LINE):
            out.append((addr, False, SECTORS))
            out.append((addr, True, SECTORS))
    return out


def random_read(
    rng: random.Random, base: int, size: int, count: int
) -> List[Access]:
    """Uniform random sector-grain reads over a buffer."""
    _check(base, size)
    sectors = size // SECTOR
    return [
        (base + rng.randrange(sectors) * SECTOR, False, 1) for _ in range(count)
    ]


def random_write(
    rng: random.Random, base: int, size: int, count: int
) -> List[Access]:
    """Uniform random sector-grain writes (histogram updates etc.)."""
    _check(base, size)
    sectors = size // SECTOR
    return [
        (base + rng.randrange(sectors) * SECTOR, True, 1) for _ in range(count)
    ]


def hotspot_read(
    rng: random.Random, base: int, size: int, count: int, hot_bytes: int
) -> List[Access]:
    """Random reads concentrated in a hot subset (L2-friendly reuse)."""
    _check(base, size)
    hot_bytes = min(hot_bytes, size)
    sectors = hot_bytes // SECTOR
    return [
        (base + rng.randrange(sectors) * SECTOR, False, 1) for _ in range(count)
    ]


def snake(base: int, size: int, passes: int = 1, is_write: bool = False,
          stride: int = LINE) -> List[Access]:
    """Boustrophedon sweep: forward over the buffer, then backward,
    alternating per pass (blocked matrix traversals, zig-zag tilings).
    Line-grain like a stream, but the direction flip defeats next-line
    prefetch assumptions and revisits chunk boundaries from both
    sides — a stress case for the streaming detector's monotonic-walk
    heuristic."""
    _check(base, size)
    if stride <= 0 or stride % SECTOR:
        raise ValueError("stride must be a positive multiple of the sector size")
    forward = list(range(base, base + size, stride))
    out: List[Access] = []
    for p in range(passes):
        walk = forward if p % 2 == 0 else list(reversed(forward))
        for addr in walk:
            out.append((addr, is_write, SECTORS))
    return out


def zipfian(rng: random.Random, base: int, size: int, count: int,
            alpha: float = 0.9, is_write: bool = False) -> List[Access]:
    """Power-law sector-grain accesses: sector rank ``k`` is drawn with
    probability proportional to ``1 / k**alpha`` (inverse-CDF over the
    truncated Zipf distribution).  Models skewed key/embedding lookups:
    a hot head that lives in the L2 plus a long random tail that does
    not — the multi-tenant contention suites lean on it because the
    hot head keeps metadata-cache lines resident until a competing
    tenant evicts them."""
    _check(base, size)
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    n = size // SECTOR
    weights = [1.0 / (k ** alpha) for k in range(1, n + 1)]
    cumulative = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)
    out: List[Access] = []
    for _ in range(count):
        pick = rng.random() * total
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < pick:
                lo = mid + 1
            else:
                hi = mid
        out.append((base + lo * SECTOR, is_write, 1))
    return out


def strided_read(base: int, size: int, stride: int, count: int) -> List[Access]:
    """Strided sector-grain reads (column-major walks, sparse rows)."""
    _check(base, size)
    out = []
    addr = base
    for _ in range(count):
        out.append((addr, False, 1))
        addr += stride
        if addr >= base + size:
            addr = base + (addr - base) % size
            addr -= addr % SECTOR
    return out


def gather_read(
    rng: random.Random, base: int, size: int, count: int, locality: float = 0.0
) -> List[Access]:
    """Pointer-chase style gathers: mostly random, with an optional
    fraction of spatially-local follow-up accesses (b+tree, bfs)."""
    _check(base, size)
    if not 0.0 <= locality < 1.0:
        raise ValueError("locality must be in [0, 1)")
    sectors = size // SECTOR
    out: List[Access] = []
    addr = base
    for _ in range(count):
        if out and rng.random() < locality:
            addr = min(addr + SECTOR, base + size - SECTOR)
        else:
            addr = base + rng.randrange(sectors) * SECTOR
        out.append((addr, False, 1))
    return out


def warp_accesses(
    rng: random.Random,
    base: int,
    size: int,
    n_warps: int,
    element_bytes: int = 4,
    divergence: float = 0.0,
    is_write: bool = False,
    sequential_warps: bool = True,
) -> List[Access]:
    """Warp-level generation with a coalescing model.

    Each warp has 32 threads; thread ``t`` of warp ``w`` accesses
    ``base + (32*w + t) * element_bytes`` (the canonical coalesced
    pattern), except that with probability ``divergence`` a thread
    jumps to a random element instead.  The coalescer merges the
    warp's touched sectors into the fewest contiguous transactions —
    a fully coalesced 4-byte-per-thread warp becomes one 128 B
    line-grain access; divergent threads spill into extra sector-grain
    transactions, exactly the effect sectored caches exist for.
    """
    _check(base, size)
    if not 0.0 <= divergence <= 1.0:
        raise ValueError("divergence must be in [0, 1]")
    n_elements = size // element_bytes
    out: List[Access] = []
    for w in range(n_warps):
        sectors = set()
        for t in range(32):
            if sequential_warps:
                element = (32 * w + t) % n_elements
            else:
                element = (rng.randrange(n_elements) // 32 * 32 + t) % n_elements
            if divergence and rng.random() < divergence:
                element = rng.randrange(n_elements)
            addr = base + element * element_bytes
            sectors.add(addr // SECTOR)
        # Coalesce contiguous sectors into single transactions.
        for start, count in _runs(sorted(sectors)):
            out.append((start * SECTOR, is_write, count))
    return out


def _runs(sorted_ids: List[int]) -> Iterator[Tuple[int, int]]:
    """Yield (start, length) for maximal runs of consecutive ids that
    do not cross a cache-line boundary."""
    i = 0
    n = len(sorted_ids)
    while i < n:
        start = sorted_ids[i]
        length = 1
        while (
            i + length < n
            and sorted_ids[i + length] == start + length
            and (start + length) % SECTORS != 0
        ):
            length += 1
        yield start, length
        i += length


def interleave(
    rng: random.Random, sources: Sequence[List[Access]]
) -> List[Access]:
    """Merge several access lists as concurrently-running warps would:
    each step draws from a source with probability proportional to its
    remaining length, preserving each source's internal order."""
    queues = [list(reversed(src)) for src in sources if src]
    out: List[Access] = []
    total = sum(len(q) for q in queues)
    while total:
        pick = rng.randrange(total)
        for queue in queues:
            if pick < len(queue):
                out.append(queue.pop())
                total -= 1
                break
            pick -= len(queue)
        queues = [q for q in queues if q]
    return out


def chunked_interleave(
    rng: random.Random, sources: Sequence[List[Access]], chunk: int = 16
) -> List[Access]:
    """Like :func:`interleave` but in bursts of ``chunk`` accesses,
    matching the burstiness of warp-level memory divergence."""
    queues = [list(reversed(src)) for src in sources if src]
    out: List[Access] = []
    while queues:
        weights = [len(q) for q in queues]
        queue = rng.choices(queues, weights=weights)[0]
        for _ in range(min(chunk, len(queue))):
            out.append(queue.pop())
        queues = [q for q in queues if q]
    return out


def _check(base: int, size: int) -> None:
    if base < 0:
        raise ValueError("base must be non-negative")
    if size <= 0 or size % SECTOR:
        raise ValueError("size must be a positive multiple of the sector size")
