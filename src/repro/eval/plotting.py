"""Terminal plots for experiment results (no plotting deps needed).

Renders :class:`repro.eval.experiments.ExperimentResult` objects as
horizontal bar charts and grouped-bar figures in plain text, mirroring
the paper's figure style closely enough to eyeball against it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eval.experiments import ExperimentResult

#: Glyphs for up to six series, in order.
_GLYPHS = "#*=+o."


def hbar(
    values: Dict[str, float],
    width: int = 50,
    percent: bool = True,
    title: Optional[str] = None,
    vmax: Optional[float] = None,
) -> str:
    """One horizontal bar per key."""
    if not values:
        return title or ""
    peak = vmax if vmax is not None else max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        filled = 0 if peak <= 0 else int(round(width * min(value, peak) / peak))
        text = f"{100 * value:7.2f}%" if percent else f"{value:8.3f}"
        lines.append(f"{key.ljust(label_w)} |{'#' * filled}{' ' * (width - filled)}| {text}")
    return "\n".join(lines)


def grouped_bars(
    result: ExperimentResult,
    width: int = 40,
    percent: bool = True,
    title: Optional[str] = None,
    invert: bool = False,
) -> str:
    """A paper-style grouped bar chart: one group per workload, one bar
    per series.  ``invert=True`` renders 1-x (normalised IPC results as
    overheads)."""
    labels = list(result.series)
    workloads: List[str] = []
    for series in result.series.values():
        for name in series:
            if name not in workloads:
                workloads.append(name)

    def value(label, name):
        v = result.series[label].get(name, 0.0)
        return 1.0 - v if invert else v

    peak = max(
        (value(label, name) for label in labels for name in workloads),
        default=1.0,
    ) or 1.0
    label_w = max([len(w) for w in workloads] + [7])
    lines = [title] if title else []
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={label}" for i, label in enumerate(labels)
    )
    lines.append(f"legend: {legend}")
    for name in workloads:
        for i, label in enumerate(labels):
            v = value(label, name)
            filled = int(round(width * min(v, peak) / peak))
            glyph = _GLYPHS[i % len(_GLYPHS)]
            prefix = name.ljust(label_w) if i == 0 else " " * label_w
            text = f"{100 * v:7.2f}%" if percent else f"{v:8.3f}"
            lines.append(f"{prefix} |{glyph * filled}{' ' * (width - filled)}| {text}")
    return "\n".join(lines)


def breakdown_bars(
    result: ExperimentResult,
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Stacked 100 % bars for breakdown figures (Figs. 10/11): each
    workload's categories fill one bar."""
    labels = list(result.series)
    workloads: List[str] = []
    for series in result.series.values():
        for name in series:
            if name not in workloads:
                workloads.append(name)
    label_w = max(len(w) for w in workloads)
    lines = [title] if title else []
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={label}" for i, label in enumerate(labels)
    )
    lines.append(f"legend: {legend}")
    for name in workloads:
        total = sum(result.series[label].get(name, 0.0) for label in labels) or 1.0
        bar = ""
        for i, label in enumerate(labels):
            share = result.series[label].get(name, 0.0) / total
            bar += _GLYPHS[i % len(_GLYPHS)] * int(round(width * share))
        bar = (bar + " " * width)[:width]
        first = result.series[labels[0]].get(name, 0.0)
        lines.append(f"{name.ljust(label_w)} |{bar}| {100 * first:6.2f}% {labels[0]}")
    return "\n".join(lines)
