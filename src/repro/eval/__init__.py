"""Evaluation harness: per-figure experiments, the campaign engine,
energy model and reporting."""

from repro.eval.campaign import (
    CampaignReport,
    CellRecord,
    ExperimentSpec,
    JobSpec,
    cell_key,
    run_campaign,
    run_cells_serial,
    run_smoke,
)
from repro.eval.energy import EnergyModel
from repro.eval.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ablation_bandwidth_sensitivity,
    ablation_chunk_size,
    ablation_detector_sizing,
    ablation_mac_conflict_policy,
    ablation_mdc_size,
    fig5_access_ratios,
    fig10_readonly_prediction,
    fig11_streaming_prediction,
    fig12_overall_ipc,
    fig13_optimization_breakdown,
    fig14_bandwidth_overhead,
    fig15_energy,
    fig16_victim_cache,
    table9_hardware_overhead,
)
from repro.eval.plotting import breakdown_bars, grouped_bars, hbar
from repro.eval.reporting import format_overheads, format_table, summarize_averages
from repro.eval.security_analysis import (
    MACDesignPoint,
    mac_design_space,
    truncation_analysis,
)

from repro.eval.results_io import (
    ResultStore,
    deserialize_run_result,
    serialize_run_result,
)

__all__ = [
    "CampaignReport",
    "CellRecord",
    "EXPERIMENTS",
    "ExperimentSpec",
    "JobSpec",
    "ResultStore",
    "cell_key",
    "deserialize_run_result",
    "run_campaign",
    "run_cells_serial",
    "run_smoke",
    "serialize_run_result",
    "EnergyModel",
    "ExperimentResult",
    "ablation_bandwidth_sensitivity",
    "ablation_chunk_size",
    "ablation_detector_sizing",
    "ablation_mac_conflict_policy",
    "ablation_mdc_size",
    "fig5_access_ratios",
    "fig10_readonly_prediction",
    "fig11_streaming_prediction",
    "fig12_overall_ipc",
    "fig13_optimization_breakdown",
    "fig14_bandwidth_overhead",
    "fig15_energy",
    "fig16_victim_cache",
    "table9_hardware_overhead",
    "breakdown_bars",
    "grouped_bars",
    "hbar",
    "format_overheads",
    "format_table",
    "summarize_averages",
    "MACDesignPoint",
    "mac_design_space",
    "truncation_analysis",
]
