"""Rendering experiment results as the paper-style tables.

Plain-text tables: one row per workload, one column per series, plus
the across-workload average row the paper quotes in its prose.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eval.experiments import ExperimentResult


def format_table(
    result: ExperimentResult,
    percent: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    labels = list(result.series)
    workloads: List[str] = []
    for series in result.series.values():
        for name in series:
            if name not in workloads:
                workloads.append(name)

    def fmt(value: float) -> str:
        if percent:
            return f"{100 * value:7.2f}%"
        return f"{value:8.4f}"

    name_width = max([len("workload")] + [len(w) for w in workloads])
    header = "workload".ljust(name_width) + "  " + "  ".join(
        label.rjust(max(9, len(label))) for label in labels
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for name in workloads:
        row = [name.ljust(name_width)]
        for label in labels:
            value = result.series[label].get(name)
            cell = fmt(value) if value is not None else "-"
            row.append(cell.rjust(max(9, len(label))))
        lines.append("  ".join(row))
    lines.append("-" * len(header))
    avg_row = ["average".ljust(name_width)]
    for label in labels:
        avg_row.append(fmt(result.average(label)).rjust(max(9, len(label))))
    lines.append("  ".join(avg_row))
    return "\n".join(lines)


def format_overheads(
    result: ExperimentResult, title: Optional[str] = None
) -> str:
    """Render a normalised-IPC result as performance *overheads*
    (1 - normalised IPC), the way the paper's prose quotes Fig. 12."""
    converted = ExperimentResult(result.experiment)
    for label, series in result.series.items():
        converted.series[label] = {
            name: 1.0 - value for name, value in series.items()
        }
    return format_table(converted, percent=True, title=title)


def summarize_averages(result: ExperimentResult, percent: bool = True) -> Dict[str, str]:
    out = {}
    for label, value in result.averages().items():
        out[label] = f"{100 * value:.2f}%" if percent else f"{value:.4f}"
    return out
