"""Rendering experiment results as the paper-style tables.

Plain-text tables: one row per workload, one column per series, plus
the across-workload average row the paper quotes in its prose.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eval.experiments import ExperimentResult


def format_table(
    result: ExperimentResult,
    percent: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    labels = list(result.series)
    workloads: List[str] = []
    for series in result.series.values():
        for name in series:
            if name not in workloads:
                workloads.append(name)

    def fmt(value: float) -> str:
        if percent:
            return f"{100 * value:7.2f}%"
        return f"{value:8.4f}"

    name_width = max([len("workload")] + [len(w) for w in workloads])
    header = "workload".ljust(name_width) + "  " + "  ".join(
        label.rjust(max(9, len(label))) for label in labels
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for name in workloads:
        row = [name.ljust(name_width)]
        for label in labels:
            value = result.series[label].get(name)
            cell = fmt(value) if value is not None else "-"
            row.append(cell.rjust(max(9, len(label))))
        lines.append("  ".join(row))
    lines.append("-" * len(header))
    avg_row = ["average".ljust(name_width)]
    for label in labels:
        avg_row.append(fmt(result.average(label)).rjust(max(9, len(label))))
    lines.append("  ".join(avg_row))
    return "\n".join(lines)


def format_overheads(
    result: ExperimentResult, title: Optional[str] = None
) -> str:
    """Render a normalised-IPC result as performance *overheads*
    (1 - normalised IPC), the way the paper's prose quotes Fig. 12."""
    converted = ExperimentResult(result.experiment)
    for label, series in result.series.items():
        converted.series[label] = {
            name: 1.0 - value for name, value in series.items()
        }
    return format_table(converted, percent=True, title=title)


def summarize_averages(result: ExperimentResult, percent: bool = True) -> Dict[str, str]:
    out = {}
    for label, value in result.averages().items():
        out[label] = f"{100 * value:.2f}%" if percent else f"{value:.4f}"
    return out


def format_prediction_accuracy(results, title: Optional[str] = None) -> str:
    """Suite-level detector accuracy from a list of :class:`RunResult`s.

    Folds each run's per-detector :class:`PredictionStats` into one
    aggregate per detector with :meth:`PredictionStats.merge` (the same
    accumulation the simulator uses across MEE partitions), then
    renders the Figs. 10/11 breakdown alongside per-workload accuracy.
    """
    from repro.common.types import PredictionStats

    detectors = (("read-only", "readonly_stats"),
                 ("streaming", "streaming_stats"))
    suite = {label: PredictionStats() for label, _ in detectors}
    name_width = max([len("workload"), len("suite total")]
                     + [len(r.workload) for r in results])
    header = ("workload".ljust(name_width) + "  "
              + "  ".join(label.rjust(10) for label, _ in detectors))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        row = [result.workload.ljust(name_width)]
        for label, attr in detectors:
            stats = getattr(result, attr)
            suite[label].merge(stats)
            cell = f"{stats.accuracy:.1%}" if stats.total else "-"
            row.append(cell.rjust(10))
        lines.append("  ".join(row))
    lines.append("-" * len(header))
    total_row = ["suite total".ljust(name_width)]
    for label, _ in detectors:
        agg = suite[label]
        cell = f"{agg.accuracy:.1%}" if agg.total else "-"
        total_row.append(cell.rjust(10))
    lines.append("  ".join(total_row))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Campaign manifests (``repro campaign`` output, ``campaign_format: 1``)
# ----------------------------------------------------------------------

def format_campaign_manifest(manifest: dict, verbose: bool = False) -> str:
    """Render a campaign manifest as the summary ``repro inspect``
    prints: totals, then one block per experiment with its series
    averages and any failed cells (always shown — failures should
    never be silent); ``verbose`` adds the full per-cell table."""
    totals = manifest["totals"]
    lines = [
        f"campaign: {', '.join(manifest['experiments'])}  "
        f"(scale {manifest['scale']}, {manifest['jobs']} worker(s), "
        f"code {manifest['code_version']})",
        f"cells: {totals['cells']} unique / {totals['references']} referenced"
        f" — {totals['executed']} executed, {totals['cached']} cached, "
        f"{totals['failed']} failed  "
        f"[{manifest['elapsed_seconds']:.1f}s]",
    ]
    if manifest.get("quarantined"):
        lines.append(f"quarantined store entries: "
                     f"{len(manifest['quarantined'])} (see store dir)")
    for name, exp in manifest["experiments"].items():
        lines.append("")
        lines.append(f"{name}: {exp['title']}  [{exp['provenance']}]")
        for label, avg in exp["averages"].items():
            lines.append(f"  {label:24s} average {avg:8.4f}")
        failed = [c for c in exp["cells"] if c["status"] != "ok"]
        if failed:
            lines.append(f"  {exp['failed']} failed cell(s) excluded "
                         f"from the aggregate:")
            for cell in failed:
                first_line = (cell.get("error") or "").strip().splitlines()
                lines.append(f"    {cell['workload']}/{cell['scheme']}: "
                             f"{first_line[-1] if first_line else '?'}")
        if verbose:
            for cell in exp["cells"]:
                state = "cached" if cell["cached"] else cell["status"]
                lines.append(f"    {cell['workload']:14s} "
                             f"{cell['scheme']:16s} {state:7s} "
                             f"{cell['runtime_s']:8.2f}s x{cell['attempts']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Observability views (window rows from ``repro run --metrics-out``)
# ----------------------------------------------------------------------

_BYTE_COLUMNS = ("data_bytes", "ctr_bytes", "mac_bytes", "bmt_bytes",
                 "mispred_bytes")


def _merge_windows(rows: List[dict], limit: int) -> List[dict]:
    """Coalesce adjacent window rows so at most ``limit`` remain.

    Byte and count columns add; rate columns are rebuilt from the
    merged counts, so a merged table is still exact.
    """
    if limit <= 0 or len(rows) <= limit:
        return rows
    stride = -(-len(rows) // limit)  # ceil division
    merged = []
    for i in range(0, len(rows), stride):
        group = rows[i:i + stride]
        row = dict(group[0])
        row["end_cycle"] = group[-1]["end_cycle"]
        for name in _BYTE_COLUMNS + (
            "l2_accesses", "l2_misses", "mdc_accesses", "mdc_misses",
            "victim_probes", "victim_hits", "reads", "read_latency_sum",
            "stall_cycles",
        ):
            row[name] = sum(g[name] for g in group)
        row["l2_miss_rate"] = (
            row["l2_misses"] / row["l2_accesses"] if row["l2_accesses"] else 0.0
        )
        row["mdc_hit_rate"] = (
            1.0 - row["mdc_misses"] / row["mdc_accesses"]
            if row["mdc_accesses"] else 0.0
        )
        row["avg_read_latency"] = (
            row["read_latency_sum"] / row["reads"] if row["reads"] else 0.0
        )
        row["dram_utilization_mean"] = (
            sum(g["dram_utilization_mean"] for g in group) / len(group)
        )
        merged.append(row)
    return merged


def format_timeslices(
    rows: List[dict], limit: int = 40, title: Optional[str] = None
) -> str:
    """Render window rows as an aligned time-sliced table."""
    rows = _merge_windows(rows, limit)
    header = (f"{'cycles':>22s} {'kern':>4s} {'data KB':>9s} {'ctr KB':>8s} "
              f"{'mac KB':>8s} {'bmt KB':>8s} {'mis KB':>7s} {'L2miss':>7s} "
              f"{'MDChit':>7s} {'DRAM':>6s} {'stall':>9s} {'lat':>7s}")
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        span = f"{row['start_cycle']:,.0f}-{row['end_cycle']:,.0f}"
        lines.append(
            f"{span:>22s} {row['kernel']:4d} "
            f"{row['data_bytes'] / 1024:9.1f} {row['ctr_bytes'] / 1024:8.1f} "
            f"{row['mac_bytes'] / 1024:8.1f} {row['bmt_bytes'] / 1024:8.1f} "
            f"{row['mispred_bytes'] / 1024:7.1f} {row['l2_miss_rate']:7.1%} "
            f"{row['mdc_hit_rate']:7.1%} {row['dram_utilization_mean']:6.0%} "
            f"{row['stall_cycles']:9,.0f} {row['avg_read_latency']:7.0f}"
        )
    return "\n".join(lines)


def format_phase_breakdown(
    rows: List[dict], title: Optional[str] = None
) -> str:
    """Per-kernel-phase traffic breakdown: per-kind bytes normalised to
    that phase's demand data (the time-resolved Fig. 14 view)."""
    phases: Dict[int, Dict[str, int]] = {}
    for row in rows:
        acc = phases.setdefault(row["kernel"],
                                {name: 0 for name in _BYTE_COLUMNS})
        for name in _BYTE_COLUMNS:
            acc[name] += row[name]
    header = (f"{'phase':>8s} {'data KB':>10s} {'ctr':>7s} {'mac':>7s} "
              f"{'bmt':>7s} {'mispred':>8s} {'meta BW':>8s}")
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    totals = {name: 0 for name in _BYTE_COLUMNS}
    for kernel in sorted(phases):
        acc = phases[kernel]
        for name in _BYTE_COLUMNS:
            totals[name] += acc[name]
        lines.append(_phase_row(f"k{kernel}", acc))
    lines.append("-" * len(header))
    lines.append(_phase_row("total", totals))
    return "\n".join(lines)


def _phase_row(label: str, acc: Dict[str, int]) -> str:
    data = acc["data_bytes"] or 1
    meta = (acc["ctr_bytes"] + acc["mac_bytes"] + acc["bmt_bytes"]
            + acc["mispred_bytes"])
    return (f"{label:>8s} {acc['data_bytes'] / 1024:10.1f} "
            f"{acc['ctr_bytes'] / data:7.1%} {acc['mac_bytes'] / data:7.1%} "
            f"{acc['bmt_bytes'] / data:7.1%} "
            f"{acc['mispred_bytes'] / data:8.1%} {meta / data:8.1%}")


# ----------------------------------------------------------------------
# Decision provenance (``repro inspect --decisions``)
# ----------------------------------------------------------------------

def format_decision_timeline(rows: List[dict], limit: int = 12,
                             title: Optional[str] = None) -> str:
    """Render ledger rows (:meth:`~repro.obs.decisions.DecisionLedger.
    to_rows`) as per-region timelines: one block per (run, detector,
    region) in first-decision order, each decision on its own line with
    its cause and the cost charged back to it.  ``limit`` caps the
    lines per region (the head and tail are kept; the elision is
    counted, never silent)."""
    groups: Dict[tuple, List[dict]] = {}
    for row in rows:
        key = (row["run"], row["detector"], row["region"])
        groups.setdefault(key, []).append(row)

    header = (f"  {'cycle':>14s} {'krn':>3s} {'type':<15s} "
              f"{'cause':<18s} {'cost B':>8s} {'xfer':>5s} "
              f"{'stall':>9s}  detail")
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    if not rows:
        lines.append("no decisions recorded")
        return "\n".join(lines)

    def fmt(row: dict) -> str:
        detail = ""
        if row["type"] in ("stream_verdict", "stream_preset"):
            detail = row.get("pattern", "")
            if row.get("flip"):
                detail += f" (predicted {row.get('predicted')})"
        elif row["type"] == "learned_verdict":
            # score -1 marks a still-cold model (no history to score).
            detail = f"{row.get('pattern', '')} score {row.get('score', -1.0):.3f}"
            if row.get("flip"):
                detail += f" (predicted {row.get('predicted')})"
        elif row["type"] == "learned_promote":
            detail = f"score {row.get('score', 0.0):.3f}"
        elif row["type"] == "arm_select":
            detail = (f"arm {row.get('arm', '?')} "
                      f"reward {row.get('reward', 0.0):+.3f}")
        elif row.get("evicted", -1) >= 0:
            detail = f"evicted r{row['evicted']}"
        elif row["type"] == "ctr_overflow":
            detail = f"block {row.get('block', '?')}"
        return (f"  {row['cycle']:14,.0f} {row['kernel']:3d} "
                f"{row['type']:<15s} {row['cause']:<18s} "
                f"{row['cost_bytes']:8,.0f} {row['cost_transfers']:5d} "
                f"{row['stall_cycles']:9,.0f}  {detail}")

    last_run = None
    for key, group in groups.items():
        run, detector, region = key
        if run != last_run:
            lines.append("")
            lines.append(f"run {run}")
            last_run = run
        cost = sum(r["cost_bytes"] for r in group)
        stall = sum(r["stall_cycles"] for r in group)
        lines.append(f" {detector} region {region}: {len(group)} "
                     f"decision(s), {cost / 1024:.1f} KB charged, "
                     f"{stall:,.0f} stall cycles")
        lines.append(header)
        if len(group) <= limit:
            lines.extend(fmt(row) for row in group)
        else:
            head = limit // 2
            tail = limit - head
            lines.extend(fmt(row) for row in group[:head])
            lines.append(f"  ... {len(group) - limit} more ...")
            lines.extend(fmt(row) for row in group[-tail:])
    return "\n".join(lines)


def format_decision_summary(summaries: Dict[str, dict],
                            title: Optional[str] = None) -> str:
    """Render per-scheme ledger summaries
    (:meth:`~repro.obs.decisions.DecisionLedger.summary`) as the
    detector accuracy / misprediction-cost tables: one row per
    (run label, detector), then the per-type cost breakdown.
    ``summaries`` maps a label (``workload/scheme``) to one summary."""
    label_width = max([len("run")] + [len(label) for label in summaries])
    header = (f"{'run'.ljust(label_width)} {'detector':>10s} "
              f"{'decisions':>10s} {'flips':>6s} {'t/o':>5s} "
              f"{'accuracy':>9s} {'cost KB':>9s} {'stall':>11s}")
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for label, summary in summaries.items():
        by_detector = summary.get("by_detector", {})
        if not by_detector:
            lines.append(f"{label.ljust(label_width)} {'-':>10s} "
                         f"{0:10d} {'-':>6s} {'-':>5s} {'-':>9s} "
                         f"{'-':>9s} {'-':>11s}")
        for name in sorted(by_detector):
            acc = by_detector[name]
            accuracy = (1.0 - acc["flips"] / acc["decisions"]
                        if acc["decisions"] else 1.0)
            lines.append(
                f"{label.ljust(label_width)} {name:>10s} "
                f"{acc['decisions']:10d} {acc['flips']:6d} "
                f"{acc['timeouts']:5d} {accuracy:9.1%} "
                f"{acc['cost_bytes'] / 1024:9.1f} "
                f"{acc['stall_cycles']:11,.0f}")
    lines.append("")
    lines.append("cost by decision type:")
    type_header = (f"{'run'.ljust(label_width)} {'type':>14s} "
                   f"{'count':>8s} {'cost KB':>9s} {'stall':>11s}")
    lines.append(type_header)
    lines.append("-" * len(type_header))
    for label, summary in summaries.items():
        for name in sorted(summary.get("by_type", {})):
            block = summary["by_type"][name]
            lines.append(
                f"{label.ljust(label_width)} {name:>14s} "
                f"{block['count']:8d} {block['cost_bytes'] / 1024:9.1f} "
                f"{block['stall_cycles']:11,.0f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Performance observability (``repro bench`` / host profiling)
# ----------------------------------------------------------------------

def format_bench_table(doc: dict, title: Optional[str] = None) -> str:
    """Render a ``bench_format`` document as an aligned table of the
    robust statistics (min / median / MAD)."""
    benchmarks = doc["benchmarks"]
    name_width = max([len("benchmark")] + [len(n) for n in benchmarks])
    header = (f"{'benchmark'.ljust(name_width)}  {'unit':>7s} "
              f"{'min':>12s} {'median':>12s} {'MAD':>10s} {'reps':>5s}")
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    environment = doc.get("environment", {})
    lines.append(
        f"code {environment.get('git_sha') or '?'}  "
        f"python {environment.get('python', '?')}  "
        f"{environment.get('cpu_count', '?')} cpus"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(benchmarks):
        entry = benchmarks[name]
        stats = entry["stats"]
        lines.append(
            f"{name.ljust(name_width)}  {entry['unit']:>7s} "
            f"{stats['min']:12.1f} {stats['median']:12.1f} "
            f"{stats['mad']:10.2f} {len(entry['samples']):5d}"
        )
    return "\n".join(lines)


def format_bench_compare(rows, threshold: float,
                         title: Optional[str] = None) -> str:
    """Render :func:`repro.perf.compare.compare_docs` rows; regressed
    benchmarks carry a trailing ``<<<`` marker and are itemised with
    their per-cell deltas under the verdict, so the gate names *which*
    cells regressed and by how much."""
    name_width = max([len("benchmark")] + [len(r.name) for r in rows])
    header = (f"{'benchmark'.ljust(name_width)}  {'unit':>7s} "
              f"{'old':>12s} {'new':>12s} {'ratio':>7s} {'delta':>8s}"
              f"  status")
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    regressed = []
    for row in rows:
        old = f"{row.old_median:12.1f}" if row.old_median is not None \
            else f"{'-':>12s}"
        new = f"{row.new_median:12.1f}" if row.new_median is not None \
            else f"{'-':>12s}"
        ratio = f"{row.ratio:7.3f}" if row.ratio is not None \
            else f"{'-':>7s}"
        delta = f"{row.delta:+8.1%}" if row.delta is not None \
            else f"{'-':>8s}"
        marker = ""
        if row.status == "regression":
            regressed.append(row)
            marker = "  <<<"
        lines.append(f"{row.name.ljust(name_width)}  {row.unit:>7s} "
                     f"{old} {new} {ratio} {delta}  {row.status}{marker}")
    lines.append("-" * len(header))
    if regressed:
        lines.append(f"{len(regressed)} regression(s) beyond the "
                     f"{threshold:.0%} median gate:")
        for row in regressed:
            lines.append(
                f"  {row.name}: {row.old_median:.1f} -> "
                f"{row.new_median:.1f} {row.unit} ({row.delta:+.1%})"
            )
    else:
        lines.append(f"no regression beyond the {threshold:.0%} median gate")
    return "\n".join(lines)


def format_host_profile(snapshot: dict, title: Optional[str] = None) -> str:
    """Render a :meth:`~repro.perf.hostprof.HostProfiler.snapshot` as
    per-run stage shares (percent of attributed host time), the
    attribution coverage of the measured wall, and the per-component
    breakdown of the total."""
    from repro.perf.hostprof import COMPONENTS, STAGES

    runs = dict(snapshot["runs"])
    runs["TOTAL"] = snapshot["total"]
    name_width = max([len("run")] + [len(n) for n in runs])
    header = (f"{'run'.ljust(name_width)} {'wall ms':>9s} "
              + " ".join(f"{stage:>9s}" for stage in STAGES)
              + f" {'attrib':>7s}")
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for name, run in runs.items():
        if name == "TOTAL":
            lines.append("-" * len(header))
        attributed = run["attributed_s"] or 1.0
        shares = " ".join(f"{run['stages_s'][stage] / attributed:>9.1%}"
                          for stage in STAGES)
        lines.append(f"{name.ljust(name_width)} {run['wall_s'] * 1e3:9.1f} "
                     f"{shares} {run['coverage']:7.1%}")
    total = snapshot["total"]
    attributed = total["attributed_s"] or 1.0
    lines.append("")
    lines.append("components (share of attributed host time):")
    for component in COMPONENTS:
        value = total["components_s"][component]
        lines.append(f"  {component:18s} {value / attributed:7.1%} "
                     f"({value * 1e3:9.1f} ms)")
    return "\n".join(lines)
