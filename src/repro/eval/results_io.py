"""Result persistence: snapshots, lossless cell records and the
content-addressed result store.

Three layers, from oldest to newest:

* **Snapshots** (`save_results` / `load_results` / `compare_results`):
  one JSON file summarising a whole (workload x scheme) matrix, used
  for regression tracking — a change in the model shows up as numbers,
  not vibes.  Snapshot rows are *summaries* (normalised IPC, traffic
  shares); they do not round-trip back into :class:`RunResult`.
* **Lossless cell records** (`serialize_run_result` /
  `deserialize_run_result`): a full, reversible JSON encoding of one
  :class:`repro.sim.stats.RunResult`, including the latency histogram
  buckets, so every derived metric of every figure (normalised IPC,
  Fig. 14 bandwidth overhead, Fig. 15 energy, Figs. 10/11 accuracy
  breakdowns, p50/p95/p99 latency) is recomputable from disk.
* **The content-addressed store** (:class:`ResultStore`): completed
  simulation cells keyed by :func:`stable_hash` of their full identity
  (SimConfig + workload + scheme + overrides + scale + code version).
  Re-running a campaign resumes instantly from cached cells; a
  corrupted or truncated entry is *quarantined* (moved aside), never
  fatal.

Units: cycles are simulator core cycles, traffic fields are bytes,
latencies are cycles, ``scale`` is the suite footprint scale factor.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
import os
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.common.types import PredictionStats, Scheme, TrafficCounters
from repro.obs.metrics import LogHistogram
from repro.sim.runner import Runner
from repro.sim.stats import L2Stats, LatencyStats, RunResult

FORMAT_VERSION = 1

#: Version tag of the lossless cell encoding; bump on breaking change
#: (it participates in the cell hash, so old store entries simply
#: become cache misses instead of deserialization errors).
CELL_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Snapshot summaries (regression tracking)
# ---------------------------------------------------------------------------

def result_to_dict(result: RunResult, baseline: Optional[RunResult] = None) -> dict:
    """Flatten one run into a snapshot row (summary, not reversible).

    Traffic fields are bytes; latencies are cycles; accuracies are
    fractions in [0, 1].
    """
    data = {
        "workload": result.workload,
        "scheme": result.scheme.value,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "dram_utilization": result.dram_utilization,
        "bandwidth_overhead": result.bandwidth_overhead,
        "traffic": {
            "data": result.traffic.data_bytes,
            "ctr": result.traffic.counter_bytes,
            "mac": result.traffic.mac_bytes,
            "bmt": result.traffic.bmt_bytes,
            "mispred": result.traffic.misprediction_bytes,
        },
        "l2": {
            "accesses": result.l2.accesses,
            "misses": result.l2.misses,
            "writebacks": result.l2.writebacks,
        },
        "read_latency": {
            "avg": result.latency.average,
            "p50": result.latency.p50,
            "p95": result.latency.p95,
            "p99": result.latency.p99,
            "max": result.latency.max_cycles,
        },
        "readonly_accuracy": result.readonly_stats.accuracy,
        "streaming_accuracy": result.streaming_stats.accuracy,
        "shared_counter_reads": result.shared_counter_reads,
        "victim_hits": result.victim_hits,
    }
    if baseline is not None:
        data["normalized_ipc"] = result.normalized_ipc(baseline)
    return data


def save_results(
    runner: Runner,
    path: Union[str, Path],
    workloads: List[str],
    schemes: List[Union[Scheme, str]],
    metadata: Optional[dict] = None,
) -> dict:
    """Run (if necessary) and snapshot the given matrix to JSON.

    ``schemes`` accepts Table VIII :class:`Scheme` members and names of
    custom compositions from the scheme registry; snapshot rows for the
    latter carry the registry name so they stay distinguishable from
    their base design.
    """
    snapshot = {
        "format_version": FORMAT_VERSION,
        "scale": runner.scale,
        "metadata": metadata or {},
        "results": [],
    }
    for name in workloads:
        baseline = runner.baseline(name)
        snapshot["results"].append(result_to_dict(baseline))
        for scheme in schemes:
            if scheme is Scheme.UNPROTECTED:
                continue
            result = runner.run(name, scheme)
            row = result_to_dict(result, baseline)
            if isinstance(scheme, str):
                row["scheme"] = scheme
            snapshot["results"].append(row)
    Path(path).write_text(json.dumps(snapshot, indent=1))
    return snapshot


def load_results(path: Union[str, Path]) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported results format version")
    return data


def compare_results(old: dict, new: dict, metric: str = "normalized_ipc") -> List[dict]:
    """Per-(workload, scheme) deltas of one metric between snapshots."""
    def index(snapshot):
        return {
            (r["workload"], r["scheme"]): r
            for r in snapshot["results"]
            if metric in r
        }

    old_idx, new_idx = index(old), index(new)
    rows = []
    for key in sorted(set(old_idx) & set(new_idx)):
        rows.append({
            "workload": key[0],
            "scheme": key[1],
            "old": old_idx[key][metric],
            "new": new_idx[key][metric],
            "delta": new_idx[key][metric] - old_idx[key][metric],
        })
    return rows


# ---------------------------------------------------------------------------
# Lossless RunResult encoding (the store's payload format)
# ---------------------------------------------------------------------------

def _histogram_to_dict(h: LogHistogram) -> dict:
    return {
        "name": h.name,
        # Sparse: almost all of the 256 log buckets are empty.
        "counts": {str(i): n for i, n in enumerate(h.counts) if n},
        "count": h.count,
        "total": h.total,
        "min": None if math.isinf(h.min_value) else h.min_value,
        "max": h.max_value,
    }


def _histogram_from_dict(data: dict) -> LogHistogram:
    h = LogHistogram(data.get("name", ""))
    for idx, n in data["counts"].items():
        h.counts[int(idx)] = n
    h.count = data["count"]
    h.total = data["total"]
    h.min_value = math.inf if data["min"] is None else data["min"]
    h.max_value = data["max"]
    return h


def _prediction_to_dict(stats: PredictionStats) -> dict:
    return {f.name: getattr(stats, f.name)
            for f in dataclasses.fields(PredictionStats)}


def serialize_run_result(result: RunResult) -> dict:
    """Encode one :class:`RunResult` as a JSON-safe dict, losslessly.

    Every field — including the streaming latency histogram's bucket
    counts and both detectors' Figs. 10/11 misprediction breakdowns —
    survives the round trip, so :func:`deserialize_run_result` yields
    a result whose derived metrics equal the original's.
    """
    return {
        "cell_format": CELL_FORMAT_VERSION,
        "workload": result.workload,
        "scheme": result.scheme.value,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "dram_utilization": result.dram_utilization,
        "traffic": {
            "data_bytes": result.traffic.data_bytes,
            "counter_bytes": result.traffic.counter_bytes,
            "mac_bytes": result.traffic.mac_bytes,
            "bmt_bytes": result.traffic.bmt_bytes,
            "misprediction_bytes": result.traffic.misprediction_bytes,
        },
        "l2": {
            "accesses": result.l2.accesses,
            "misses": result.l2.misses,
            "writebacks": result.l2.writebacks,
        },
        "latency": {
            "total_cycles": result.latency.total_cycles,
            "count": result.latency.count,
            "max_cycles": result.latency.max_cycles,
            "histogram": _histogram_to_dict(result.latency.histogram),
        },
        "readonly_stats": _prediction_to_dict(result.readonly_stats),
        "streaming_stats": _prediction_to_dict(result.streaming_stats),
        "shared_counter_reads": result.shared_counter_reads,
        "common_counter_hits": result.common_counter_hits,
        "mdc_accesses": result.mdc_accesses,
        "victim_hits": result.victim_hits,
        "victim_insertions": result.victim_insertions,
        "stream_verdicts": result.stream_verdicts,
        "readonly_transitions": result.readonly_transitions,
    }


def deserialize_run_result(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`serialize_run_result`
    output.  Raises ``ValueError`` on a format-version mismatch and
    ``KeyError``/``TypeError`` on truncated records (the store treats
    all three as corruption and quarantines the entry)."""
    if data.get("cell_format") != CELL_FORMAT_VERSION:
        raise ValueError(
            f"unsupported cell format {data.get('cell_format')!r} "
            f"(expected {CELL_FORMAT_VERSION})"
        )
    latency = LatencyStats(
        total_cycles=data["latency"]["total_cycles"],
        count=data["latency"]["count"],
        max_cycles=data["latency"]["max_cycles"],
        histogram=_histogram_from_dict(data["latency"]["histogram"]),
    )
    return RunResult(
        workload=data["workload"],
        scheme=Scheme(data["scheme"]),
        cycles=data["cycles"],
        instructions=data["instructions"],
        traffic=TrafficCounters(**data["traffic"]),
        l2=L2Stats(**data["l2"]),
        dram_utilization=data["dram_utilization"],
        latency=latency,
        readonly_stats=PredictionStats(**data["readonly_stats"]),
        streaming_stats=PredictionStats(**data["streaming_stats"]),
        shared_counter_reads=data["shared_counter_reads"],
        common_counter_hits=data["common_counter_hits"],
        mdc_accesses=data["mdc_accesses"],
        victim_hits=data["victim_hits"],
        victim_insertions=data["victim_insertions"],
        stream_verdicts=data["stream_verdicts"],
        readonly_transitions=data["readonly_transitions"],
    )


# ---------------------------------------------------------------------------
# Stable hashing and code versioning (the store's address format)
# ---------------------------------------------------------------------------

def canonicalize(obj: Any) -> Any:
    """Reduce configs/enums/containers to a deterministic JSON value.

    Dataclasses become ``{"__type__": name, fields...}`` (type name
    included so two configs with identical field values but different
    meaning hash apart), enums become their values, dict keys are
    stringified and sorted by ``json.dumps(sort_keys=True)`` later.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonicalize(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def stable_hash(obj: Any) -> str:
    """A 40-hex-digit content address, stable across processes and
    Python versions (unlike ``hash()``)."""
    payload = json.dumps(canonicalize(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


_code_version: Optional[str] = None


def code_version() -> str:
    """The simulator version folded into every cell address, so a code
    change invalidates stale results rather than serving them.

    Resolution order: the ``REPRO_CODE_VERSION`` environment variable
    (CI can pin it), the git commit of the source tree, and finally
    the package version for installs without git.
    """
    global _code_version
    if _code_version is None:
        _code_version = os.environ.get("REPRO_CODE_VERSION") or ""
        if not _code_version:
            try:
                _code_version = subprocess.run(
                    ["git", "rev-parse", "--short=12", "HEAD"],
                    cwd=Path(__file__).resolve().parent,
                    capture_output=True, text=True, timeout=5,
                    check=True,
                ).stdout.strip()
            except (OSError, subprocess.SubprocessError):
                _code_version = ""
        if not _code_version:
            import repro

            _code_version = getattr(repro, "__version__", "unknown")
    return _code_version


# ---------------------------------------------------------------------------
# The content-addressed result store
# ---------------------------------------------------------------------------

class ResultStore:
    """On-disk cache of completed simulation cells, addressed by the
    stable hash of their full identity.

    Layout: ``root/<key[:2]>/<key>.json`` (fan-out keeps directories
    small at suite scale), with unreadable entries moved to
    ``root/quarantine/``.  Writes are atomic (temp file + ``rename``),
    so a killed campaign never leaves a truncated entry behind under
    its final name; if one appears anyway (copied stores, disk
    trouble), :meth:`get` quarantines it and reports a miss instead of
    raising — corruption costs one re-simulation, not the sweep.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- addressing ----------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- reads ---------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The record stored under ``key``, or ``None`` on a miss.

        A present-but-unreadable entry (truncated JSON, wrong key,
        missing payload) is quarantined and reported as a miss.
        """
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(data, dict) or data.get("key") != key \
                or "payload" not in data:
            self._quarantine(path)
            return None
        return data

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    __contains__ = contains

    def keys(self) -> List[str]:
        """Every key currently stored (sorted, for stable listings)."""
        if not self.root.exists():
            return []
        return sorted(
            p.stem
            for shard in self.root.iterdir()
            if shard.is_dir() and shard.name != "quarantine"
            for p in shard.glob("*.json")
        )

    def __len__(self) -> int:
        return len(self.keys())

    # -- writes --------------------------------------------------------

    def put(self, key: str, record: dict) -> Path:
        """Atomically persist ``record`` under ``key``.

        The record is stamped with its own key so a mis-filed copy is
        detectable on read.
        """
        record = dict(record)
        record["key"] = key
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(record, indent=1))
        os.replace(tmp, path)
        return path

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        path = self._path(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Drop every entry (quarantine included); returns the count."""
        removed = 0
        if not self.root.exists():
            return 0
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for p in list(shard.glob("*.json")):
                p.unlink()
                removed += 1
        return removed

    # -- corruption handling -------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside (best effort) so the next campaign
        re-simulates the cell instead of tripping on it again."""
        quarantine = self.root / "quarantine"
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def quarantined(self) -> List[str]:
        """Names of quarantined entries (for campaign reporting)."""
        quarantine = self.root / "quarantine"
        if not quarantine.exists():
            return []
        return sorted(p.name for p in quarantine.glob("*.json"))
