"""Result persistence: snapshot experiment outputs for regression
tracking.

`save_results` writes every (workload, scheme) RunResult of a runner —
plus the experiment tables — to one JSON file; `compare_results` diffs
two snapshots so a change in the model shows up as numbers, not vibes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from repro.common.types import Scheme
from repro.sim.runner import Runner
from repro.sim.stats import RunResult

FORMAT_VERSION = 1


def result_to_dict(result: RunResult, baseline: Optional[RunResult] = None) -> dict:
    data = {
        "workload": result.workload,
        "scheme": result.scheme.value,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "dram_utilization": result.dram_utilization,
        "bandwidth_overhead": result.bandwidth_overhead,
        "traffic": {
            "data": result.traffic.data_bytes,
            "ctr": result.traffic.counter_bytes,
            "mac": result.traffic.mac_bytes,
            "bmt": result.traffic.bmt_bytes,
            "mispred": result.traffic.misprediction_bytes,
        },
        "l2": {
            "accesses": result.l2.accesses,
            "misses": result.l2.misses,
            "writebacks": result.l2.writebacks,
        },
        "read_latency": {
            "avg": result.latency.average,
            "p50": result.latency.p50,
            "p95": result.latency.p95,
            "p99": result.latency.p99,
            "max": result.latency.max_cycles,
        },
        "readonly_accuracy": result.readonly_stats.accuracy,
        "streaming_accuracy": result.streaming_stats.accuracy,
        "shared_counter_reads": result.shared_counter_reads,
        "victim_hits": result.victim_hits,
    }
    if baseline is not None:
        data["normalized_ipc"] = result.normalized_ipc(baseline)
    return data


def save_results(
    runner: Runner,
    path: Union[str, Path],
    workloads: List[str],
    schemes: List[Scheme],
    metadata: Optional[dict] = None,
) -> dict:
    """Run (if necessary) and snapshot the given matrix to JSON."""
    snapshot = {
        "format_version": FORMAT_VERSION,
        "scale": runner.scale,
        "metadata": metadata or {},
        "results": [],
    }
    for name in workloads:
        baseline = runner.baseline(name)
        snapshot["results"].append(result_to_dict(baseline))
        for scheme in schemes:
            if scheme is Scheme.UNPROTECTED:
                continue
            result = runner.run(name, scheme)
            snapshot["results"].append(result_to_dict(result, baseline))
    Path(path).write_text(json.dumps(snapshot, indent=1))
    return snapshot


def load_results(path: Union[str, Path]) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported results format version")
    return data


def compare_results(old: dict, new: dict, metric: str = "normalized_ipc") -> List[dict]:
    """Per-(workload, scheme) deltas of one metric between snapshots."""
    def index(snapshot):
        return {
            (r["workload"], r["scheme"]): r
            for r in snapshot["results"]
            if metric in r
        }

    old_idx, new_idx = index(old), index(new)
    rows = []
    for key in sorted(set(old_idx) & set(new_idx)):
        rows.append({
            "workload": key[0],
            "scheme": key[1],
            "old": old_idx[key][metric],
            "new": new_idx[key][metric],
            "delta": new_idx[key][metric] - old_idx[key][metric],
        })
    return rows
