"""The experiment-campaign engine: batched, fault-tolerant, resumable
execution of figure/ablation sweeps.

Every experiment in :mod:`repro.eval.experiments` declares its work as
a flat **job matrix** — one :class:`JobSpec` per (workload, scheme,
config-override) cell — plus a *pure* aggregation step that folds the
finished cells into an :class:`ExperimentResult`.  This module runs
those matrices two ways, with identical results:

* **Serial** (:func:`run_cells_serial`): in-process against one shared
  :class:`repro.sim.runner.Runner` — what the classic ``fig*`` driver
  functions use, fastest for a handful of cells because calibrations
  are shared.
* **Campaign** (:func:`run_campaign`): cells fan out over a
  ``ProcessPoolExecutor`` worker pool (per-job timeouts, bounded
  retries with backoff — see :mod:`repro.sim.parallel`), every
  completed cell is persisted into a content-addressed
  :class:`repro.eval.results_io.ResultStore`, and a re-run resumes
  instantly from cached cells (``force=True`` selectively invalidates
  just the requested experiments' cells).  A failed cell is recorded
  with its traceback and excluded from aggregates instead of killing
  the sweep.

Cells are **deduplicated by content address** across experiments: the
(atax, SHM, default-config) run that Fig. 12, Fig. 13 and Fig. 16 all
need is simulated once and aggregated three times.  The address —
:func:`cell_key` — hashes the full cell identity (SimConfig, workload
(+ variant overrides), scheme, scheme overrides, scale, code version),
and deliberately *excludes* presentation fields (experiment name,
series label).

Campaign runs emit a **manifest** (JSON, ``campaign_format: 1``) that
``repro inspect`` renders, and feed per-cell runtimes into the PR-1
:class:`repro.obs.metrics.MetricsRegistry` so live progress can show
an ETA.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.core.policies.registry import resolve_scheme
from repro.obs.events import EventLog, merge_spool
from repro.obs.metrics import MetricsRegistry
from repro.obs.store import TelemetryStore
from repro.sim.parallel import execute_jobs
from repro.sim.runner import Runner
from repro.sim.stats import RunResult, mean
from repro.eval.results_io import (
    CELL_FORMAT_VERSION,
    ResultStore,
    code_version,
    deserialize_run_result,
    serialize_run_result,
    stable_hash,
)

#: Manifest schema version (``repro inspect`` keys off this field).
MANIFEST_FORMAT = 1


# ---------------------------------------------------------------------------
# Data model: results, cells, experiments
# ---------------------------------------------------------------------------

@dataclass
class ExperimentResult:
    """One figure/table reproduction: per-workload series by scheme.

    ``series`` maps a series label (a Table VIII scheme value such as
    ``"shm"``, or an ablation label such as ``"mats_8"``) to
    ``{workload -> value}``.  Units depend on the experiment: Figs.
    12/13/16 are normalised IPC (1.0 = unprotected), Fig. 14 is
    metadata-bytes / data-bytes, Fig. 15 is normalised energy per
    instruction, Figs. 5/10/11 are fractions in [0, 1].
    """

    experiment: str
    #: series label -> {workload -> value}
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, label: str) -> float:
        return mean(self.series[label].values())

    def averages(self) -> Dict[str, float]:
        return {label: self.average(label) for label in self.series}


@dataclass
class JobSpec:
    """One cell of an experiment's job matrix.

    A cell is fully self-describing — a fresh worker process can
    execute it with no other context: build a
    :class:`~repro.sim.runner.Runner` from ``config`` and ``scale``,
    materialise the workload (optionally a variant of
    ``workload_base`` with ``workload_overrides`` applied), then
    either profile it (``kind="profile"``, Fig. 5) or simulate
    ``scheme`` with the given scheme-config ``overrides``.

    ``experiment`` and ``series`` are presentation only: they say
    where the cell's value lands in the aggregate and are excluded
    from the cell's content address (see :func:`cell_key`).
    """

    experiment: str
    workload: str
    scheme: str = Scheme.SHM.value
    series: str = ""
    kind: str = "run"  # "run" | "profile"
    scale: float = 1.0
    config: SimConfig = field(default_factory=SimConfig)
    #: Keyword overrides forwarded to ``SimConfig.with_scheme`` (e.g.
    #: ``mac_conflict_policy="update_both"``, ``detectors=DetectorConfig(...)``).
    overrides: Dict[str, Any] = field(default_factory=dict)
    #: When set, ``workload`` is a variant of this suite workload ...
    workload_base: Optional[str] = None
    #: ... with these fields replaced (e.g. ``bandwidth_utilization``).
    workload_overrides: Dict[str, Any] = field(default_factory=dict)
    #: When set, ``workload`` is not a suite benchmark but a composed
    #: suite spec (:mod:`repro.workloads.compose`) built fresh in each
    #: worker — construction is a pure function of (spec, scale), so
    #: the serial path and the pool produce byte-identical traces.
    workload_spec: Optional[Dict[str, Any]] = None
    #: Attach an observer in the worker and ship its metrics back to
    #: the parent registry.  Execution detail, not cell identity —
    #: excluded from :func:`cell_key`.
    collect_metrics: bool = False
    #: Attach a :class:`repro.obs.decisions.DecisionLedger` for the
    #: cell's run and ship its :meth:`~DecisionLedger.summary` back in
    #: the payload.  Unlike ``collect_metrics`` this does not force the
    #: legacy core.  Execution detail — excluded from :func:`cell_key`.
    collect_decisions: bool = False


@dataclass
class CellRecord:
    """Terminal state of one cell within one experiment's matrix."""

    job: JobSpec
    key: str = ""
    status: str = "ok"  # "ok" | "failed"
    cached: bool = False
    result: Optional[RunResult] = None
    baseline: Optional[RunResult] = None
    profile: Optional[dict] = None
    #: Decision-ledger summary (``collect_decisions`` cells only).
    decisions: Optional[dict] = None
    error: Optional[str] = None
    runtime: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative form of one experiment: matrix + pure aggregation.

    ``jobs(workloads, config, scale)`` expands the experiment into its
    flat cell list (``workloads=None`` means the experiment's default
    set); ``aggregate(records)`` folds completed cells into an
    :class:`ExperimentResult` and must be pure — it sees
    deserialized :class:`RunResult` objects whether the cells ran
    serially, on the worker pool, or came from the store.
    """

    name: str
    title: str
    #: Paper provenance, e.g. ``"Fig. 12, Section VI-C"``.
    provenance: str
    jobs: Callable[[Optional[List[str]], SimConfig, float], List[JobSpec]]
    aggregate: Callable[[List[CellRecord]], ExperimentResult]
    #: Rough per-cell cost relative to one plain scheme run (docs/ETA).
    cost_hint: float = 1.0


def cell_key(job: JobSpec, version: Optional[str] = None) -> str:
    """The content address of one cell.

    Hashes everything that determines the simulation's output —
    ``SimConfig``, workload identity (+ variant overrides), scheme,
    scheme overrides, scale, cell-format version and the code version
    — and nothing that is presentation (experiment name, series
    label), so identical cells are shared across experiments and a
    code change invalidates the store wholesale.
    """
    return stable_hash({
        "cell_format": CELL_FORMAT_VERSION,
        "kind": job.kind,
        "workload": job.workload,
        "workload_base": job.workload_base,
        "workload_overrides": job.workload_overrides,
        "workload_spec": job.workload_spec,
        "scheme": job.scheme if job.kind == "run" else None,
        "scale": job.scale,
        "config": job.config,
        "overrides": job.overrides,
        "code": version if version is not None else code_version(),
    })


# ---------------------------------------------------------------------------
# Cell evaluation (shared by the serial path and the worker pool)
# ---------------------------------------------------------------------------

def _ensure_workload(runner: Runner, job: JobSpec) -> None:
    """Register the job's workload variant on ``runner`` if needed."""
    if job.workload in runner._workloads:
        return
    if job.workload_spec is not None:
        from repro.workloads.compose import build_workload as build_composed
        built = build_composed(job.workload_spec, scale=job.scale)
        if built.name != job.workload:
            built = dc_replace(built, name=job.workload)
        runner.add_workload(built)
    elif job.workload_base:
        base = runner.workload(job.workload_base)
        runner.add_workload(
            dc_replace(base, name=job.workload, **job.workload_overrides)
        )


def _evaluate_cell(runner: Runner, job: JobSpec) -> Dict[str, Any]:
    """Execute one cell on ``runner``; returns the in-memory payload
    (``{"result", "baseline"}`` RunResults, or ``{"profile"}``; plus
    ``"decisions"`` for ``collect_decisions`` cells)."""
    _ensure_workload(runner, job)
    if job.kind == "profile":
        profile = runner.profile(job.workload)
        return {"profile": {
            "streaming_ratio": profile.streaming_ratio,
            "readonly_ratio": profile.readonly_ratio,
        }}
    ledger = None
    if job.collect_decisions:
        from repro.obs.decisions import DecisionLedger
        ledger = DecisionLedger()
        runner.ledger = ledger
    try:
        result = runner.run(job.workload, resolve_scheme(job.scheme),
                            **job.overrides)
    finally:
        if ledger is not None:
            from repro.obs.decisions import NULL_LEDGER as _null
            runner.ledger = _null
    payload = {"result": result, "baseline": runner.baseline(job.workload)}
    if ledger is not None:
        payload["decisions"] = ledger.summary()
    return payload


def _serialize_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name in ("result", "baseline"):
        if payload.get(name) is not None:
            out[name] = serialize_run_result(payload[name])
    for name in ("profile", "decisions"):
        if payload.get(name) is not None:
            out[name] = payload[name]
    return out


def _deserialize_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name in ("result", "baseline"):
        if payload.get(name) is not None:
            out[name] = deserialize_run_result(payload[name])
    for name in ("profile", "decisions"):
        if payload.get(name) is not None:
            out[name] = dict(payload[name])
    return out


def _cell_worker(job: JobSpec) -> Dict[str, Any]:
    """Top-level worker entry point (must be picklable): one fresh
    runner, one cell, a JSON-safe payload back.

    With ``job.collect_metrics`` the run happens under an observer and
    the payload carries the worker's metrics as a ``"metrics"`` state
    dict — in-place registry mutation inside a pool worker is invisible
    to the parent, so the state rides home with the result and the
    parent merges it (:meth:`MetricsRegistry.merge_state`)."""
    observer = None
    if job.collect_metrics:
        from repro.obs.observer import Observer
        observer = Observer(timeseries=False)
    runner = Runner(config=job.config, scale=job.scale, observer=observer)
    payload = _serialize_payload(_evaluate_cell(runner, job))
    if observer is not None:
        payload["metrics"] = observer.metrics.state()
    return payload


class _SerialEvaluator:
    """Executes cells in-process against one shared runner.

    Cells whose ``config`` differs from the parent runner's (the MDC
    ablation) run on *sibling* runners that share the parent's
    workload and calibration caches — the unprotected calibration does
    not depend on the varied knobs, so sharing is sound and avoids
    re-calibrating per cell.
    """

    def __init__(self, runner: Runner) -> None:
        self.runner = runner
        self._siblings: Dict[SimConfig, Runner] = {}

    def _runner_for(self, job: JobSpec) -> Runner:
        if job.config == self.runner.config:
            return self.runner
        if job.scale != self.runner.scale:
            # Calibrations are scale-specific; no sharing possible.
            return Runner(config=job.config, scale=job.scale)
        sibling = self._siblings.get(job.config)
        if sibling is None:
            sibling = Runner(config=job.config, scale=job.scale)
            sibling._workloads = self.runner._workloads
            if self._calibration_compatible(job.config):
                sibling._calibrations = self.runner._calibrations
            self._siblings[job.config] = sibling
        return sibling

    def _calibration_compatible(self, config: SimConfig) -> bool:
        """May a sibling share the parent's calibration cache?

        The calibration run uses the *unprotected* scheme on the
        parent's GPU model, and its recorded-stream profile is chunked
        by the detector geometry — so sharing is only sound when both
        the GPU config (e.g. a DRAM-scheduler ablation changes the
        contention model) and the detector sizing match the parent's.
        """
        parent = self.runner.config
        return (config.gpu == parent.gpu
                and config.scheme.detectors == parent.scheme.detectors)

    def evaluate(self, job: JobSpec) -> Dict[str, Any]:
        return _evaluate_cell(self._runner_for(job), job)


def run_cells_serial(runner: Runner, jobs: Sequence[JobSpec],
                     strict: bool = True) -> List[CellRecord]:
    """Execute a job matrix in-process on ``runner`` — the "old serial
    path" every classic ``fig*`` driver routes through.

    With ``strict=True`` (the drivers' behaviour) a cell's exception
    propagates; with ``strict=False`` (the campaign's ``--serial``
    mode) it is captured on the record like the worker pool would.
    """
    evaluator = _SerialEvaluator(runner)
    records: List[CellRecord] = []
    for job in jobs:
        start = time.monotonic()
        try:
            payload = evaluator.evaluate(job)
        except Exception:
            if strict:
                raise
            records.append(CellRecord(
                job=job, status="failed", error=traceback.format_exc(),
                runtime=time.monotonic() - start,
            ))
            continue
        records.append(CellRecord(
            job=job,
            result=payload.get("result"),
            baseline=payload.get("baseline"),
            profile=payload.get("profile"),
            decisions=payload.get("decisions"),
            runtime=time.monotonic() - start,
        ))
    return records


# ---------------------------------------------------------------------------
# The campaign engine
# ---------------------------------------------------------------------------

@dataclass
class _Cell:
    """Per-unique-cell execution state, shared by all referencing jobs."""

    status: str = "ok"
    cached: bool = False
    payload: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    runtime: float = 0.0
    attempts: int = 1


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    experiments: List[str]
    #: experiment -> aggregated figure data (failed cells excluded).
    results: Dict[str, ExperimentResult]
    #: experiment -> every cell record, including failures.
    records: Dict[str, List[CellRecord]]
    #: The ``campaign_format: 1`` JSON document ``repro inspect`` renders.
    manifest: dict

    @property
    def totals(self) -> dict:
        return self.manifest["totals"]

    @property
    def failed_cells(self) -> List[CellRecord]:
        return [r for recs in self.records.values() for r in recs
                if not r.ok]


def campaign_id(names: Sequence[str], workloads: Optional[List[str]],
                scale: float, version: str) -> str:
    """The deterministic correlation ID of one campaign *identity*
    (what is being swept, not when/how): re-running the same sweep
    yields the same ID, so its telemetry rows line up across runs."""
    return stable_hash({
        "experiments": list(names),
        "workloads": workloads,
        "scale": scale,
        "code": version,
    })[:12]


def run_campaign(
    experiments: Union[str, Sequence[str]],
    workloads: Optional[List[str]] = None,
    scale: float = 0.25,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    store_dir: Optional[Union[str, os.PathLike]] = None,
    force: bool = False,
    timeout: Optional[float] = None,
    retries: int = 1,
    serial: bool = False,
    specs: Optional[Dict[str, ExperimentSpec]] = None,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[CellRecord, dict], None]] = None,
    collect_metrics: bool = False,
    collect_decisions: bool = False,
    events: Optional[EventLog] = None,
    telemetry: Optional[TelemetryStore] = None,
) -> CampaignReport:
    """Expand the named experiments into one deduplicated cell matrix,
    execute it, and aggregate per experiment.

    ``experiments`` is a name, a list of names, or ``["all"]`` (every
    registered experiment).  ``store_dir`` enables the
    content-addressed result store: cached cells are served without
    simulation, and ``force=True`` re-runs (and overwrites) exactly
    the selected experiments' cells.  ``jobs`` is the worker-pool
    width (default: the machine's core count); ``serial=True`` runs
    in-process on one shared runner instead, with identical results.

    ``progress`` fires once per terminal cell with ``(record, stats)``
    where ``stats`` carries ``done``/``failed``/``cached``/``total``
    and an ``eta_seconds`` derived from the per-cell runtime histogram
    in the metrics ``registry``.

    Failed cells never raise: they are recorded (traceback and all) in
    the report/manifest and excluded from aggregates.

    ``collect_metrics=True`` runs every *executed* cell under an
    observer and folds each worker's simulation metrics back into
    ``registry`` (store-cached cells carry no metrics to merge).

    ``collect_decisions=True`` attaches a fresh
    :class:`repro.obs.decisions.DecisionLedger` to every executed
    ``kind="run"`` cell; the ledger summary rides home in the payload,
    lands in the manifest (and the telemetry store), and is emitted as
    one ``cell_decisions`` event per executed cell when ``events`` is
    attached.  Decision taps fire at decision granularity, so this does
    *not* push cells onto the legacy per-access core.

    ``events`` (an :class:`repro.obs.events.EventLog`) records the
    campaign's structured telemetry — cell lifecycle, retries,
    timeouts, worker deaths — with pool workers spooling their
    ``cell_started`` events into ``events.spool_dir`` and the parent
    merging them crash-safely after the pool drains.  ``telemetry``
    (an :class:`repro.obs.store.TelemetryStore`) persists the finished
    campaign — one row per cell reference — into the cross-run sqlite
    store.  Both default to ``None`` and cost nothing when absent.
    """
    if specs is None:
        from repro.eval.experiments import EXPERIMENTS
        specs = EXPERIMENTS
    if isinstance(experiments, str):
        experiments = [experiments]
    names = list(experiments)
    if names == ["all"]:
        names = list(specs)
    unknown = sorted(set(names) - set(specs))
    if unknown:
        raise ValueError(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(specs))}"
        )

    config = config or SimConfig()
    registry = registry or MetricsRegistry()
    store = ResultStore(store_dir) if store_dir is not None else None
    version = code_version()
    n_workers = 1 if serial else max(1, jobs or os.cpu_count() or 2)
    started = time.monotonic()

    # -- expand and deduplicate ---------------------------------------
    exp_jobs: Dict[str, List[JobSpec]] = {
        name: specs[name].jobs(workloads, config, scale) for name in names
    }
    unique: Dict[str, JobSpec] = {}
    for job_list in exp_jobs.values():
        for job in job_list:
            unique.setdefault(cell_key(job, version), job)

    cid = campaign_id(names, workloads, scale, version)
    if events is not None:
        if events.campaign is None:
            events.campaign = cid
        events.emit("campaign_started", experiments=names,
                    cells=len(unique), scale=scale,
                    code_version=version, workers=n_workers)

    def emit_terminal(key: str, cell: _Cell,
                      reason: Optional[str] = None) -> None:
        if events is None:
            return
        job = unique[key]
        if cell.status == "ok":
            events.emit("cell_completed", cell=key, workload=job.workload,
                        scheme=job.scheme, attempts=cell.attempts,
                        runtime=round(cell.runtime, 4))
            summary = cell.payload.get("decisions")
            if summary is not None:
                events.emit("cell_decisions", cell=key,
                            workload=job.workload, scheme=job.scheme,
                            summary=summary)
        else:
            events.emit("cell_failed", cell=key, workload=job.workload,
                        scheme=job.scheme, reason=reason or "exception",
                        attempts=cell.attempts)

    cells: Dict[str, _Cell] = {}
    runtime_hist = registry.histogram("campaign.cell_runtime_s")

    def stats_snapshot() -> dict:
        done = len(cells)
        return {
            "total": len(unique),
            "done": done,
            "failed": sum(1 for c in cells.values() if c.status != "ok"),
            "cached": sum(1 for c in cells.values() if c.cached),
            "eta_seconds": (len(unique) - done) * runtime_hist.average
                           / n_workers,
            "elapsed_seconds": time.monotonic() - started,
        }

    def announce(key: str, job: JobSpec, cell: _Cell) -> None:
        registry.counter(
            "campaign.cells_cached" if cell.cached else
            "campaign.cells_ok" if cell.status == "ok" else
            "campaign.cells_failed"
        ).inc()
        if progress is not None:
            progress(CellRecord(
                job=job, key=key, status=cell.status, cached=cell.cached,
                error=cell.error, runtime=cell.runtime,
                attempts=cell.attempts,
            ), stats_snapshot())

    # -- serve from the store -----------------------------------------
    to_run: List[str] = []
    for key, job in unique.items():
        stored = None if (store is None or force) else store.get(key)
        if stored is not None:
            try:
                payload = _deserialize_payload(stored["payload"])
            except (ValueError, KeyError, TypeError):
                # Readable JSON but an incompatible/partial payload
                # (e.g. an older cell format): drop it and re-run.
                store.invalidate(key)
                stored = None
            else:
                cell = _Cell(cached=True, payload=payload,
                             runtime=stored.get("runtime_s", 0.0))
                cells[key] = cell
                if events is not None:
                    events.emit("cell_cached", cell=key,
                                workload=job.workload, scheme=job.scheme)
                announce(key, job, cell)
        if stored is None:
            to_run.append(key)

    # -- execute the rest ---------------------------------------------
    def record_executed(key: str, cell: _Cell) -> None:
        if cell.status == "ok":
            runtime_hist.record(cell.runtime)
            if store is not None:
                store.put(key, {
                    "cell_format": CELL_FORMAT_VERSION,
                    "code_version": version,
                    "workload": unique[key].workload,
                    "scheme": unique[key].scheme,
                    "kind": unique[key].kind,
                    "scale": unique[key].scale,
                    "runtime_s": cell.runtime,
                    "payload": _serialize_payload(cell.payload)
                    if any(isinstance(v, RunResult)
                           for v in cell.payload.values())
                    else cell.payload,
                })
        cells[key] = cell
        announce(key, unique[key], cell)

    if to_run and serial:
        serial_observer = None
        if collect_metrics:
            from repro.obs.observer import Observer
            # Shares ``registry`` directly: the serial path needs no
            # state shipping, in-place recording is already visible.
            serial_observer = Observer(metrics=registry, timeseries=False)
        evaluator = _SerialEvaluator(
            Runner(config=config, scale=scale, observer=serial_observer)
        )
        for key in to_run:
            if events is not None:
                events.emit("cell_started", cell=key)
            job = unique[key]
            if collect_decisions and job.kind == "run":
                job = dc_replace(job, collect_decisions=True)
            start = time.monotonic()
            try:
                payload = evaluator.evaluate(job)
            except Exception:
                cell = _Cell(status="failed", error=traceback.format_exc(),
                             runtime=time.monotonic() - start)
                emit_terminal(key, cell)
                record_executed(key, cell)
            else:
                cell = _Cell(payload=payload,
                             runtime=time.monotonic() - start)
                emit_terminal(key, cell)
                record_executed(key, cell)
    elif to_run:
        def on_outcome(outcome) -> None:
            key = to_run[outcome.index]
            if outcome.ok:
                value = outcome.value
                metrics_state = value.pop("metrics", None)
                if metrics_state is not None:
                    registry.merge_state(metrics_state)
                cell = _Cell(
                    payload=_deserialize_payload(value),
                    runtime=outcome.runtime, attempts=outcome.attempts,
                )
            else:
                cell = _Cell(
                    status="failed",
                    error=f"[{outcome.reason}] {outcome.error}",
                    runtime=outcome.runtime, attempts=outcome.attempts,
                )
                if events is not None:
                    if outcome.reason == "worker_died":
                        events.emit("worker_died", cell=key,
                                    attempt=outcome.attempts)
                    elif outcome.reason == "timeout":
                        events.emit("cell_timeout", cell=key,
                                    attempt=outcome.attempts)
            emit_terminal(key, cell, reason=outcome.reason)
            record_executed(key, cell)

        def on_retry(index: int, attempt: int, reason: str) -> None:
            key = to_run[index]
            if events is None:
                return
            if reason == "worker_died":
                events.emit("worker_died", cell=key, attempt=attempt)
            elif reason == "timeout":
                events.emit("cell_timeout", cell=key, attempt=attempt)
            events.emit("cell_retry", cell=key, attempt=attempt,
                        reason=reason)

        worker_jobs = [unique[k] for k in to_run]
        if collect_metrics:
            worker_jobs = [dc_replace(job, collect_metrics=True)
                           for job in worker_jobs]
        if collect_decisions:
            worker_jobs = [dc_replace(job, collect_decisions=True)
                           if job.kind == "run" else job
                           for job in worker_jobs]
        execute_jobs(_cell_worker, worker_jobs,
                     jobs=n_workers, timeout=timeout, retries=retries,
                     on_outcome=on_outcome,
                     on_retry=on_retry if events is not None else None,
                     event_spool=(str(events.spool_dir)
                                  if events is not None else None),
                     tags=to_run if events is not None else None)
        if events is not None:
            merge_spool(events)

    # -- aggregate per experiment -------------------------------------
    results: Dict[str, ExperimentResult] = {}
    records: Dict[str, List[CellRecord]] = {}
    for name in names:
        recs = []
        for job in exp_jobs[name]:
            key = cell_key(job, version)
            cell = cells[key]
            recs.append(CellRecord(
                job=job, key=key, status=cell.status, cached=cell.cached,
                result=cell.payload.get("result"),
                baseline=cell.payload.get("baseline"),
                profile=cell.payload.get("profile"),
                decisions=cell.payload.get("decisions"),
                error=cell.error, runtime=cell.runtime,
                attempts=cell.attempts,
            ))
        records[name] = recs
        results[name] = specs[name].aggregate([r for r in recs if r.ok])

    final = stats_snapshot()
    if events is not None:
        events.emit("campaign_finished", totals={
            "cells": final["total"],
            "ok": final["done"] - final["failed"],
            "failed": final["failed"],
            "cached": final["cached"],
            "executed": final["done"] - final["cached"],
        }, elapsed_seconds=round(final["elapsed_seconds"], 3))

    manifest = _build_manifest(
        names=names, specs=specs, results=results, records=records,
        workloads=workloads, scale=scale, n_workers=n_workers,
        force=force, version=version, store=store, registry=registry,
        stats=final, campaign=cid,
    )
    if telemetry is not None:
        telemetry.record_campaign(manifest, cid)
    return CampaignReport(experiments=names, results=results,
                          records=records, manifest=manifest)


def _build_manifest(*, names, specs, results, records, workloads, scale,
                    n_workers, force, version, store, registry,
                    stats, campaign) -> dict:
    """Assemble the ``campaign_format: 1`` JSON document."""
    experiments = {}
    for name in names:
        recs = records[name]
        experiments[name] = {
            "title": specs[name].title,
            "provenance": specs[name].provenance,
            "averages": results[name].averages(),
            "failed": sum(1 for r in recs if not r.ok),
            "cells": [{
                "key": r.key,
                "workload": r.job.workload,
                "scheme": r.job.scheme,
                "series": r.job.series,
                "kind": r.job.kind,
                "status": r.status,
                "cached": r.cached,
                "runtime_s": round(r.runtime, 4),
                "attempts": r.attempts,
                **({"error": r.error[:2000]} if r.error else {}),
                **({"decisions": r.decisions} if r.decisions else {}),
            } for r in recs],
        }
    return {
        "campaign_format": MANIFEST_FORMAT,
        "campaign": campaign,
        "experiments": experiments,
        "workloads": workloads,
        "scale": scale,
        "jobs": n_workers,
        "force": force,
        "code_version": version,
        "store": str(store.root) if store is not None else None,
        "quarantined": store.quarantined() if store is not None else [],
        "totals": {
            "cells": stats["total"],
            "ok": stats["done"] - stats["failed"],
            "failed": stats["failed"],
            "cached": stats["cached"],
            "executed": stats["done"] - stats["cached"],
            "references": sum(len(r) for r in records.values()),
        },
        "elapsed_seconds": round(stats["elapsed_seconds"], 3),
        "metrics": registry.snapshot(),
    }


# ---------------------------------------------------------------------------
# The CI smoke campaign
# ---------------------------------------------------------------------------

def _smoke_jobs(workloads: Optional[List[str]], config: SimConfig,
                scale: float) -> List[JobSpec]:
    names = workloads or ["atax", "mvt"]
    return [
        JobSpec(experiment="smoke", workload=name, scheme=scheme.value,
                series=scheme.value, scale=scale, config=config)
        for scheme in (Scheme.PSSM, Scheme.SHM)
        for name in names
    ]


def _smoke_aggregate(records: List[CellRecord]) -> ExperimentResult:
    result = ExperimentResult("smoke")
    for rec in records:
        result.series.setdefault(rec.job.series, {})[rec.job.workload] = \
            rec.result.normalized_ipc(rec.baseline)
    return result


#: A deliberately tiny campaign (2 workloads x 2 schemes) used by CI to
#: prove the resume path: run, re-run, assert 100 % cache hits.
SMOKE_SPEC = ExperimentSpec(
    name="smoke",
    title="CI smoke: 2x2 matrix, resume must be 100% cached",
    provenance="CI only (no paper figure)",
    jobs=_smoke_jobs,
    aggregate=_smoke_aggregate,
)


def run_smoke(store_dir: Union[str, os.PathLike], jobs: int = 2,
              scale: float = 0.05,
              progress: Optional[Callable[[CellRecord, dict], None]] = None,
              ) -> "tuple[CampaignReport, CampaignReport]":
    """Run the smoke campaign twice against one store and return both
    reports; the caller asserts the second pass was fully cached."""
    kwargs = dict(workloads=None, scale=scale, jobs=jobs,
                  store_dir=store_dir, retries=1,
                  specs={"smoke": SMOKE_SPEC}, progress=progress)
    first = run_campaign(["smoke"], **kwargs)
    second = run_campaign(["smoke"], **kwargs)
    return first, second
